"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (right-aligned numeric columns)."""
    cells = [[_format(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    numeric = [
        all(_is_numeric(row[i]) for row in cells) if cells else False
        for i in range(len(headers))
    ]

    def line(row, pad=" "):
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(list(headers)))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False
