"""Parallel experiment sweep engine with a content-addressed result cache.

Every figure of the evaluation is a grid of *independent* simulations —
Figure 5 alone is 5 scales × 3 skews × 5 policies — so regenerating
results serially wastes every core but one. This module expresses a grid
as self-contained, picklable :class:`SweepPoint` configs, fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`, and memoizes each
cell's result on disk keyed by the config *and* the code-relevant
constants (cost model, paper parameters), so a re-run only recomputes
cells whose inputs actually changed.

Determinism: each point builds its own cluster(s) from its own seeds and
(since the tie-break sequence counter is per-``Simulator``) its result is
independent of what else runs in the process. Serial (``jobs=1``) and
parallel (``jobs=N``) sweeps therefore produce byte-identical cells; the
test suite asserts this.

Usage::

    from repro.experiments import sweep
    points = sweep.figure5_points(scales=(5, 10), skews=(0,), seeds=(0,))
    results = sweep.run_sweep(points, jobs=8, cache=sweep.ResultCache())
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.cluster.costmodel import CostModel
from repro.errors import SweepError
from repro.obs import profile as _profile

#: Bump when the meaning of cached results changes (result dataclass
#: layout, simulation semantics) without any constant changing.
#: v2: JobResult grew metrics_snapshot; failure config became part of
#: every point's identity (it previously was not representable at all,
#: so any pre-v2 cell is implicitly "no failures" under stale keys).
#: v3: histogram snapshots (inside JobResult.metrics_snapshot) gained
#: log-bucket p50/p95/p99 quantiles; pre-v3 cached cells lack the keys.
CACHE_SCHEMA_VERSION = 3

DEFAULT_CACHE_DIR = ".repro_cache"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache directory to use absent an explicit ``--cache-dir``.

    Honors the ``REPRO_CACHE_DIR`` environment variable so CI and shared
    machines can redirect every sweep's cache without touching each
    invocation; falls back to :data:`DEFAULT_CACHE_DIR`.
    """
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


_MISS = object()


# ---------------------------------------------------------------------------
# Sweep points
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One self-contained cell of an experiment grid.

    ``kind`` selects the runner (``figure4`` … ``figure8``); ``params``
    is a sorted tuple of ``(name, value)`` pairs holding only primitives
    and tuples, so a point is hashable, picklable, and has a stable
    ``repr`` to key the cache with.
    """

    kind: str
    params: tuple[tuple[str, Any], ...]

    @classmethod
    def make(cls, kind: str, **params: Any) -> "SweepPoint":
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"


def _run_figure4(params: dict[str, Any]) -> Any:
    from repro.experiments.skew_figure import run_figure4_point

    return run_figure4_point(**params)


def _run_figure5(params: dict[str, Any]) -> Any:
    from repro.experiments.single_user import run_single_user_cell

    return run_single_user_cell(**params)


def _run_figure6(params: dict[str, Any]) -> Any:
    from repro.experiments.multiuser import run_homogeneous_cell

    return run_homogeneous_cell(**params)


def _run_heterogeneous(params: dict[str, Any]) -> Any:
    from repro.experiments.heterogeneous import run_heterogeneous_cell

    return run_heterogeneous_cell(**params)


_RUNNERS: dict[str, Callable[[dict[str, Any]], Any]] = {
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "figure7": _run_heterogeneous,
    "figure8": _run_heterogeneous,
}


def run_sweep_point(point: SweepPoint) -> Any:
    """Execute one grid cell in the current process.

    The sweep.point profiler span only covers cells run in-process:
    ``--jobs N`` workers are separate processes with no channel back to
    the parent's profiler, so profile sweeps with ``--jobs 1``.
    """
    try:
        runner = _RUNNERS[point.kind]
    except KeyError:
        raise SweepError(f"unknown sweep point kind {point.kind!r}") from None
    with _profile.profiled_span(_profile.PHASE_SWEEP_POINT):
        return runner(point.as_dict())


# ---------------------------------------------------------------------------
# Grid builders (one per figure)
# ---------------------------------------------------------------------------
def figure4_points(*, scale: float = 5, seed: int = 0) -> list[SweepPoint]:
    return [SweepPoint.make("figure4", scale=scale, z=z, seed=seed) for z in (0, 1, 2)]


def figure5_points(
    *,
    scales: Sequence[float],
    skews: Sequence[int],
    policies: Sequence[str],
    seeds: Sequence[int],
    sample_size: int,
    failures=None,
) -> list[SweepPoint]:
    """``failures`` (a frozen :class:`repro.engine.failures.FailureConfig`)
    rides inside every point, so cells simulated under different failure
    parameters can never collide in the result cache."""
    return [
        SweepPoint.make(
            "figure5",
            scale=scale,
            z=z,
            policy=policy,
            seeds=tuple(seeds),
            sample_size=sample_size,
            failures=failures,
        )
        for z in skews
        for scale in scales
        for policy in policies
    ]


def figure6_points(
    *,
    skews: Sequence[int],
    policies: Sequence[str],
    seeds: Sequence[int],
    scale: float,
    num_users: int,
    warmup: float,
    measurement: float,
) -> list[SweepPoint]:
    return [
        SweepPoint.make(
            "figure6",
            policy=policy,
            z=z,
            seeds=tuple(seeds),
            scale=scale,
            num_users=num_users,
            warmup=warmup,
            measurement=measurement,
        )
        for z in skews
        for policy in policies
    ]


def heterogeneous_points(
    *,
    figure: str,
    scheduler: str,
    fractions: Sequence[float],
    policies: Sequence[str],
    seeds: Sequence[int],
    scale: float,
    num_users: int,
    warmup: float,
    measurement: float,
) -> list[SweepPoint]:
    if figure not in ("figure7", "figure8"):
        raise SweepError(f"heterogeneous figure must be figure7/figure8, got {figure!r}")
    return [
        SweepPoint.make(
            figure,
            policy=policy,
            sampling_fraction=fraction,
            scheduler=scheduler,
            seeds=tuple(seeds),
            scale=scale,
            num_users=num_users,
            warmup=warmup,
            measurement=measurement,
        )
        for fraction in fractions
        for policy in policies
    ]


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
def code_fingerprint(cost_model: CostModel | None = None) -> str:
    """Hash of the code-relevant constants a cached cell depends on.

    A cell's simulated result is a pure function of its :class:`SweepPoint`
    plus the cost model and paper constants; hashing those alongside the
    point means editing any of them invalidates every stale cache entry
    without a manual version bump (``CACHE_SCHEMA_VERSION`` covers the
    rest: result-dataclass layout and simulation semantics).
    """
    from repro.engine.failures import DEFAULT_MAX_ATTEMPTS, FailureConfig
    from repro.experiments import setup

    model = cost_model if cost_model is not None else CostModel()
    parts = (
        f"schema={CACHE_SCHEMA_VERSION}",
        repr(model),
        repr(
            (
                setup.PAPER_POLICIES,
                setup.PAPER_SCALES,
                setup.PAPER_SKEWS,
                setup.PAPER_SAMPLE_SIZE,
                setup.PAPER_FRACTIONS,
                setup.PAPER_NUM_USERS,
            )
        ),
        # Failure semantics: the retry budget and the defaults a point's
        # ``failures=None`` resolves to. Changing either changes what a
        # cached cell means.
        f"max_attempts={DEFAULT_MAX_ATTEMPTS}",
        repr(FailureConfig()),
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:20]


class ResultCache:
    """Pickle-per-cell result store under ``.repro_cache/``.

    Entries are keyed by ``sha256(fingerprint + point)``; writes are
    atomic (tmp file + rename) so a killed sweep never leaves a torn
    entry behind.
    """

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        *,
        fingerprint: str | None = None,
    ) -> None:
        self._root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()

    @property
    def root(self) -> Path:
        return self._root

    def key(self, point: SweepPoint) -> str:
        payload = f"{self.fingerprint}\n{point.kind}\n{point.params!r}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, point: SweepPoint) -> Path:
        return self._root / f"{self.key(point)}.pkl"

    def get(self, point: SweepPoint) -> Any:
        """The cached result for ``point``, or the module-private miss
        sentinel (compare with :func:`is_hit`)."""
        path = self.path(point)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (FileNotFoundError, EOFError, pickle.UnpicklingError):
            return _MISS

    def put(self, point: SweepPoint, result: Any) -> None:
        self._root.mkdir(parents=True, exist_ok=True)
        path = self.path(point)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    @staticmethod
    def is_hit(value: Any) -> bool:
        return value is not _MISS


# ---------------------------------------------------------------------------
# The sweep runner
# ---------------------------------------------------------------------------
def resolve_jobs(jobs: int | None) -> int:
    """``None`` → all cores; anything below 1 is rejected."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise SweepError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def run_sweep(
    points: Iterable[SweepPoint],
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: Callable[[SweepPoint, str], None] | None = None,
    trace=None,
) -> dict[SweepPoint, Any]:
    """Run every point and return ``{point: result}``.

    ``jobs=1`` (the default) runs each point in-process, in order —
    exactly today's serial path. ``jobs=N`` fans misses out over a
    process pool; results are keyed by point, so assembly order never
    depends on completion order. ``progress`` (if given) is called with
    ``(point, status)`` where status is ``"cached"`` or ``"ran"``.
    ``trace`` (a :class:`repro.obs.trace.TraceRecorder`) receives
    sweep_started / sweep_point / sweep_finished events; recording is
    pure read-side and never alters results.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    results: dict[SweepPoint, Any] = {}

    if trace is not None:
        trace.sweep_started(points=len(points), jobs=jobs)

    def note(point: SweepPoint, status: str) -> None:
        if trace is not None:
            trace.sweep_point(
                index=points.index(point),
                kind=point.kind,
                params=point.as_dict(),
                cached=status == "cached",
            )
        if progress is not None:
            progress(point, status)

    todo: list[SweepPoint] = []
    for point in points:
        if point in results or point in todo:
            continue
        if cache is not None:
            hit = cache.get(point)
            if ResultCache.is_hit(hit):
                results[point] = hit
                note(point, "cached")
                continue
        todo.append(point)

    if jobs <= 1 or len(todo) <= 1:
        for point in todo:
            results[point] = run_sweep_point(point)
            if cache is not None:
                cache.put(point, results[point])
            note(point, "ran")
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            futures = {point: pool.submit(run_sweep_point, point) for point in todo}
            for point, future in futures.items():
                results[point] = future.result()
                if cache is not None:
                    cache.put(point, results[point])
                note(point, "ran")

    if trace is not None:
        trace.sweep_finished(points=len(points))
    return {point: results[point] for point in points}
