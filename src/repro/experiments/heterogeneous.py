"""Figures 7 and 8: heterogeneous workload, FIFO vs Fair scheduling
(paper §V-E/F).

Ten users split into a Sampling class (dynamic predicate-based sampling
with a uniform match distribution) and a Non-Sampling class (static
select-project scans at 0.05% selectivity), both over 100x data. The
Sampling fraction sweeps 0.2-0.8, and the whole grid runs once under the
default FIFO scheduler (Figure 7) and once under the Fair Scheduler
(Figure 8). Section V-F additionally compares map-task locality % and
slot occupancy % across the two schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.predicates import predicate_for_skew
from repro.experiments.setup import (
    PAPER_FRACTIONS,
    PAPER_NUM_USERS,
    PAPER_POLICIES,
    PAPER_SAMPLE_SIZE,
    dataset_for,
    multiuser_cluster,
)
from repro.workload.generator import heterogeneous_workload
from repro.workload.runner import WorkloadRunner
from repro.workload.stats import Summary, summarize
from repro.workload.user import UserClass


@dataclass(frozen=True)
class HeterogeneousCell:
    """One (policy, fraction) cell of Figure 7 or 8."""

    policy: str
    sampling_fraction: float
    scheduler: str
    sampling_throughput: Summary
    non_sampling_throughput: Summary
    locality_pct: Summary
    slot_occupancy_pct: Summary


def run_heterogeneous_cell(
    *,
    policy: str,
    sampling_fraction: float,
    scheduler: str = "fifo",
    seeds: tuple[int, ...] = (0,),
    scale: float = 100,
    num_users: int = PAPER_NUM_USERS,
    warmup: float = 1200.0,
    measurement: float = 3600.0,
) -> HeterogeneousCell:
    predicate = predicate_for_skew(0)  # uniform distribution (§V-E)
    sampling_thr, non_sampling_thr, locality, occupancy = [], [], [], []
    for seed in seeds:
        cluster = multiuser_cluster(seed=seed, scheduler=scheduler)
        dataset = dataset_for(scale, 0, seed)
        spec = heterogeneous_workload(
            cluster,
            num_users=num_users,
            sampling_fraction=sampling_fraction,
            sampling_policy=policy,
            sampling_predicate=predicate,
            scan_predicate=predicate,
            sample_size=PAPER_SAMPLE_SIZE,
            dataset=dataset,
        )
        result = WorkloadRunner(
            cluster, spec, warmup=warmup, measurement=measurement
        ).run()
        sampling_thr.append(result.throughput_jobs_per_hour(UserClass.SAMPLING))
        non_sampling_thr.append(
            result.throughput_jobs_per_hour(UserClass.NON_SAMPLING)
        )
        locality.append(result.metrics.locality_pct)
        occupancy.append(result.metrics.avg_slot_occupancy_pct)
    return HeterogeneousCell(
        policy=policy,
        sampling_fraction=sampling_fraction,
        scheduler=scheduler,
        sampling_throughput=summarize(sampling_thr),
        non_sampling_throughput=summarize(non_sampling_thr),
        locality_pct=summarize(locality),
        slot_occupancy_pct=summarize(occupancy),
    )


def run_heterogeneous_experiment(
    *,
    scheduler: str = "fifo",
    fractions: tuple[float, ...] = PAPER_FRACTIONS,
    policies: tuple[str, ...] = PAPER_POLICIES,
    seeds: tuple[int, ...] = (0,),
    scale: float = 100,
    num_users: int = PAPER_NUM_USERS,
    warmup: float = 1200.0,
    measurement: float = 3600.0,
    jobs: int | None = 1,
    cache=None,
    progress=None,
    trace=None,
) -> dict[tuple[str, float], HeterogeneousCell]:
    """One full figure (7 or 8), keyed by (policy, fraction).

    Fans out through the sweep engine: see
    :func:`repro.experiments.single_user.run_single_user_experiment`.
    """
    from repro.experiments.sweep import heterogeneous_points, run_sweep

    figure = "figure8" if scheduler == "fair" else "figure7"
    points = heterogeneous_points(
        figure=figure, scheduler=scheduler, fractions=fractions,
        policies=policies, seeds=seeds, scale=scale,
        num_users=num_users, warmup=warmup, measurement=measurement,
    )
    results = run_sweep(points, jobs=jobs, cache=cache, progress=progress, trace=trace)
    cells = {}
    for point in points:
        params = point.as_dict()
        cells[(params["policy"], params["sampling_fraction"])] = results[point]
    return cells


def class_throughput_rows(
    cells: dict[tuple[str, float], HeterogeneousCell],
    user_class: UserClass,
    *,
    fractions: tuple[float, ...] = PAPER_FRACTIONS,
    policies: tuple[str, ...] = PAPER_POLICIES,
) -> list[list[object]]:
    """Figure 7/8 (a) or (b): one row per fraction, one column per policy."""
    rows = []
    for fraction in fractions:
        row: list[object] = [f"{fraction:.1f}"]
        for policy in policies:
            cell = cells[(policy, fraction)]
            summary = (
                cell.sampling_throughput
                if user_class is UserClass.SAMPLING
                else cell.non_sampling_throughput
            )
            row.append(summary.mean)
        rows.append(row)
    return rows


def scheduler_stats(
    cells: dict[tuple[str, float], HeterogeneousCell]
) -> dict[str, float]:
    """§V-F: mean locality % and slot occupancy % over the grid."""
    locality = [cell.locality_pct.mean for cell in cells.values()]
    occupancy = [cell.slot_occupancy_pct.mean for cell in cells.values()]
    return {
        "locality_pct": summarize(locality).mean,
        "slot_occupancy_pct": summarize(occupancy).mean,
    }
