"""Tables I, II and III of the paper."""

from __future__ import annotations

from repro.core.policy import paper_policies
from repro.data.datasets import dataset_spec_for_scale
from repro.data.predicates import PAPER_SELECTIVITY, predicate_for_skew
from repro.experiments.setup import PAPER_POLICIES, PAPER_SCALES, PAPER_SKEWS


def table1_rows() -> list[list[object]]:
    """Table I: the policies, straight from the live registry."""
    registry = paper_policies()
    rows = []
    for name in PAPER_POLICIES:
        policy = registry.get(name)
        threshold = "-" if policy.is_unbounded else f"{policy.work_threshold_pct:g}"
        rows.append(
            [policy.name, policy.description, threshold, policy.grab_limit.source]
        )
    return rows


TABLE1_HEADERS = ("Policy", "Description", "Work Threshold (%)", "Grab Limit")


def table2_rows() -> list[list[object]]:
    """Table II: generated dataset properties per scale."""
    rows = []
    for scale in PAPER_SCALES:
        spec = dataset_spec_for_scale(scale)
        rows.append(
            [
                f"{scale}x",
                f"{spec.num_rows:,}",
                f"{spec.total_bytes / 1e9:.1f}",
                spec.num_partitions,
                f"{spec.bytes_per_partition / 1e6:.0f}",
            ]
        )
    return rows


TABLE2_HEADERS = ("Scale", "Rows", "Size (GB)", "Partitions", "MB/partition")


def table3_rows() -> list[list[object]]:
    """Table III: one predicate per skew level, selectivity fixed at 0.05%."""
    rows = []
    for z in PAPER_SKEWS:
        predicate = predicate_for_skew(z)
        rows.append(
            [
                z,
                str(predicate),
                f"{PAPER_SELECTIVITY * 100:.2f}%",
                {0: "uniform", 1: "moderate", 2: "high"}[z],
            ]
        )
    return rows


TABLE3_HEADERS = ("Zipf z", "Predicate", "Selectivity", "Skew")
