"""The paper's evaluation (§V), experiment by experiment.

Each module regenerates one table or figure:

* :mod:`repro.experiments.tables` — Tables I (policies), II (datasets),
  III (predicates/skew).
* :mod:`repro.experiments.skew_figure` — Figure 4 (distribution of
  matching records across the 5x dataset's 40 partitions).
* :mod:`repro.experiments.single_user` — Figure 5 (single-user response
  times across scales/skews/policies + partitions processed).
* :mod:`repro.experiments.multiuser` — Figure 6 (homogeneous multiuser
  throughput and resource use).
* :mod:`repro.experiments.heterogeneous` — Figures 7 and 8
  (Sampling/Non-Sampling class throughput under FIFO and Fair
  scheduling, plus the locality/occupancy comparison of §V-F).

The benchmark harness (``benchmarks/``) drives these functions and
prints the same rows/series the paper reports.
"""

from repro.experiments.heterogeneous import (
    HeterogeneousCell,
    run_heterogeneous_experiment,
)
from repro.experiments.multiuser import MultiuserCell, run_homogeneous_experiment
from repro.experiments.report import render_table
from repro.experiments.setup import (
    PAPER_FRACTIONS,
    PAPER_POLICIES,
    PAPER_SAMPLE_SIZE,
    PAPER_SCALES,
    PAPER_SKEWS,
    dataset_for,
    multiuser_cluster,
    single_user_cluster,
)
from repro.experiments.single_user import SingleUserCell, run_single_user_experiment
from repro.experiments.skew_figure import figure4_series
from repro.experiments.sweep import ResultCache, SweepPoint, run_sweep, run_sweep_point
from repro.experiments.tables import table1_rows, table2_rows, table3_rows

__all__ = [
    "HeterogeneousCell",
    "MultiuserCell",
    "PAPER_FRACTIONS",
    "PAPER_POLICIES",
    "PAPER_SAMPLE_SIZE",
    "PAPER_SCALES",
    "PAPER_SKEWS",
    "ResultCache",
    "SingleUserCell",
    "SweepPoint",
    "dataset_for",
    "figure4_series",
    "multiuser_cluster",
    "render_table",
    "run_heterogeneous_experiment",
    "run_homogeneous_experiment",
    "run_single_user_experiment",
    "run_sweep",
    "run_sweep_point",
    "single_user_cluster",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
