"""Figure 4: distribution of matching records across partitions.

For the 5x dataset (40 partitions, 15,000 matching records at 0.05%
selectivity), the paper shows per-partition matching-record counts for
z = 0, 1 and 2: an even ~375 per partition at z=0, a head of ~3.1K at
z=1, and ~8.7K concentrated in one partition at z=2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.predicates import predicate_for_skew
from repro.experiments.setup import dataset_for


@dataclass(frozen=True)
class Figure4Series:
    """One skew level's placement across the partitions."""

    z: int
    counts_by_rank: tuple[int, ...]
    total_matches: int

    @property
    def max_count(self) -> int:
        return max(self.counts_by_rank) if self.counts_by_rank else 0

    @property
    def nonzero_partitions(self) -> int:
        return sum(1 for c in self.counts_by_rank if c > 0)

    def top(self, n: int) -> tuple[int, ...]:
        return self.counts_by_rank[:n]


def run_figure4_point(*, scale: float, z: int, seed: int = 0) -> Figure4Series:
    """One skew level's placement distribution (one sweep cell)."""
    dataset = dataset_for(scale, z, seed)
    placement = dataset.placement_for(predicate_for_skew(z).name)
    return Figure4Series(
        z=z,
        counts_by_rank=tuple(int(c) for c in placement.sorted_counts()),
        total_matches=placement.total_matches,
    )


def figure4_series(
    scale: float = 5,
    seed: int = 0,
    *,
    jobs: int | None = 1,
    cache=None,
    trace=None,
) -> dict[int, Figure4Series]:
    """Per-skew-level match distributions for the given dataset scale.

    ``jobs``/``cache`` route the three skew levels through the sweep
    engine (:mod:`repro.experiments.sweep`); the default ``jobs=1`` with
    no cache is the plain in-process path.
    """
    from repro.experiments.sweep import figure4_points, run_sweep

    points = figure4_points(scale=scale, seed=seed)
    results = run_sweep(points, jobs=jobs, cache=cache, trace=trace)
    return {point.as_dict()["z"]: results[point] for point in points}
