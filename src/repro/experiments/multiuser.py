"""Figure 6: homogeneous multi-user workload (paper §V-D).

Ten closed-loop users, each sampling its own 100x dataset copy with the
same policy, on the 16-slots-per-node cluster. Reported per policy:
steady-state throughput (jobs/hour), average CPU utilization (%), and
average disk reads (KB/s) — first for a uniform distribution of matching
records and again for high skew (z=2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.predicates import predicate_for_skew
from repro.experiments.setup import (
    PAPER_NUM_USERS,
    PAPER_POLICIES,
    PAPER_SAMPLE_SIZE,
    dataset_for,
    multiuser_cluster,
)
from repro.workload.generator import homogeneous_sampling_workload
from repro.workload.runner import WorkloadRunner
from repro.workload.stats import Summary, summarize


@dataclass(frozen=True)
class MultiuserCell:
    """One (policy, skew) cell of Figure 6."""

    policy: str
    z: int
    throughput: Summary
    cpu_utilization_pct: Summary
    disk_read_kbps: Summary
    partitions_per_job: Summary
    slot_occupancy_pct: Summary


def run_homogeneous_cell(
    *,
    policy: str,
    z: int,
    seeds: tuple[int, ...] = (0, 1),
    scale: float = 100,
    num_users: int = PAPER_NUM_USERS,
    warmup: float = 600.0,
    measurement: float = 2400.0,
    sample_size: int = PAPER_SAMPLE_SIZE,
) -> MultiuserCell:
    predicate = predicate_for_skew(z)
    throughput, cpu, disk, parts, occupancy = [], [], [], [], []
    for seed in seeds:
        cluster = multiuser_cluster(seed=seed)
        dataset = dataset_for(scale, z, seed)
        spec = homogeneous_sampling_workload(
            cluster,
            num_users=num_users,
            policy_name=policy,
            predicate=predicate,
            sample_size=sample_size,
            dataset=dataset,
        )
        result = WorkloadRunner(
            cluster, spec, warmup=warmup, measurement=measurement
        ).run()
        throughput.append(result.throughput_jobs_per_hour())
        cpu.append(result.metrics.avg_cpu_utilization_pct)
        disk.append(result.metrics.avg_disk_read_kbps)
        parts.append(result.mean_partitions_processed())
        occupancy.append(result.metrics.avg_slot_occupancy_pct)
    return MultiuserCell(
        policy=policy,
        z=z,
        throughput=summarize(throughput),
        cpu_utilization_pct=summarize(cpu),
        disk_read_kbps=summarize(disk),
        partitions_per_job=summarize(parts),
        slot_occupancy_pct=summarize(occupancy),
    )


def run_homogeneous_experiment(
    *,
    skews: tuple[int, ...] = (0, 2),
    policies: tuple[str, ...] = PAPER_POLICIES,
    seeds: tuple[int, ...] = (0, 1),
    scale: float = 100,
    num_users: int = PAPER_NUM_USERS,
    warmup: float = 600.0,
    measurement: float = 2400.0,
    jobs: int | None = 1,
    cache=None,
    progress=None,
    trace=None,
) -> dict[tuple[str, int], MultiuserCell]:
    """The Figure 6 grid, keyed by (policy, z).

    Fans out through the sweep engine: see
    :func:`repro.experiments.single_user.run_single_user_experiment`.
    """
    from repro.experiments.sweep import figure6_points, run_sweep

    points = figure6_points(
        skews=skews, policies=policies, seeds=seeds, scale=scale,
        num_users=num_users, warmup=warmup, measurement=measurement,
    )
    results = run_sweep(points, jobs=jobs, cache=cache, progress=progress, trace=trace)
    cells = {}
    for point in points:
        params = point.as_dict()
        cells[(params["policy"], params["z"])] = results[point]
    return cells


def figure6_rows(
    cells: dict[tuple[str, int], MultiuserCell],
    z: int,
    *,
    policies: tuple[str, ...] = PAPER_POLICIES,
) -> list[list[object]]:
    rows = []
    for policy in policies:
        cell = cells[(policy, z)]
        rows.append(
            [
                policy,
                cell.throughput.mean,
                cell.cpu_utilization_pct.mean,
                cell.disk_read_kbps.mean,
                cell.partitions_per_job.mean,
                cell.slot_occupancy_pct.mean,
            ]
        )
    return rows


FIGURE6_HEADERS = (
    "Policy",
    "Throughput (jobs/h)",
    "CPU util (%)",
    "Disk reads (KB/s)",
    "Partitions/job",
    "Slot occupancy (%)",
)
