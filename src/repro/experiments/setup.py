"""Shared experiment configuration (paper §V-A/B).

The constants here pin down the evaluation setup: the 10-node cluster
(4 map slots per node single-user, 16 multi-user), LINEITEM at scales
5-100, skews z in {0, 1, 2} with the Table III predicates, sample size
10,000, selectivity 0.05%.

``dataset_for`` memoizes profiled datasets: experiment sweeps reuse the
same (scale, z, seed) dataset instead of re-drawing placements.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.datasets import PartitionedDataset, build_profiled_dataset, dataset_spec_for_scale
from repro.data.predicates import MarkerEquals, predicate_for_skew
from repro.engine.cluster_engine import SimulatedCluster

PAPER_POLICIES = ("Hadoop", "HA", "MA", "LA", "C")
PAPER_SCALES = (5, 10, 20, 40, 100)
PAPER_SKEWS = (0, 1, 2)
PAPER_SAMPLE_SIZE = 10_000
PAPER_FRACTIONS = (0.2, 0.4, 0.6, 0.8)
PAPER_NUM_USERS = 10


@lru_cache(maxsize=64)
def dataset_for(scale: float, z: int, seed: int = 0) -> PartitionedDataset:
    """The profiled LINEITEM dataset for one (scale, skew, seed) cell."""
    predicate = predicate_for_skew(z)
    return build_profiled_dataset(
        dataset_spec_for_scale(scale), {predicate: float(z)}, seed=seed
    )


def predicate_for(z: int) -> MarkerEquals:
    return predicate_for_skew(z)


def single_user_cluster(
    *, seed: int = 0, scheduler: str = "fifo", failures=None, trace=None
) -> SimulatedCluster:
    """The single-user configuration: 4 map slots per node (§V-C).

    ``failures`` is an optional :class:`repro.engine.failures.
    FailureConfig`; a fresh injector is built per cluster so RNG state
    never leaks between cells.
    """
    return SimulatedCluster.paper_cluster(
        map_slots_per_node=4,
        seed=seed,
        scheduler=scheduler,
        failure_injector=failures.build() if failures is not None else None,
        trace=trace,
    )


def multiuser_cluster(*, seed: int = 0, scheduler: str = "fifo") -> SimulatedCluster:
    """The multi-user configuration: 16 map slots per node (§V-D)."""
    return SimulatedCluster.paper_cluster(
        map_slots_per_node=16, seed=seed, scheduler=scheduler
    )
