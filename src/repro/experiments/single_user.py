"""Figure 5: single-user response times (paper §V-C).

Seventy-five combinations — five dataset scales, three skews, five
policies — each run on an otherwise idle cluster with 4 map slots per
node, averaged over several seeds (the paper averages 5 runs). Graphs
(a)-(c) plot response time per skew level; graph (d) plots partitions
processed per job at moderate skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sampling_job import make_sampling_conf
from repro.data.predicates import predicate_for_skew
from repro.experiments.setup import (
    PAPER_POLICIES,
    PAPER_SAMPLE_SIZE,
    PAPER_SCALES,
    PAPER_SKEWS,
    dataset_for,
    single_user_cluster,
)
from repro.workload.stats import Summary, summarize


@dataclass(frozen=True)
class SingleUserCell:
    """One (scale, skew, policy) cell of the Figure 5 grid."""

    scale: float
    z: int
    policy: str
    response_time: Summary
    partitions_processed: Summary
    sample_size: Summary

    @property
    def mean_response(self) -> float:
        return self.response_time.mean

    @property
    def mean_partitions(self) -> float:
        return self.partitions_processed.mean


def run_single_user_cell(
    *,
    scale: float,
    z: int,
    policy: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    sample_size: int = PAPER_SAMPLE_SIZE,
    failures=None,
) -> SingleUserCell:
    """Run one cell: one job per seed on a fresh idle cluster.

    ``failures`` (a :class:`repro.engine.failures.FailureConfig`) turns
    on failure injection for every job of the cell; it is part of the
    cell's sweep-cache identity.
    """
    predicate = predicate_for_skew(z)
    responses, partitions, samples = [], [], []
    for seed in seeds:
        cluster = single_user_cluster(seed=seed, failures=failures)
        cluster.load_dataset("/data/lineitem", dataset_for(scale, z, seed))
        conf = make_sampling_conf(
            name=f"fig5-{policy}-{scale}x-z{z}-s{seed}",
            input_path="/data/lineitem",
            predicate=predicate,
            sample_size=sample_size,
            policy_name=policy,
        )
        result = cluster.run_job(conf)
        responses.append(result.response_time)
        partitions.append(float(result.splits_processed))
        samples.append(float(result.outputs_produced))
    return SingleUserCell(
        scale=scale,
        z=z,
        policy=policy,
        response_time=summarize(responses),
        partitions_processed=summarize(partitions),
        sample_size=summarize(samples),
    )


def run_single_user_experiment(
    *,
    scales: tuple[float, ...] = PAPER_SCALES,
    skews: tuple[int, ...] = PAPER_SKEWS,
    policies: tuple[str, ...] = PAPER_POLICIES,
    seeds: tuple[int, ...] = (0, 1, 2),
    sample_size: int = PAPER_SAMPLE_SIZE,
    failures=None,
    jobs: int | None = 1,
    cache=None,
    progress=None,
    trace=None,
) -> dict[tuple[float, int, str], SingleUserCell]:
    """The full Figure 5 grid, keyed by (scale, z, policy).

    Each cell is independent, so the grid fans out through the sweep
    engine: ``jobs=N`` runs cells on a process pool, ``jobs=1`` (the
    default) runs them in-process in grid order, and ``cache`` (a
    :class:`repro.experiments.sweep.ResultCache`) skips cells whose
    config has not changed since the last run.
    """
    from repro.experiments.sweep import figure5_points, run_sweep

    points = figure5_points(
        scales=scales, skews=skews, policies=policies,
        seeds=seeds, sample_size=sample_size, failures=failures,
    )
    results = run_sweep(points, jobs=jobs, cache=cache, progress=progress, trace=trace)
    cells = {}
    for point in points:
        params = point.as_dict()
        cells[(params["scale"], params["z"], params["policy"])] = results[point]
    return cells


def response_time_rows(
    cells: dict[tuple[float, int, str], SingleUserCell],
    z: int,
    *,
    scales: tuple[float, ...] = PAPER_SCALES,
    policies: tuple[str, ...] = PAPER_POLICIES,
) -> list[list[object]]:
    """Figure 5(a-c) as table rows: one row per scale, one column per policy."""
    rows = []
    for scale in scales:
        row: list[object] = [f"{scale:g}x"]
        for policy in policies:
            row.append(cells[(scale, z, policy)].mean_response)
        rows.append(row)
    return rows


def partitions_rows(
    cells: dict[tuple[float, int, str], SingleUserCell],
    z: int = 1,
    *,
    scales: tuple[float, ...] = PAPER_SCALES,
    policies: tuple[str, ...] = PAPER_POLICIES,
) -> list[list[object]]:
    """Figure 5(d): partitions processed per job (moderate skew)."""
    rows = []
    for scale in scales:
        row: list[object] = [f"{scale:g}x"]
        for policy in policies:
            row.append(cells[(scale, z, policy)].mean_partitions)
        rows.append(row)
    return rows
