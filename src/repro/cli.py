"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``tables`` — print Tables I, II and III.
* ``figure4`` … ``figure8`` — regenerate one figure of the evaluation.
* ``sweep`` — regenerate a figure's grid in parallel with result caching
  (``python -m repro sweep --figure 5 --jobs 8``).
* ``sample`` — run a single sampling job on the simulated cluster.
* ``query`` — execute a SQL statement against a small demo warehouse
  with real (LocalRunner) execution.
* ``trace`` / ``metrics`` — render a structured trace file written by
  ``--trace-out`` as a per-job timeline or as metric tables.
* ``audit`` — replay a trace against the paper's policy contract and
  the task-accounting invariants; exits non-zero on any violation.
* ``report`` — render one or more traces as a deterministic
  markdown/HTML comparative report (``--diff`` for two-trace A/B).
* ``bench`` — run the benchmark suites under the phase profiler, track
  median+MAD history per machine, and compare runs with noise-aware
  regression gating (``repro bench run`` / ``compare`` / ``history``).
* ``policies`` — write the default policy catalogue as policy.xml.

``sample``, ``query`` and ``sweep`` additionally accept ``--profile`` /
``--profile-dir`` for per-phase wall/CPU attribution of a single run
(summary on stderr, optional pstats + flamegraph-collapsed exports).

The figure commands accept ``--jobs N`` (process-pool fan-out over the
grid's independent cells; ``--jobs 1`` is the plain serial path) and
``--cache`` (reuse cached cells from ``.repro_cache/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.core.policy_file import dump_policies
from repro.core.policy import paper_policies
from repro.core.sampling_job import make_sampling_conf
from repro.data.predicates import predicate_for_skew
from repro.engine.cluster_engine import SimulatedCluster
from repro.experiments.heterogeneous import (
    class_throughput_rows,
    run_heterogeneous_experiment,
    scheduler_stats,
)
from repro.experiments.multiuser import (
    FIGURE6_HEADERS,
    figure6_rows,
    run_homogeneous_experiment,
)
from repro.experiments.report import render_table
from repro.experiments.setup import (
    PAPER_FRACTIONS,
    PAPER_POLICIES,
    PAPER_SCALES,
    dataset_for,
    single_user_cluster,
)
from repro.experiments.single_user import (
    partitions_rows,
    response_time_rows,
    run_single_user_experiment,
)
from repro.experiments.skew_figure import figure4_series
from repro.experiments.sweep import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.data.datasets import DATASET_LAYOUTS
from repro.engine.jobconf import STATS_MODES
from repro.engine.runtime import MAP_EXECUTORS
from repro.obs import TraceRecorder, load_trace
from repro.obs.render import render_metrics, render_timeline
from repro.scan import DEFAULT_BATCH_SIZE, SCAN_BATCH, SCAN_MODES
from repro.experiments.tables import (
    TABLE1_HEADERS,
    TABLE2_HEADERS,
    TABLE3_HEADERS,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.workload.user import UserClass


def _int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def _float_list(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part.strip())


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """--jobs / --cache / --cache-dir, shared by the figure and sweep commands."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the grid's cells on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse unchanged cells from the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            f"result cache directory (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR})"
        ),
    )


def _cache_from(args) -> ResultCache | None:
    if getattr(args, "cache", False):
        return ResultCache(args.cache_dir or default_cache_dir())
    return None


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=(
            "write a structured JSONL trace of the run (inspect with "
            "'repro trace FILE' / 'repro metrics FILE')"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help=(
            "print live progress lines to stderr as the run's trace "
            "events arrive (job output is unchanged)"
        ),
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help=(
            "serve live telemetry over HTTP while the run executes: "
            "GET /metrics (Prometheus text) and /telemetry.json "
            "(watch with 'repro top --port PORT'); 0 picks a free port. "
            "Job output is unchanged"
        ),
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "record per-phase wall/CPU timings (summary on stderr; job "
            "output is unchanged)"
        ),
    )
    parser.add_argument(
        "--profile-dir", default=None, metavar="DIR",
        help=(
            "additionally capture cProfile stacks per phase and export "
            "<phase>.pstats + flamegraph-collapsed <phase>.collapsed "
            "files into DIR (implies --profile)"
        ),
    )


@contextmanager
def _profiler(args):
    """Install a PhaseProfiler for the command body, or yield None.

    The profiler is strictly read-side: stdout (and therefore results)
    stay byte-identical with or without it; everything it prints goes
    to stderr in :func:`_finish_profile`.
    """
    if not getattr(args, "profile", False) and not getattr(args, "profile_dir", None):
        yield None
        return
    from repro.obs.profile import PhaseProfiler

    profiler = PhaseProfiler(capture=getattr(args, "profile_dir", None) is not None)
    with profiler:
        yield profiler


def _finish_profile(args, profiler, trace) -> None:
    """Export what the profiler saw: a metrics_snapshot trace event
    (scope "profile"), optional pstats/collapsed dumps, stderr summary.

    Must run before the trace recorder closes (inside its ``with``).
    """
    if profiler is None:
        return
    from repro.obs.profile import PHASE_PREFIX, render_profile

    if trace is not None:
        trace.metrics_snapshot(
            0.0,
            scope="profile",
            metrics=profiler.registry.snapshot(prefix=PHASE_PREFIX),
        )
    profile_dir = getattr(args, "profile_dir", None)
    if profile_dir:
        profiler.dump_pstats(profile_dir)
        profiler.write_collapsed(profile_dir)
        print(f"profile exports written to {profile_dir}", file=sys.stderr)
    print(render_profile(profiler), file=sys.stderr)


def _trace_recorder(args):
    """Context manager yielding a TraceRecorder, or None without
    --trace-out / --progress.

    ``--progress`` alone attaches the live reporter to an in-memory
    recorder (no file is written); combined with ``--trace-out`` the
    same recorder does both. Either way the reporter is a read-side
    listener writing to stderr, so stdout stays byte-identical.
    """
    trace_out = getattr(args, "trace_out", None)
    progress = getattr(args, "progress", False)
    metrics_port = getattr(args, "metrics_port", None)
    if not trace_out and not progress and metrics_port is None:
        return nullcontext(None)
    recorder = TraceRecorder(trace_out) if trace_out else TraceRecorder()
    if progress:
        from repro.obs.progress import ProgressReporter

        recorder.add_listener(ProgressReporter())
    return recorder


@contextmanager
def _telemetry(args, trace):
    """Install a TelemetryHub + HTTP exporter for the command body.

    Active only with ``--metrics-port`` (``_trace_recorder`` guarantees
    an in-memory recorder exists then, so the hub always has an event
    stream to subscribe to). Strictly read-side: the endpoint URL goes
    to stderr and job output is byte-identical hub on or off — the
    parity suite enforces it.
    """
    port = getattr(args, "metrics_port", None)
    if port is None or trace is None:
        yield None
        return
    from repro.obs.export import TelemetryExporter
    from repro.obs.hub import TelemetryHub

    with TelemetryHub() as hub:
        hub.attach(trace)
        exporter = TelemetryExporter(hub, port=port)
        try:
            exporter.start()
        except OSError as exc:
            # A taken port is an operator mistake, not a crash: one
            # line, exit 2, no traceback.
            print(
                f"error: cannot serve telemetry on port {port}: {exc}",
                file=sys.stderr,
            )
            raise SystemExit(2) from exc
        try:
            print(
                f"telemetry: http://127.0.0.1:{exporter.port}/metrics  "
                f"(live view: repro top --port {exporter.port})",
                file=sys.stderr,
            )
            yield hub
        finally:
            exporter.stop()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Extending Map-Reduce for Efficient "
            "Predicate-Based Sampling' (Grover & Carey, ICDE 2012)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("tables", help="print Tables I, II and III")

    fig4 = commands.add_parser("figure4", help="match-placement distribution")
    fig4.add_argument("--scale", type=float, default=5)
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--top", type=int, default=10)

    fig5 = commands.add_parser("figure5", help="single-user response times")
    fig5.add_argument("--scales", type=_int_list, default=PAPER_SCALES)
    fig5.add_argument("--skews", type=_int_list, default=(0, 1, 2))
    fig5.add_argument("--seeds", type=_int_list, default=(0, 1, 2))
    _add_parallel_args(fig5)

    fig6 = commands.add_parser("figure6", help="homogeneous multiuser throughput")
    fig6.add_argument("--skews", type=_int_list, default=(0, 2))
    fig6.add_argument("--seeds", type=_int_list, default=(0,))
    fig6.add_argument("--measurement", type=float, default=2400.0)
    _add_parallel_args(fig6)

    for name in ("figure7", "figure8"):
        fig = commands.add_parser(
            name,
            help=f"heterogeneous workload ({'FIFO' if name == 'figure7' else 'Fair'})",
        )
        fig.add_argument("--fractions", type=_float_list, default=PAPER_FRACTIONS)
        fig.add_argument("--seeds", type=_int_list, default=(0,))
        fig.add_argument("--measurement", type=float, default=3600.0)
        _add_parallel_args(fig)

    sweep = commands.add_parser(
        "sweep",
        help="regenerate a figure's grid in parallel with result caching",
    )
    sweep.add_argument("--figure", type=int, required=True, choices=(4, 5, 6, 7, 8))
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (enabled by default for sweeps)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help=(
            f"result cache directory (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR})"
        ),
    )
    sweep.add_argument("--scales", type=_int_list, default=PAPER_SCALES)
    sweep.add_argument(
        "--skews", type=_int_list, default=None,
        help="default: 0,1,2 for figure 5; 0,2 for figure 6",
    )
    sweep.add_argument("--seeds", type=_int_list, default=None)
    sweep.add_argument("--fractions", type=_float_list, default=PAPER_FRACTIONS)
    sweep.add_argument(
        "--measurement", type=float, default=None,
        help="default: 2400 s for figure 6, 3600 s for figures 7/8",
    )
    sweep.add_argument("--scale", type=float, default=5, help="figure 4 dataset scale")
    sweep.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    _add_trace_arg(sweep)
    _add_profile_args(sweep)

    sample = commands.add_parser("sample", help="run one sampling job")
    sample.add_argument("--scale", type=float, default=100)
    sample.add_argument("--skew", type=int, default=0, choices=(0, 1, 2))
    sample.add_argument("--policy", default="LA")
    sample.add_argument("--k", type=int, default=10_000)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument(
        "--error", type=float, default=None, metavar="PCT",
        help=(
            "run an error-bounded COUNT instead of a k-sample: stop once "
            "the confidence interval's half-width is within PCT%% of the "
            "estimate (ignores --k)"
        ),
    )
    sample.add_argument(
        "--confidence", type=float, default=95.0, metavar="PCT",
        help="confidence level for --error (default: 95)",
    )
    _add_trace_arg(sample)
    _add_profile_args(sample)

    query = commands.add_parser("query", help="execute SQL on a demo warehouse")
    query.add_argument("sql", help="e.g. \"SELECT * FROM lineitem WHERE l_quantity = 51 LIMIT 5\"")
    query.add_argument("--rows", type=int, default=20_000, help="demo table size")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--max-print", type=int, default=10)
    query.add_argument(
        "--scan-mode", default=SCAN_BATCH, choices=SCAN_MODES,
        help="predicate evaluation path (default: batch)",
    )
    query.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="rows per columnar batch in batch mode",
    )
    query.add_argument(
        "--map-workers", type=int, default=None, metavar="N",
        help=(
            "run each batch's map tasks on N workers "
            "(default: $REPRO_MAP_WORKERS or 1, serial)"
        ),
    )
    query.add_argument(
        "--map-executor", default=None, choices=MAP_EXECUTORS,
        help=(
            "worker substrate for parallel map batches: 'thread' "
            "(in-process) or 'process' (mmap-layout datasets only; "
            "workers share page-cache pages). "
            "Default: $REPRO_MAP_EXECUTOR or thread"
        ),
    )
    query.add_argument(
        "--layout", default="row", choices=DATASET_LAYOUTS,
        help=(
            "storage layout for the demo table partitions; 'mmap' writes "
            "a binary columnar file and scans it via mmap"
        ),
    )
    query.add_argument(
        "--data", default=None, metavar="FILE",
        help=(
            "query an existing mmap dataset file (written by "
            "'repro dataset build') instead of generating the demo table; "
            "overrides --rows/--seed/--layout"
        ),
    )
    query.add_argument(
        "--stats-mode", default=None, choices=STATS_MODES,
        help=(
            "use split statistics for LIMIT queries: 'prune' skips "
            "provably-empty partitions (sample stays uniform), 'rank' "
            "additionally grabs the most promising partitions first, "
            "'stratified' prunes lazily without reordering the grab "
            "stream (default: off)"
        ),
    )
    query.add_argument(
        "--error", type=float, default=None, metavar="PCT",
        help=(
            "default error target for aggregate queries (sets the "
            "sampling.error.pct session parameter; a WITHIN clause in "
            "the statement wins)"
        ),
    )
    query.add_argument(
        "--confidence", type=float, default=None, metavar="PCT",
        help=(
            "default confidence level for aggregate queries (sets "
            "sampling.error.confidence; an AT ... CONFIDENCE clause wins)"
        ),
    )
    _add_trace_arg(query)
    _add_profile_args(query)

    dataset = commands.add_parser(
        "dataset",
        help="build and inspect on-disk mmap columnar datasets",
    )
    dataset_sub = dataset.add_subparsers(dest="dataset_command", required=True)

    dataset_build = dataset_sub.add_parser(
        "build",
        help=(
            "stream a LINEITEM dataset into a binary columnar file; "
            "memory stays bounded by one partition at any scale"
        ),
    )
    dataset_build.add_argument("--out", required=True, metavar="FILE")
    dataset_build.add_argument(
        "--rows", type=int, default=120_000,
        help="total rows (100M-row-scale builds are supported; default: 120000)",
    )
    dataset_build.add_argument(
        "--partitions", type=int, default=None, metavar="P",
        help="input partitions (default: the paper's 8-per-scale-unit rule)",
    )
    dataset_build.add_argument("--seed", type=int, default=0)
    dataset_build.add_argument(
        "--selectivity", type=float, default=0.01,
        help="controlled match fraction per marker predicate (default: 0.01)",
    )
    dataset_build.add_argument(
        "--stats", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "embed per-partition split statistics (zone maps + bloom "
            "filters) in the file footer; --no-stats writes the "
            "stats-free version-1 format (default: --stats)"
        ),
    )
    dataset_build.add_argument(
        "--bloom-bits", type=int, default=None, metavar="BITS",
        help=(
            "bloom filter size in bits per low-cardinality column "
            "(multiple of 8; default: 2048)"
        ),
    )

    dataset_info = dataset_sub.add_parser(
        "info", help="print an mmap dataset file's schema and layout summary"
    )
    dataset_info.add_argument("path", metavar="FILE")

    trace = commands.add_parser(
        "trace", help="render a --trace-out file as a per-job timeline"
    )
    trace.add_argument("path", help="JSONL trace file written by --trace-out")
    trace.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="show only this job's events",
    )
    trace.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    metrics = commands.add_parser(
        "metrics", help="render the metric snapshots from a --trace-out file"
    )
    metrics.add_argument("path", help="JSONL trace file written by --trace-out")
    metrics.add_argument(
        "--format", default="table", choices=("table", "prometheus"), dest="fmt",
        help=(
            "output format: human tables (default) or Prometheus text "
            "exposition (works on any existing trace, one block per "
            "metrics_snapshot scope)"
        ),
    )
    metrics.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    top = commands.add_parser(
        "top",
        help=(
            "live terminal dashboard over a run started with "
            "--metrics-port (progress bars, rows/s, latency percentiles)"
        ),
    )
    top.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="telemetry port of the running repro process",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--url", default=None, metavar="URL",
        help="full /telemetry.json URL (overrides --host/--port)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of redrawing in place (for piping)",
    )

    audit = commands.add_parser(
        "audit",
        help=(
            "replay a --trace-out file against the paper's policy contract "
            "and task-accounting invariants (exit 1 on violation)"
        ),
    )
    audit.add_argument("path", help="JSONL trace file written by --trace-out")
    audit.add_argument(
        "--format", default="text", choices=("text", "json"), dest="fmt",
        help=(
            "output format (default: text); json emits stable-key-order "
            "findings for machine consumers"
        ),
    )
    audit.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    doctor = commands.add_parser(
        "doctor",
        help=(
            "diagnose a recorded run: critical path, anomaly findings "
            "(stragglers, stalls, skew, drift, CI stalls), suggested "
            "knob changes (exit 1 when findings exist)"
        ),
    )
    doctor.add_argument("path", help="JSONL trace file written by --trace-out")
    doctor.add_argument(
        "--diff", default=None, metavar="TRACE",
        help="compare against a second trace (findings that appeared/"
        "resolved, per-job wall-time deltas) instead of gating",
    )
    doctor.add_argument(
        "--format", default="md", choices=("md", "json"), dest="fmt",
        help="report format (default: md); --diff renders md only",
    )
    doctor.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report here (a summary line still goes to stdout)",
    )
    doctor.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    slo = commands.add_parser(
        "slo",
        help="declare run-quality objectives in YAML and gate CI on them",
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_sub.add_parser(
        "check",
        help=(
            "evaluate an SLO spec against traces and/or a bench run "
            "record (exit 1 when any objective is missed)"
        ),
    )
    slo_check.add_argument(
        "--spec", required=True, metavar="FILE",
        help="YAML SLO spec (see DESIGN.md §9e for the schema)",
    )
    slo_check.add_argument(
        "traces", nargs="*", metavar="TRACE",
        help="JSONL trace file(s) to hold against the spec",
    )
    slo_check.add_argument(
        "--bench", default=None, metavar="RECORD",
        help=(
            "bench run record for the spec's bench section: a JSON file "
            "(repro bench run --out), or 'latest'/'previous'/a run id "
            "with --history-dir"
        ),
    )
    slo_check.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="bench history store to resolve --bench references against",
    )
    slo_check.add_argument(
        "--format", default="text", choices=("text", "json"), dest="fmt",
        help="output format (default: text)",
    )
    slo_check.add_argument(
        "--no-validate", action="store_true",
        help="skip trace schema validation while loading",
    )

    report = commands.add_parser(
        "report",
        help="render one or more --trace-out files as a comparative report",
    )
    report.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSONL trace file(s) written by --trace-out",
    )
    report.add_argument(
        "--format", default="md", choices=("md", "html"), dest="fmt",
        help="output format (default: md)",
    )
    report.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report here instead of stdout",
    )
    report.add_argument(
        "--diff", action="store_true",
        help="append a per-policy A/B/delta section (needs exactly 2 traces)",
    )
    report.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    policies = commands.add_parser("policies", help="write policy.xml")
    policies.add_argument("--out", default="policy.xml")

    bench = commands.add_parser(
        "bench",
        help="run benchmark suites, track history, detect regressions",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run suites N times, report median+MAD, append to history"
    )
    bench_run.add_argument(
        "--suite", action="append", dest="suites", metavar="NAME",
        help="suite to run (repeatable; default: all — see 'bench list')",
    )
    bench_run.add_argument("--repeats", type=int, default=3, metavar="N")
    bench_run.add_argument(
        "--quick", action="store_true", help="smaller workloads (CI smoke sizes)"
    )
    bench_run.add_argument(
        "--label", default="", help="free-form tag stored with the run"
    )
    bench_run.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="history store (default: benchmarks/history)",
    )
    bench_run.add_argument(
        "--no-history", action="store_true", help="do not append to the history store"
    )
    bench_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the full run record JSON here",
    )
    bench_run.add_argument(
        "--profile-dir", default=None, metavar="DIR",
        help="export pstats + flamegraph-collapsed stacks per suite into DIR",
    )

    bench_compare = bench_sub.add_parser(
        "compare",
        help=(
            "noise-aware regression check between two runs "
            "(exit 1 when any metric regressed)"
        ),
    )
    bench_compare.add_argument(
        "baseline", nargs="?", default=None,
        help="run id prefix, 'latest', 'previous', or a run-record JSON file",
    )
    bench_compare.add_argument(
        "current", nargs="?", default="latest",
        help="same forms as baseline (default: latest history record)",
    )
    bench_compare.add_argument(
        "--against", default=None, metavar="FILE",
        help="baseline run-record JSON artifact (alternative to the positional)",
    )
    bench_compare.add_argument("--history-dir", default=None, metavar="DIR")
    bench_compare.add_argument(
        "--threshold-mads", type=float, default=None, metavar="X",
        help="median shift per metric allowed, in MAD units (default: 5)",
    )
    bench_compare.add_argument(
        "--rel-floor", type=float, default=None, metavar="F",
        help="relative shift always tolerated, vs baseline median (default: 0.10)",
    )
    bench_compare.add_argument(
        "--min-repeats", type=int, default=None, metavar="N",
        help="gate only metrics with at least N repeats on both sides (default: 3)",
    )
    bench_compare.add_argument(
        "--out", default=None, metavar="FILE", help="write the JSON report here"
    )

    bench_sub.add_parser("list", help="list registered suites")

    bench_history = bench_sub.add_parser(
        "history", help="show this machine's recorded runs"
    )
    bench_history.add_argument("--history-dir", default=None, metavar="DIR")
    bench_history.add_argument("--limit", type=int, default=10, metavar="N")

    return parser


# ---------------------------------------------------------------------------
# Command handlers
# ---------------------------------------------------------------------------
def cmd_tables(_args, out) -> int:
    print(render_table(TABLE1_HEADERS, table1_rows(), title="Table I — Policies"), file=out)
    print(file=out)
    print(render_table(TABLE2_HEADERS, table2_rows(), title="Table II — Datasets"), file=out)
    print(file=out)
    print(render_table(TABLE3_HEADERS, table3_rows(), title="Table III — Predicates"), file=out)
    return 0


def cmd_figure4(args, out) -> int:
    series = figure4_series(
        scale=args.scale, seed=args.seed,
        jobs=getattr(args, "jobs", 1), cache=_cache_from(args),
        trace=getattr(args, "_trace", None),
    )
    rows = [
        [rank + 1] + [series[z].counts_by_rank[rank] for z in (0, 1, 2)]
        for rank in range(min(args.top, len(series[0].counts_by_rank)))
    ]
    print(
        render_table(
            ("Partition rank", "z=0", "z=1", "z=2"),
            rows,
            title=f"Figure 4 — matches per partition ({args.scale:g}x data)",
        ),
        file=out,
    )
    return 0


def _progress_printer(args, out):
    if getattr(args, "quiet", False):
        return None

    def progress(point, status):
        print(f"[{status:>6}] {point.describe()}", file=out)

    return progress if getattr(args, "_sweep_progress", False) else None


def cmd_figure5(args, out) -> int:
    cells = run_single_user_experiment(
        scales=args.scales, skews=args.skews, seeds=args.seeds,
        jobs=args.jobs, cache=_cache_from(args),
        progress=_progress_printer(args, out),
        trace=getattr(args, "_trace", None),
    )
    for z in args.skews:
        print(
            render_table(
                ("Scale",) + PAPER_POLICIES,
                response_time_rows(cells, z, scales=args.scales),
                title=f"Figure 5 — response time (s), z={z}",
            ),
            file=out,
        )
        print(file=out)
    if 1 in args.skews:
        print(
            render_table(
                ("Scale",) + PAPER_POLICIES,
                partitions_rows(cells, 1, scales=args.scales),
                title="Figure 5 (d) — partitions processed (moderate skew)",
            ),
            file=out,
        )
    return 0


def cmd_figure6(args, out) -> int:
    cells = run_homogeneous_experiment(
        skews=args.skews, seeds=args.seeds, measurement=args.measurement,
        jobs=args.jobs, cache=_cache_from(args),
        progress=_progress_printer(args, out),
        trace=getattr(args, "_trace", None),
    )
    for z in args.skews:
        print(
            render_table(
                FIGURE6_HEADERS,
                figure6_rows(cells, z),
                title=f"Figure 6 — homogeneous multiuser, z={z}",
            ),
            file=out,
        )
        print(file=out)
    return 0


def _cmd_heterogeneous(args, out, *, scheduler: str, figure: str) -> int:
    cells = run_heterogeneous_experiment(
        scheduler=scheduler,
        fractions=args.fractions,
        seeds=args.seeds,
        measurement=args.measurement,
        jobs=args.jobs,
        cache=_cache_from(args),
        progress=_progress_printer(args, out),
        trace=getattr(args, "_trace", None),
    )
    for user_class, label in (
        (UserClass.SAMPLING, "(a) Sampling"),
        (UserClass.NON_SAMPLING, "(b) Non-Sampling"),
    ):
        print(
            render_table(
                ("Sampling fraction",) + PAPER_POLICIES,
                class_throughput_rows(cells, user_class, fractions=args.fractions),
                title=f"{figure} {label} class throughput (jobs/h), {scheduler}",
            ),
            file=out,
        )
        print(file=out)
    stats = scheduler_stats(cells)
    print(
        f"locality {stats['locality_pct']:.1f}%  "
        f"slot occupancy {stats['slot_occupancy_pct']:.1f}%",
        file=out,
    )
    return 0


def cmd_sweep(args, out) -> int:
    """Regenerate one figure's grid, fanning cells out over worker processes.

    Delegates to the matching figure command after filling in per-figure
    defaults, with the result cache on (unless ``--no-cache``) and
    per-cell progress lines.
    """
    args.cache = not args.no_cache
    args._sweep_progress = True
    figure = args.figure
    if args.seeds is None:
        args.seeds = (0, 1, 2) if figure == 5 else (0,)
    if args.skews is None:
        args.skews = (0, 2) if figure == 6 else (0, 1, 2)
    if args.measurement is None:
        args.measurement = 2400.0 if figure == 6 else 3600.0
    with _trace_recorder(args) as trace, _telemetry(args, trace), _profiler(
        args
    ) as profiler:
        args._trace = trace
        if figure == 4:
            args.seed = args.seeds[0]
            args.top = 10
            code = cmd_figure4(args, out)
        elif figure == 5:
            code = cmd_figure5(args, out)
        elif figure == 6:
            code = cmd_figure6(args, out)
        elif figure == 7:
            code = _cmd_heterogeneous(args, out, scheduler="fifo", figure="Figure 7")
        else:
            code = _cmd_heterogeneous(args, out, scheduler="fair", figure="Figure 8")
        _finish_profile(args, profiler, trace)
    return code


def cmd_sample(args, out) -> int:
    predicate = predicate_for_skew(args.skew)
    with _trace_recorder(args) as trace, _telemetry(args, trace), _profiler(
        args
    ) as profiler:
        cluster = single_user_cluster(seed=args.seed, trace=trace)
        cluster.load_dataset("/d", dataset_for(args.scale, args.skew, args.seed))
        if args.error is not None:
            from repro.approx.estimators import AggregateSpec
            from repro.approx.job import make_approx_conf

            conf = make_approx_conf(
                name="cli-sample", input_path="/d", predicate=predicate,
                aggregate=AggregateSpec("count", None),
                error_pct=args.error, confidence_pct=args.confidence,
                policy_name=args.policy,
            )
        else:
            conf = make_sampling_conf(
                name="cli-sample", input_path="/d", predicate=predicate,
                sample_size=args.k, policy_name=args.policy,
            )
        result = cluster.run_job(conf)
        _finish_profile(args, profiler, trace)
    rows = [
        ["policy", args.policy],
        ["dataset", f"{args.scale:g}x (z={args.skew})"],
    ]
    if result.approx is not None:
        group = result.approx["groups"][0] if result.approx["groups"] else None
        estimate = group["estimate"] if group else None
        half = group["half_width"] if group else None
        rows += [
            ["aggregate", f"COUNT(*) WITHIN {args.error:g}% ERROR"],
            [
                "estimate",
                "-" if estimate is None else f"{estimate:,.0f}"
                + ("" if half is None else f" +/- {half:,.0f}"),
            ],
            ["confidence", f"{result.approx['confidence_pct']:g}%"],
            ["target met", "yes" if result.approx["target_met"] else "no"],
        ]
    else:
        rows.append(["sample size", result.outputs_produced])
    rows += [
        ["response time (s)", result.response_time],
        ["partitions processed", f"{result.splits_processed}/{result.splits_total}"],
        ["records scanned", f"{result.records_processed:,}"],
        ["input increments", result.input_increments],
        ["provider evaluations", result.evaluations],
    ]
    print(
        render_table(
            ("Metric", "Value"),
            rows,
            title="Sampling job result",
        ),
        file=out,
    )
    return 0


def cmd_query(args, out) -> int:
    import tempfile

    from repro.cluster import paper_topology
    from repro.data import LINEITEM_SCHEMA
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale
    from repro.dfs import DistributedFileSystem
    from repro.engine.runtime import LocalRunner
    from repro.hive import HiveSession

    from repro.scan.engine import ScanOptions

    scratch = None
    if args.data is not None:
        from repro.scan.mmapstore import load_mmap_dataset

        dataset = load_mmap_dataset(args.data)
    else:
        spec = dataset_spec_for_scale(args.rows / 6_000_000, num_partitions=16)
        predicates = {predicate_for_skew(z): float(z) for z in (0, 1, 2)}
        build_kwargs = {}
        if args.layout == "mmap":
            # The demo table is rebuilt per run; an unlinked scratch file
            # keeps the mapping alive for exactly this query's lifetime.
            scratch = tempfile.TemporaryDirectory(prefix="repro-query-")
            build_kwargs["mmap_path"] = str(Path(scratch.name) / "lineitem.rcs")
            if args.stats_mode not in (None, "off"):
                build_kwargs["stats"] = True
        dataset = build_materialized_dataset(
            spec, predicates, seed=args.seed, selectivity=0.01,
            layout=args.layout, **build_kwargs,
        )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/warehouse/lineitem", dataset)
    try:
        with _trace_recorder(args) as trace, _telemetry(args, trace), _profiler(
            args
        ) as profiler:
            with LocalRunner(
                seed=args.seed,
                scan_options=ScanOptions(
                    mode=args.scan_mode, batch_size=args.batch_size
                ),
                map_workers=args.map_workers,
                map_executor=args.map_executor,
                trace=trace,
            ) as runner:
                session = HiveSession(runner=runner, dfs=dfs)
                session.register_table(
                    "lineitem", "/warehouse/lineitem", LINEITEM_SCHEMA
                )
                if args.stats_mode is not None:
                    session.set_param("sampling.stats.mode", args.stats_mode)
                if args.error is not None:
                    session.set_param("sampling.error.pct", str(args.error))
                if args.confidence is not None:
                    session.set_param(
                        "sampling.error.confidence", str(args.confidence)
                    )
                result = session.execute(args.sql)
            _finish_profile(args, profiler, trace)
    finally:
        if scratch is not None:
            scratch.cleanup()
    print(f"-- {result.statement}", file=out)
    for row in result.rows[: args.max_print]:
        print(row, file=out)
    remaining = result.num_rows - args.max_print
    if remaining > 0:
        print(f"... {remaining} more rows", file=out)
    if result.job is not None:
        pruned = getattr(result.job, "splits_pruned", 0)
        print(
            f"-- {result.num_rows} rows; scanned "
            f"{result.job.records_processed:,} records in "
            f"{result.job.splits_processed}/{result.job.splits_total} partitions"
            + (f" ({pruned} pruned via split statistics)" if pruned else ""),
            file=out,
        )
    return 0


def cmd_trace(args, out) -> int:
    events = load_trace(args.path, validate=not args.no_validate)
    if args.job is not None:
        known = sorted({e["job_id"] for e in events if e.get("job_id")})
        if args.job not in known:
            print(
                f"error: no job {args.job!r} in {args.path}; "
                f"trace contains: {', '.join(known) or '(none)'}",
                file=sys.stderr,
            )
            return 2
    print(render_timeline(events, job_id=args.job), file=out)
    return 0


def cmd_metrics(args, out) -> int:
    events = load_trace(args.path, validate=not args.no_validate)
    if getattr(args, "fmt", "table") == "prometheus":
        from repro.obs.export import render_registry_prometheus

        blocks = []
        for event in events:
            if event["type"] != "metrics_snapshot":
                continue
            labels = {"scope": event["scope"]}
            if event.get("job_id"):
                labels["job"] = event["job_id"]
            blocks.append(
                render_registry_prometheus(event["metrics"], labels=labels)
            )
        print("".join(blocks), file=out, end="")
        return 0
    print(render_metrics(events), file=out)
    return 0


def cmd_top(args, out) -> int:
    from repro.obs.top import TopError, run_top

    if args.url is None and args.port is None:
        print("error: repro top needs --port (or --url)", file=sys.stderr)
        return 2
    url = args.url or f"http://{args.host}:{args.port}/telemetry.json"
    try:
        return run_top(
            url,
            interval=args.interval,
            iterations=args.iterations,
            out=out,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        return 0
    except TopError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_audit(args, out) -> int:
    from repro.obs.audit import audit_events, audit_json, render_audit

    events = load_trace(args.path, validate=not args.no_validate)
    audit = audit_events(events)
    if getattr(args, "fmt", "text") == "json":
        out.write(audit_json(audit))
    else:
        print(render_audit(audit), file=out)
    return 0 if audit.ok else 1


def cmd_doctor(args, out) -> int:
    from pathlib import Path

    from repro.obs.doctor import (
        diagnose,
        doctor_json,
        render_doctor,
        render_doctor_diff,
    )

    events = load_trace(args.path, validate=not args.no_validate)
    diagnosis = diagnose(events)
    if args.diff is not None:
        if args.fmt != "md":
            print("error: --diff renders markdown only", file=sys.stderr)
            return 2
        other = diagnose(load_trace(args.diff, validate=not args.no_validate))
        rendered = render_doctor_diff(
            diagnosis, other, names=(args.path, args.diff)
        )
    elif args.fmt == "json":
        rendered = doctor_json(diagnosis)
    else:
        rendered = render_doctor(diagnosis)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.out}", file=out)
    else:
        out.write(rendered)
    if args.diff is not None:
        return 0  # Diffing is exploratory, not a gate.
    if diagnosis.findings:
        print(
            f"doctor: {len(diagnosis.findings)} finding(s) in {args.path}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_slo(args, out) -> int:
    from repro.errors import BenchError
    from repro.obs.slo import (
        SloSpecError,
        evaluate_bench_slo,
        evaluate_trace_slo,
        parse_slo_spec,
        render_slo,
        slo_json,
    )

    if not args.traces and args.bench is None:
        print(
            "error: repro slo check needs at least one TRACE or --bench",
            file=sys.stderr,
        )
        return 2
    try:
        spec = parse_slo_spec(Path(args.spec).read_text())
    except OSError as exc:
        print(f"error: cannot read SLO spec: {exc}", file=sys.stderr)
        return 2
    except SloSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if spec.get("bench") and args.bench is None:
        print(
            "error: the spec has a bench section; pass --bench RECORD",
            file=sys.stderr,
        )
        return 2
    reports = []
    try:
        for path in args.traces:
            events = load_trace(path, validate=not args.no_validate)
            reports.append(evaluate_trace_slo(spec, events, source=path))
        if args.bench is not None:
            record = _bench_resolve(
                args.bench, args.history_dir, what="bench record"
            )
            reports.append(
                evaluate_bench_slo(spec, record, source=f"bench:{args.bench}")
            )
    except (SloSpecError, BenchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        out.write(slo_json(reports))
    else:
        out.write(render_slo(reports))
    return 0 if all(report.ok for report in reports) else 1


def cmd_report(args, out) -> int:
    from pathlib import Path

    from repro.obs.report import render_report

    traces = [
        (Path(path).name, load_trace(path, validate=not args.no_validate))
        for path in args.paths
    ]
    if args.diff and len(traces) != 2:
        print(
            f"error: --diff needs exactly 2 traces, got {len(traces)}",
            file=sys.stderr,
        )
        return 2
    text = render_report(traces, fmt=args.fmt, diff=args.diff)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=out)
    else:
        print(text, file=out, end="")
    return 0


def cmd_dataset_build(args, out) -> int:
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale

    spec = dataset_spec_for_scale(
        args.rows / 6_000_000,
        num_partitions=args.partitions,
    )
    predicates = {predicate_for_skew(z): float(z) for z in (0, 1, 2)}
    build_materialized_dataset(
        spec, predicates, seed=args.seed, selectivity=args.selectivity,
        layout="mmap", mmap_path=args.out,
        stats=args.stats, bloom_bits=args.bloom_bits,
    )
    size = Path(args.out).stat().st_size
    print(
        f"wrote {args.out}: {spec.num_rows:,} rows in {spec.num_partitions} "
        f"partitions, {size:,} bytes"
        f"{' (with split statistics)' if args.stats else ''}",
        file=out,
    )
    return 0


def cmd_dataset_info(args, out) -> int:
    from repro.scan.mmapstore import open_mmap_dataset

    reader = open_mmap_dataset(args.path)
    rows = [
        ["file bytes", f"{reader.file_size:,}"],
        ["eager bytes on open", f"{reader.eager_bytes:,}"],
        ["rows", f"{reader.num_rows:,}"],
        ["partitions", reader.num_partitions],
        ["columns", len(reader.names)],
    ]
    meta = reader.meta.get("repro")
    if meta:
        rows.append(["spec", meta["spec"]["name"]])
        rows.append(
            ["predicates", ", ".join(p["name"] for p in meta["predicates"])]
        )
    print(render_table(("Property", "Value"), rows, title=f"mmap dataset {args.path}"), file=out)
    type_names = {"i": "int64", "f": "float64", "b": "bool", "s": "string"}
    print(file=out)
    print(
        render_table(
            ("Column", "Type"),
            [[name, type_names[code]] for name, code in zip(reader.names, reader.types)],
            title="Schema",
        ),
        file=out,
    )
    print(file=out)
    if reader.stats is None:
        print(
            "split statistics: none (version "
            f"{reader.version} file; rebuild with --stats to embed zone "
            "maps and bloom filters)",
            file=out,
        )
        return 0

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    stat_rows = []
    for col_index, name in enumerate(reader.names):
        per_part = [
            reader.stats[p][col_index] for p in range(reader.num_partitions)
        ]
        mins = [s.min_value for s in per_part if s.has_minmax]
        maxs = [s.max_value for s in per_part if s.has_minmax]
        blooms = sum(1 for s in per_part if s.bloom is not None)
        nulls = sum(s.null_count for s in per_part)
        stat_rows.append(
            [
                name,
                fmt(min(mins)) if mins else "-",
                fmt(max(maxs)) if maxs else "-",
                f"{len(mins)}/{len(per_part)}",
                f"{blooms}/{len(per_part)}",
                f"{nulls:,}",
            ]
        )
    print(
        render_table(
            ("Column", "Min", "Max", "Zone maps", "Blooms", "Nulls"),
            stat_rows,
            title=(
                "Split statistics "
                f"(bloom: {reader.bloom_bits} bits x "
                f"{reader.bloom_hashes} hashes)"
            ),
        ),
        file=out,
    )
    if meta and meta.get("predicates"):
        from repro.data.predicates import MarkerEquals
        from repro.scan.prune import may_match

        prune_rows = []
        for entry in meta["predicates"]:
            predicate = MarkerEquals(entry["column"], entry["marker"])
            prunable = sum(
                1
                for p in range(reader.num_partitions)
                if not may_match(predicate, reader.partition_stats(p))
            )
            prune_rows.append(
                [entry["name"], f"{prunable}/{reader.num_partitions}"]
            )
        print(file=out)
        print(
            render_table(
                ("Predicate", "Prunable partitions"),
                prune_rows,
                title="Prune-ability of the controlled marker predicates",
            ),
            file=out,
        )
    return 0


def cmd_dataset(args, out) -> int:
    return {
        "build": cmd_dataset_build,
        "info": cmd_dataset_info,
    }[args.dataset_command](args, out)


def cmd_policies(args, out) -> int:
    dump_policies(paper_policies(), args.out)
    print(f"wrote {args.out}", file=out)
    return 0


# ---------------------------------------------------------------------------
# bench: continuous benchmarking
# ---------------------------------------------------------------------------
def _bench_resolve(ref: str | None, history_dir, *, what: str) -> dict:
    """A run record from a JSON file path, 'latest'/'previous', or a run id."""
    from repro.bench.history import find_run, latest_run, load_history
    from repro.errors import BenchError

    if ref is None:
        raise BenchError(f"no {what} given: pass a run id, 'latest', or a JSON file")
    path = Path(ref)
    if path.suffix == ".json" or path.exists():
        return json.loads(path.read_text())
    records = load_history(history_dir)
    if ref == "latest":
        return latest_run(records)
    if ref == "previous":
        if len(records) < 2:
            raise BenchError(f"history has {len(records)} run(s); no 'previous'")
        return records[-2]
    return find_run(records, ref)


def cmd_bench_run(args, out) -> int:
    from repro.bench.history import append_run
    from repro.bench.runner import render_run, run_suites

    record = run_suites(
        args.suites,
        repeats=args.repeats,
        quick=args.quick,
        label=args.label,
        profile_dir=args.profile_dir,
        progress=lambda message: print(message, file=sys.stderr),
    )
    print(render_run(record), file=out)
    if not args.no_history:
        path = append_run(record, args.history_dir)
        print(f"recorded run {record['run_id']} in {path}", file=out)
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}", file=out)
    return 0


def cmd_bench_compare(args, out) -> int:
    from repro.bench.compare import compare_runs, render_compare, report_json

    baseline_ref = args.against if args.against is not None else args.baseline
    if args.against is not None and args.baseline is not None:
        # Both forms given: the positional shifts to being the current run.
        args.current = args.baseline
    baseline = _bench_resolve(baseline_ref, args.history_dir, what="baseline")
    current = _bench_resolve(args.current, args.history_dir, what="current run")
    settings = {
        key: value
        for key, value in (
            ("threshold_mads", args.threshold_mads),
            ("rel_floor", args.rel_floor),
            ("min_repeats", args.min_repeats),
        )
        if value is not None
    }
    report = compare_runs(baseline, current, **settings)
    print(render_compare(report), file=out)
    if args.out:
        Path(args.out).write_text(report_json(report))
        print(f"wrote {args.out}", file=out)
    return 0 if report.ok else 1


def cmd_bench_list(_args, out) -> int:
    from repro.bench.suites import SUITES

    for suite in SUITES.values():
        print(f"{suite.name:<8} {suite.description}", file=out)
    return 0


def cmd_bench_history(args, out) -> int:
    from repro.bench.history import load_history, machine_key

    records = load_history(args.history_dir)
    if not records:
        print(f"no recorded runs for machine {machine_key()}", file=out)
        return 0
    shown = records[-args.limit:] if args.limit > 0 else records
    for record in shown:
        suites = ",".join(record.get("options", {}).get("suites", []))
        label = record.get("label") or "-"
        print(
            f"{record.get('run_id', '?'):<14} repeats={record['options']['repeats']}"
            f" quick={record['options']['quick']} label={label} suites={suites}",
            file=out,
        )
    print(f"{len(records)} run(s) for machine {machine_key()}", file=out)
    return 0


def cmd_bench(args, out) -> int:
    return {
        "run": cmd_bench_run,
        "compare": cmd_bench_compare,
        "list": cmd_bench_list,
        "history": cmd_bench_history,
    }[args.bench_command](args, out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": cmd_tables,
        "figure4": cmd_figure4,
        "figure5": cmd_figure5,
        "figure6": cmd_figure6,
        "figure7": lambda a, o: _cmd_heterogeneous(
            a, o, scheduler="fifo", figure="Figure 7"
        ),
        "figure8": lambda a, o: _cmd_heterogeneous(
            a, o, scheduler="fair", figure="Figure 8"
        ),
        "sweep": cmd_sweep,
        "sample": cmd_sample,
        "query": cmd_query,
        "dataset": cmd_dataset,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "top": cmd_top,
        "audit": cmd_audit,
        "doctor": cmd_doctor,
        "slo": cmd_slo,
        "report": cmd_report,
        "policies": cmd_policies,
        "bench": cmd_bench,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
