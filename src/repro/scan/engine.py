"""Map-task execution over splits: the scan engine's entry point.

Both real-execution substrates — the :class:`~repro.engine.runtime.LocalRunner`
and the simulated cluster's TaskTrackers — execute a map task by calling
:func:`run_map_task`, which picks the scan path:

* ``batch`` (default) — columnar batches through ``Mapper.run_batches``
  when the mapper implements a batch fast path; everything else falls
  back to the per-row loop with a compiled predicate.
* ``compiled`` — the classic per-row loop, but predicates evaluate
  through :func:`repro.scan.codegen.compile_row_matcher` closures.
* ``interpreted`` — the original per-row loop with interpreted
  ``Predicate.matches`` dispatch; kept as the cross-checking fallback.

All three paths produce byte-identical output (rows, order, counters);
the equivalence tests assert it. Per-job overrides ride on the JobConf
string parameters ``scan.mode`` / ``scan.batch.size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.mapreduce import MapContext, Mapper
from repro.errors import JobConfError
from repro.obs import profile as _profile
from repro.obs.profile import wall_clock
from repro.scan.columnar import DEFAULT_BATCH_SIZE

SCAN_INTERPRETED = "interpreted"
SCAN_COMPILED = "compiled"
SCAN_BATCH = "batch"
SCAN_MODES = (SCAN_INTERPRETED, SCAN_COMPILED, SCAN_BATCH)

# JobConf parameter names (Hadoop-style string params, SET-able via Hive).
SCAN_MODE_PARAM = "scan.mode"
SCAN_BATCH_SIZE_PARAM = "scan.batch.size"


@dataclass(frozen=True)
class ScanOptions:
    """How a substrate should drive mappers over materialized splits."""

    mode: str = SCAN_BATCH
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.mode not in SCAN_MODES:
            raise JobConfError(
                f"unknown scan mode {self.mode!r}; one of {SCAN_MODES}"
            )
        if self.batch_size < 1:
            raise JobConfError(
                f"scan batch size must be >= 1, got {self.batch_size}"
            )

    def with_conf(self, conf) -> "ScanOptions":
        """These options overridden by the JobConf's scan parameters."""
        mode = conf.get(SCAN_MODE_PARAM)
        size = conf.get_int(SCAN_BATCH_SIZE_PARAM)
        if mode is None and size is None:
            return self
        return ScanOptions(
            mode=mode if mode is not None else self.mode,
            batch_size=size if size is not None else self.batch_size,
        )


@dataclass(frozen=True)
class ScanSpan:
    """Timing record for one map-task scan (observability layer).

    ``elapsed_s`` is wall clock, so spans are diagnostic only — they
    never feed job results or anything else that must be deterministic.
    """

    split_id: str
    mode: str
    batch_size: int
    rows: int
    outputs: int
    elapsed_s: float

    @property
    def rows_per_sec(self) -> float | None:
        return self.rows / self.elapsed_s if self.elapsed_s > 0 else None


def run_map_task(
    conf,
    split,
    options: ScanOptions | None = None,
    *,
    span_sink: Callable[[ScanSpan], None] | None = None,
) -> MapContext:
    """Execute ``conf``'s mapper over one materialized split.

    Returns the filled :class:`MapContext`; ``records_read`` reflects
    the rows actually scanned (early exit included), which is what the
    Input Provider progress statistics are built from.

    ``span_sink``, when given, receives one :class:`ScanSpan` with the
    scan's row counts and wall-clock duration. The scan itself is
    untouched by it — the hot loop carries no timing code, the clock is
    read once on each side of the scan, and output bytes are identical
    with or without a sink.
    """
    options = (options or ScanOptions()).with_conf(conf)
    mapper = conf.mapper_factory()
    context = MapContext()
    mapper.prepare_scan(options.mode)
    # ScanSpan timings read the shared profiler clock (wall_clock), and
    # the clock reads sit inside the profiler's scan.map_task span, so
    # per-split spans in a trace and the profile.scan.map_task phase in
    # a metrics snapshot can be joined: phase wall >= sum of elapsed_s.
    with _profile.profiled_span(_profile.PHASE_SCAN):
        start = wall_clock() if span_sink is not None else 0.0
        if options.mode == SCAN_BATCH and _has_batch_path(mapper):
            mapper.run_batches(split.iter_batches(options.batch_size), context)
        else:
            mapper.run(
                ((index, row) for index, row in enumerate(split.iter_rows())), context
            )
        elapsed = wall_clock() - start if span_sink is not None else 0.0
    if span_sink is not None:
        span_sink(
            ScanSpan(
                split_id=split.split_id,
                mode=options.mode,
                batch_size=options.batch_size,
                rows=context.records_read,
                outputs=context.outputs_produced,
                elapsed_s=elapsed,
            )
        )
    return context


def _has_batch_path(mapper: Mapper) -> bool:
    """True when the mapper overrides the batch hook.

    Mappers that never specialized ``run_batch`` gain nothing from the
    columnar layout (the default would just re-synthesize row dicts), so
    they keep the plain row loop — identical behavior, no transpose cost.
    """
    return type(mapper).run_batch is not Mapper.run_batch
