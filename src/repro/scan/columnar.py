"""Column-major split storage.

A :class:`ColumnStore` holds one partition's rows as parallel per-column
lists instead of per-row dicts: the scan loop then touches a handful of
flat lists rather than hashing a column name per row, and the codegen
layer (:mod:`repro.scan.codegen`) can bind each referenced column to a
local once per batch. Row dicts remain the logical model — a store can
synthesize them on demand (:meth:`ColumnStore.row_at`), preserving the
original column order so row-mode and batch-mode execution produce
byte-identical output.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.data.record import Row, row_at
from repro.errors import DataGenerationError

DEFAULT_BATCH_SIZE = 4096
"""Rows per :class:`ColumnBatch` when no size is given."""


class ColumnStore:
    """One partition's rows, stored column-major.

    ``names`` preserves the source rows' column order; ``columns`` maps
    each name to a list holding that column's values for every row.
    """

    __slots__ = ("names", "columns", "num_rows")

    def __init__(self, names: tuple[str, ...], columns: dict[str, list]) -> None:
        lengths = {len(columns[name]) for name in names}
        if len(lengths) > 1:
            raise DataGenerationError(
                f"ragged column store: column lengths {sorted(lengths)}"
            )
        self.names = tuple(names)
        self.columns = columns
        self.num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_rows(cls, rows: Iterable[Row]) -> "ColumnStore":
        """Transpose row dicts (all sharing one key set) into columns."""
        rows = list(rows)
        if not rows:
            return cls((), {})
        names = tuple(rows[0].keys())
        columns: dict[str, list] = {name: [] for name in names}
        appends = [columns[name].append for name in names]
        for row in rows:
            if len(row) != len(names):
                raise DataGenerationError(
                    f"row with {len(row)} columns in a {len(names)}-column store"
                )
            for name, append in zip(names, appends):
                append(row[name])
        return cls(names, columns)

    def row_at(self, index: int, columns: tuple[str, ...] | None = None) -> Row:
        """Synthesize the row dict at ``index`` (optionally projected)."""
        names = columns if columns is not None else self.names
        return row_at(names, self.columns, index)

    def iter_rows(self) -> Iterator[Row]:
        """All rows as dicts, in order (the row-mode view of the store)."""
        names = self.names
        cols = [self.columns[name] for name in names]
        for values in zip(*cols):
            yield dict(zip(names, values))

    def batch(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(self, start, stop)

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator["ColumnBatch"]:
        """Consecutive batches of up to ``size`` rows covering the store."""
        if size < 1:
            raise DataGenerationError(f"batch size must be >= 1, got {size}")
        for start in range(0, self.num_rows, size):
            yield ColumnBatch(self, start, min(start + size, self.num_rows))

    def __len__(self) -> int:
        return self.num_rows


class ColumnBatch:
    """A ``[start, stop)`` window over a :class:`ColumnStore`.

    Batches are views — no column data is copied. Indices handed to
    matchers and :meth:`row` are absolute store indices, which double as
    the record keys the row-mode map loop produces via ``enumerate``.
    """

    __slots__ = ("store", "start", "stop")

    def __init__(self, store: ColumnStore, start: int, stop: int) -> None:
        self.store = store
        self.start = start
        self.stop = stop

    @property
    def columns(self) -> dict[str, list]:
        return self.store.columns

    def row(self, index: int, columns: tuple[str, ...] | None = None) -> Row:
        """The row dict at absolute ``index`` (optionally projected)."""
        return self.store.row_at(index, columns)

    def iter_indexed_rows(self) -> Iterator[tuple[int, Row]]:
        """``(absolute_index, row_dict)`` pairs — the per-row fallback view."""
        store = self.store
        for index in range(self.start, self.stop):
            yield index, store.row_at(index)

    def __len__(self) -> int:
        return self.stop - self.start
