"""Vectorized scan engine.

The real-execution hot path: columnar split storage
(:mod:`repro.scan.columnar`), predicate/projection compilation via
source codegen (:mod:`repro.scan.codegen`), and the batch map-task
executor shared by the LocalRunner and the simulated TaskTrackers
(:mod:`repro.scan.engine`).
"""

from repro.scan.columnar import DEFAULT_BATCH_SIZE, ColumnBatch, ColumnStore
from repro.scan.codegen import compile_batch_matcher, compile_row_matcher
from repro.scan.engine import (
    SCAN_BATCH,
    SCAN_COMPILED,
    SCAN_INTERPRETED,
    SCAN_MODES,
    ScanOptions,
    run_map_task,
)

__all__ = [
    "ColumnBatch",
    "ColumnStore",
    "DEFAULT_BATCH_SIZE",
    "compile_batch_matcher",
    "compile_row_matcher",
    "SCAN_BATCH",
    "SCAN_COMPILED",
    "SCAN_INTERPRETED",
    "SCAN_MODES",
    "ScanOptions",
    "run_map_task",
]
