"""Predicate compilation via Python source codegen.

The interpreted scan path pays, per row, a generator resumption, an
``_OPERATORS`` dict dispatch, a lambda frame, and one attribute walk per
predicate node. This module instead renders a predicate tree into a
single Python boolean expression, wraps it in a function, and
``compile()``s it once per task:

* :func:`compile_row_matcher` — ``fn(row) -> bool``, a drop-in for
  ``Predicate.matches`` with zero interpretation overhead per row.
* :func:`compile_batch_matcher` — a fused scan loop over a
  :class:`~repro.scan.columnar.ColumnStore`'s column lists. Referenced
  columns are bound to locals once per call, the predicate is inlined in
  the loop body, and an optional match limit short-circuits the scan
  mid-batch (Algorithm 1's LIMIT semantics). Returns rows scanned so
  progress counters stay exact under early exit.

Both generated forms implement the same NULL semantics as the (kept)
interpreted path: any comparison whose operand is ``None`` evaluates
false. Predicates outside the core algebra participate through an
``emit_source(emitter)`` hook (the Hive expression layer implements it)
or, as a last resort, through a per-row callback on a synthesized row
dict — still fused into the batch loop, just not column-bound.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.data.predicates import (
    And,
    ColumnCompare,
    FunctionPredicate,
    MarkerEquals,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.errors import ScanCompileError

#: Comparison operators that need a ``is not None`` guard: Python would
#: either raise (ordering) or invert the SQL result (``!=``) on None.
#: Plain ``=`` needs no guard — ``None == literal`` is already False for
#: the non-None literals the guard-free path is limited to.
_GUARDED_OPS = {"!=", "<", "<=", ">", ">="}
_VALID_OPS = {"=", "!=", "<", "<=", ">", ">="}


class RowMatcher(Protocol):
    def __call__(self, row: dict) -> bool: ...


class BatchMatcher(Protocol):
    def __call__(
        self,
        columns: dict[str, list],
        start: int,
        stop: int,
        limit: int | None,
        append: Callable[[int], None],
    ) -> int: ...


class SourceEmitter:
    """Collects the constant pool and column bindings while a predicate
    tree renders itself to one Python expression string.

    ``ref(name)`` returns the source expression for the named column's
    current-row value; ``row_expr`` is the source expression for the
    whole current row (used only by opaque function predicates).
    """

    def __init__(self, ref: Callable[[str], str], row_expr: str) -> None:
        self.ref = ref
        self.row_expr = row_expr
        self.namespace: dict[str, object] = {}
        self._counter = 0

    def const(self, value: object) -> str:
        """Bind ``value`` into the compiled function's globals."""
        name = f"_k{len(self.namespace)}"
        self.namespace[name] = value
        return name

    def temp(self) -> str:
        """A fresh temp-variable name for walrus-bound subexpressions."""
        name = f"_t{self._counter}"
        self._counter += 1
        return name


def emit_predicate(pred: Predicate, em: SourceEmitter) -> str:
    """Render ``pred`` as a Python boolean expression string."""
    if isinstance(pred, TruePredicate):
        return "True"
    if isinstance(pred, ColumnCompare):
        return _emit_compare(em, pred.column, pred.op, pred.value)
    if isinstance(pred, MarkerEquals):
        return _emit_compare(em, pred.column, "=", pred.marker)
    if isinstance(pred, And):
        if not pred.children:
            return "True"
        return "(" + " and ".join(emit_predicate(c, em) for c in pred.children) + ")"
    if isinstance(pred, Or):
        if not pred.children:
            return "False"
        return "(" + " or ".join(emit_predicate(c, em) for c in pred.children) + ")"
    if isinstance(pred, Not):
        return f"(not {emit_predicate(pred.child, em)})"
    emit = getattr(pred, "emit_source", None)
    if emit is not None:
        return emit(em)
    if isinstance(pred, FunctionPredicate):
        return f"bool({em.const(pred.fn)}({em.row_expr}))"
    # Unknown Predicate subclass: fall back to its interpreted matches().
    return f"bool({em.const(pred.matches)}({em.row_expr}))"


def _emit_compare(em: SourceEmitter, column: str, op: str, value: object) -> str:
    if op not in _VALID_OPS:
        raise ScanCompileError(f"cannot compile comparison operator {op!r}")
    if value is None:
        # SQL: comparing anything against NULL (even NULL) is not true.
        return "False"
    ref = em.ref(column)
    const = em.const(value)
    if op == "=":
        return f"({ref} == {const})"
    temp = em.temp()
    return f"(({temp} := {ref}) is not None and {temp} {op} {const})"


# ---------------------------------------------------------------------------
# Compilation entry points
# ---------------------------------------------------------------------------
_row_cache: dict[Predicate, RowMatcher] = {}
_batch_cache: dict[Predicate, BatchMatcher] = {}


def compile_row_matcher(pred: Predicate) -> RowMatcher:
    """Compile ``pred`` into a single-function ``fn(row) -> bool``."""
    try:
        cached = _row_cache.get(pred)
    except TypeError:  # unhashable literal somewhere in the tree
        cached = None
    if cached is not None:
        return cached
    em = SourceEmitter(ref=lambda name: f"_r[{_name_const(em, name)}]", row_expr="_r")
    expr = emit_predicate(pred, em)
    source = f"def _match(_r):\n    return {expr}\n"
    matcher = _compile(source, "_match", em.namespace, pred)
    _cache_put(_row_cache, pred, matcher)
    return matcher


def compile_batch_matcher(pred: Predicate) -> BatchMatcher:
    """Compile ``pred`` into a fused columnar scan loop.

    The generated function scans ``columns`` over ``[start, stop)``,
    calls ``append(i)`` for each matching absolute row index, stops
    after ``limit`` matches (``None`` scans everything), and returns the
    number of rows actually scanned.
    """
    try:
        cached = _batch_cache.get(pred)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    source, namespace = batch_matcher_source(pred)
    matcher = _compile(source, "_scan", namespace, pred)
    _cache_put(_batch_cache, pred, matcher)
    return matcher


def batch_matcher_source(pred: Predicate) -> tuple[str, dict]:
    """The batch matcher's generated source and constant namespace.

    This is the shippable form of a compiled predicate: for core-algebra
    predicates the namespace holds only column names and literals, so
    ``(source, namespace)`` pickles cleanly and a map worker **process**
    can re-``compile()`` the matcher locally instead of receiving code
    objects (which don't pickle) or row data. Opaque function predicates
    put callables in the namespace; whether those ship depends on their
    own picklability — the runtime falls back to in-process execution
    when they don't.
    """
    col_vars: dict[str, str] = {}

    def ref(name: str) -> str:
        var = col_vars.get(name)
        if var is None:
            var = f"_col{len(col_vars)}"
            col_vars[name] = var
        return f"{var}[_i]"

    em = SourceEmitter(ref=ref, row_expr="_rowat(_i)")
    expr = emit_predicate(pred, em)
    bindings = [
        f"    {var} = _cols[{_name_const(em, name)}]"
        for name, var in col_vars.items()
    ]
    if "_rowat" in expr:
        bindings.append(f"    _rowat = {em.const(_row_synthesizer)}(_cols)")
    body = "\n".join(bindings)
    source = (
        "def _scan(_cols, _start, _stop, _limit, _append):\n"
        f"{body}\n"
        "    _n = 0\n"
        "    for _i in range(_start, _stop):\n"
        f"        if {expr}:\n"
        "            _append(_i)\n"
        "            _n += 1\n"
        "            if _n == _limit:\n"
        "                return _i - _start + 1\n"
        "    return _stop - _start\n"
    )
    return source, em.namespace


def compile_batch_matcher_from_source(source: str, namespace: dict) -> BatchMatcher:
    """Rebuild a batch matcher from :func:`batch_matcher_source` output.

    Used by process map workers: the parent ships the source string and
    constant pool, the worker compiles once per task. The namespace dict
    is mutated by ``exec`` (it gains the function object), so callers
    should pass a copy if they intend to reuse it.
    """
    try:
        code = compile(source, "<scan:worker>", "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise ScanCompileError(
            f"received invalid scan source: {exc}\n{source}"
        ) from exc
    exec(code, namespace)
    fn = namespace["_scan"]
    fn.__scan_source__ = source
    return fn


def _row_synthesizer(columns: dict[str, list]):
    """Row-dict factory for opaque function predicates in batch mode."""
    names = tuple(columns)

    def rowat(index: int) -> dict:
        return {name: columns[name][index] for name in names}

    return rowat


def _name_const(em: SourceEmitter, name: str) -> str:
    # Column names are interned via the constant pool rather than quoted
    # inline so odd names (quotes, backslashes) cannot break the source.
    return em.const(name)


def _compile(source: str, entry: str, namespace: dict, pred: Predicate):
    try:
        code = compile(source, f"<scan:{pred!s}>", "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise ScanCompileError(
            f"generated invalid scan source for {pred!s}: {exc}\n{source}"
        ) from exc
    exec(code, namespace)
    fn = namespace[entry]
    fn.__scan_source__ = source  # introspection hook for tests/debugging
    return fn


def _cache_put(cache: dict, pred: Predicate, fn) -> None:
    if len(cache) >= 512:  # bound long sessions compiling many ad-hoc queries
        cache.clear()
    try:
        cache[pred] = fn
    except TypeError:
        pass
