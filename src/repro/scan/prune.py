"""Static predicate analysis against split statistics (zone maps/blooms).

Answers one question per split without touching row data: *can this
split possibly contain a matching row?* The analyzer walks the same two
predicate shapes the scan engine executes — core
:mod:`repro.data.predicates` trees and, through
:class:`~repro.hive.expressions.ExpressionPredicate`, Hive WHERE ASTs —
mirroring the dispatch structure of :mod:`repro.scan.codegen`, and
evaluates each comparison against the footer STATS section of an mmap
dataset (:mod:`repro.scan.mmapstore`).

Every verdict is conservative in one direction only: :func:`may_match`
returning ``False`` is a *proof* that no row in the split satisfies the
predicate (so the split can be retired unscanned), while ``True`` just
means "maybe" — unsupported expressions, missing stats, and type
surprises all fall back to maybe. Internally each node is analyzed into
a ``(may_match, matches_all)`` pair so ``NOT`` stays sound:
``NOT p`` can only be refuted by proving ``p`` holds for *every* row.

NULL handling follows the engine's collapsed three-valued logic: a
comparison against NULL (either side) is never true, so an all-NULL
column refutes any comparison over it, and ``matches_all`` for a
comparison additionally requires a NULL-free column.

:func:`estimate_matches` is the companion ranking heuristic: a crude
zone-map selectivity guess used only to order grabs (and seed the
selectivity estimator) — it carries no soundness obligation.
"""

from __future__ import annotations

from typing import Mapping

from repro.data.predicates import (
    And,
    ColumnCompare,
    MarkerEquals,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.errors import MmapStoreError
from repro.scan.mmapstore import ColumnStats, open_mmap_dataset

# The hive layer is imported lazily inside the AST walkers: the package
# __init__ pulls in the compiler stack (which reaches back into core/),
# so a module-level import here would be an import cycle waiting for an
# unlucky entry point. By the time an AST is analyzed, hive is loaded.

#: Fallback equality selectivity when the zone map gives no usable width.
_EQ_SELECTIVITY = 0.05
#: Fallback selectivity for comparisons the estimator cannot size.
_DEFAULT_SELECTIVITY = 0.3

_MAYBE = (True, False)
"""The conservative verdict: might match, not provably all-matching."""


def split_stats(split) -> Mapping[str, ColumnStats] | None:
    """Column stats for a split's partition, or None when unavailable.

    Only mmap-backed splits whose dataset file carries a STATS section
    have stats; everything else (row/columnar layouts, profile-only sim
    splits, unreadable files) yields None and is never pruned.
    """
    ref = getattr(split, "mmap_ref", None)
    if ref is None:
        return None
    try:
        return open_mmap_dataset(ref.path).partition_stats(ref.partition)
    except (OSError, MmapStoreError):
        return None


def may_match(predicate: Predicate, stats: Mapping[str, ColumnStats]) -> bool:
    """False only when provably no row in the split satisfies the predicate."""
    return _analyze(predicate, stats)[0]


def matches_all(predicate: Predicate, stats: Mapping[str, ColumnStats]) -> bool:
    """True only when provably every row in the split satisfies it."""
    return _analyze(predicate, stats)[1]


# ---------------------------------------------------------------------------
# Comparison kernels over one column's zone map + bloom
# ---------------------------------------------------------------------------
def partition_rows(stats: Mapping[str, ColumnStats]) -> int:
    """Row count of the partition the stats describe."""
    for column_stats in stats.values():
        return column_stats.row_count
    return 0


def _compare(stats: ColumnStats, op: str, value) -> tuple[bool, bool]:
    """(may, all) for ``column <op> literal`` under SQL NULL semantics."""
    if stats.row_count == 0:
        return False, True  # vacuous: no rows to match, and all of them do
    if value is None:
        return False, False  # comparison against a NULL literal is never true
    if stats.non_null_count <= 0:
        return False, False  # all-NULL column: every comparison is false
    null_free = stats.null_count == 0

    if op == "=" and stats.bloom is not None and not stats.bloom.might_contain(value):
        return False, False
    if op == "!=" and stats.bloom is not None and not stats.bloom.might_contain(value):
        return True, null_free  # value provably absent: every non-NULL row differs

    if not stats.has_minmax:
        return _MAYBE
    low, high = stats.min_value, stats.max_value
    try:
        if op == "=":
            return (
                low <= value <= high,
                null_free and low == value and high == value,
            )
        if op == "!=":
            return (
                not (low == value and high == value),
                null_free and (value < low or value > high),
            )
        if op == "<":
            return low < value, null_free and high < value
        if op == "<=":
            return low <= value, null_free and high <= value
        if op == ">":
            return high > value, null_free and low > value
        if op == ">=":
            return high >= value, null_free and low >= value
    except TypeError:
        # Incomparable types (str bound vs int literal, ...): the scan
        # itself decides; never prune on a comparison we cannot perform.
        return _MAYBE
    return _MAYBE


def _column_compare(
    stats: Mapping[str, ColumnStats], column: str, op: str, value
) -> tuple[bool, bool]:
    column_stats = stats.get(column)
    if column_stats is None:
        return _MAYBE
    return _compare(column_stats, op, value)


# ---------------------------------------------------------------------------
# Core predicate trees
# ---------------------------------------------------------------------------
def _analyze(predicate: Predicate, stats: Mapping[str, ColumnStats]) -> tuple[bool, bool]:
    if isinstance(predicate, TruePredicate):
        return True, True
    if isinstance(predicate, MarkerEquals):
        return _column_compare(stats, predicate.column, "=", predicate.marker)
    if isinstance(predicate, ColumnCompare):
        return _column_compare(stats, predicate.column, predicate.op, predicate.value)
    if isinstance(predicate, And):
        verdicts = [_analyze(child, stats) for child in predicate.children]
        return all(v[0] for v in verdicts), all(v[1] for v in verdicts)
    if isinstance(predicate, Or):
        verdicts = [_analyze(child, stats) for child in predicate.children]
        return any(v[0] for v in verdicts), any(v[1] for v in verdicts)
    if isinstance(predicate, Not):
        may, all_ = _analyze(predicate.child, stats)
        return not all_, not may
    # ExpressionPredicate (duck-typed to avoid importing the hive layer's
    # concrete class here): carries the original WHERE AST + schema.
    expression = getattr(predicate, "expression", None)
    if expression is not None:
        return _analyze_expr(expression, stats, getattr(predicate, "schema", None))
    # FunctionPredicate and anything else opaque: never prune.
    return _MAYBE


# ---------------------------------------------------------------------------
# Hive WHERE ASTs (the same dispatch shape as scan/codegen.py)
# ---------------------------------------------------------------------------
def _resolve(name: str, stats: Mapping[str, ColumnStats], schema) -> str | None:
    from repro.errors import HiveAnalysisError
    from repro.hive.expressions import resolve_column

    try:
        resolved = resolve_column(name, schema)
    except HiveAnalysisError:
        return None
    return resolved if resolved in stats else None


def _simple_comparison(expr, schema):
    """(column_name, op, literal) with the literal on the right, or None."""
    from repro.hive import ast

    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(expr.left, ast.Column) and isinstance(expr.right, ast.Literal):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.left, ast.Literal) and isinstance(expr.right, ast.Column):
        return expr.right.name, flip[expr.op], expr.left.value
    return None


def _analyze_expr(expr, stats: Mapping[str, ColumnStats], schema) -> tuple[bool, bool]:
    from repro.hive import ast

    if isinstance(expr, ast.Literal):
        # A constant WHERE clause: NULL and false prune everything.
        truthy = bool(expr.value) and expr.value is not None
        return truthy, truthy
    if isinstance(expr, ast.Comparison):
        simple = _simple_comparison(expr, schema)
        if simple is None:
            if isinstance(expr.left, ast.Literal) and isinstance(
                expr.right, ast.Literal
            ):
                a, b = expr.left.value, expr.right.value
                if a is None or b is None:
                    return False, False
                try:
                    from repro.hive.expressions import _COMPARE

                    verdict = _COMPARE[expr.op](a, b)
                    return verdict, verdict
                except TypeError:
                    return _MAYBE
            return _MAYBE  # column-column / arithmetic comparisons
        name, op, value = simple
        column = _resolve(name, stats, schema)
        if column is None:
            return _MAYBE
        return _column_compare(stats, column, op, value)
    if isinstance(expr, ast.LogicalAnd):
        left = _analyze_expr(expr.left, stats, schema)
        right = _analyze_expr(expr.right, stats, schema)
        return left[0] and right[0], left[1] and right[1]
    if isinstance(expr, ast.LogicalOr):
        left = _analyze_expr(expr.left, stats, schema)
        right = _analyze_expr(expr.right, stats, schema)
        return left[0] or right[0], left[1] or right[1]
    if isinstance(expr, ast.LogicalNot):
        may, all_ = _analyze_expr(expr.operand, stats, schema)
        return not all_, not may
    if isinstance(expr, ast.Between):
        if not (
            isinstance(expr.operand, ast.Column)
            and isinstance(expr.low, ast.Literal)
            and isinstance(expr.high, ast.Literal)
        ):
            return _MAYBE
        desugared = ast.LogicalAnd(
            ast.Comparison(">=", expr.operand, expr.low),
            ast.Comparison("<=", expr.operand, expr.high),
        )
        verdict = _analyze_expr(desugared, stats, schema)
        return (not verdict[1], not verdict[0]) if expr.negated else verdict
    if isinstance(expr, ast.InList):
        if not isinstance(expr.operand, ast.Column) or not all(
            isinstance(option, ast.Literal) for option in expr.options
        ):
            return _MAYBE
        verdicts = [
            _analyze_expr(ast.Comparison("=", expr.operand, option), stats, schema)
            for option in expr.options
        ]
        may = any(v[0] for v in verdicts)
        all_ = any(v[1] for v in verdicts)
        return (not all_, not may) if expr.negated else (may, all_)
    if isinstance(expr, ast.IsNull):
        if not isinstance(expr.operand, ast.Column):
            return _MAYBE
        column = _resolve(expr.operand.name, stats, schema)
        if column is None:
            return _MAYBE
        column_stats = stats[column]
        if column_stats.row_count == 0:
            return False, True
        is_null = (
            column_stats.null_count > 0,
            column_stats.null_count == column_stats.row_count,
        )
        if expr.negated:
            return not is_null[1], not is_null[0]
        return is_null
    # Like, Arithmetic, bare Column, and future node types: never prune.
    return _MAYBE


# ---------------------------------------------------------------------------
# Ranking heuristic (no soundness obligation)
# ---------------------------------------------------------------------------
def estimate_matches(
    predicate: Predicate, stats: Mapping[str, ColumnStats]
) -> float:
    """Crude expected matching-row count for ranking grabs.

    Zero only when :func:`may_match` proves the split empty; otherwise a
    zone-map width heuristic. Used to order splits and seed the
    selectivity estimator's prior — never to skip work.
    """
    rows = partition_rows(stats)
    if rows == 0:
        return 0.0
    return _selectivity(predicate, stats) * rows


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def _compare_selectivity(stats: Mapping[str, ColumnStats], column, op, value) -> float:
    may, all_ = _column_compare(stats, column, op, value)
    if not may:
        return 0.0
    if all_:
        return 1.0
    column_stats = stats.get(column)
    if column_stats is None or not column_stats.has_minmax:
        return _EQ_SELECTIVITY if op == "=" else _DEFAULT_SELECTIVITY
    low, high = column_stats.min_value, column_stats.max_value
    try:
        width = float(high) - float(low)
    except (TypeError, ValueError):
        return _EQ_SELECTIVITY if op == "=" else _DEFAULT_SELECTIVITY
    if op == "=":
        if isinstance(low, bool) or not isinstance(low, (int, float)):
            return _EQ_SELECTIVITY
        if isinstance(low, int) and isinstance(high, int):
            return 1.0 / max(1.0, width + 1.0)
        return _EQ_SELECTIVITY
    if width <= 0:
        return 1.0
    try:
        position = (float(value) - float(low)) / width
    except (TypeError, ValueError):
        return _DEFAULT_SELECTIVITY
    if op in ("<", "<="):
        return _clamp(position)
    if op in (">", ">="):
        return _clamp(1.0 - position)
    if op == "!=":
        return 1.0 - _compare_selectivity(stats, column, "=", value)
    return _DEFAULT_SELECTIVITY


def _selectivity(predicate: Predicate, stats: Mapping[str, ColumnStats]) -> float:
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, MarkerEquals):
        return _compare_selectivity(stats, predicate.column, "=", predicate.marker)
    if isinstance(predicate, ColumnCompare):
        return _compare_selectivity(
            stats, predicate.column, predicate.op, predicate.value
        )
    if isinstance(predicate, And):
        product = 1.0
        for child in predicate.children:
            product *= _selectivity(child, stats)
        return product
    if isinstance(predicate, Or):
        misses = 1.0
        for child in predicate.children:
            misses *= 1.0 - _selectivity(child, stats)
        return 1.0 - misses
    if isinstance(predicate, Not):
        return 1.0 - _selectivity(predicate.child, stats)
    may, all_ = _analyze(predicate, stats)
    if not may:
        return 0.0
    if all_:
        return 1.0
    return _DEFAULT_SELECTIVITY
