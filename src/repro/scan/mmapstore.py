"""On-disk binary columnar storage, read back through ``mmap``.

The third dataset layout (after ``row`` and ``columnar``): a dataset is
committed to a fixed little-endian binary file at creation time and
reopened read-only via ``mmap``, so every process scanning it shares the
same page-cache pages with **zero per-worker deserialization** — the
prerequisite for the shared-memory multiprocess scan
(:mod:`repro.scan.proc`). Stdlib only: ``struct`` / ``array`` /
``memoryview`` / ``mmap``.

File format ``RCS1`` (Repro Column Store, version 1), all integers
little-endian::

    header (24 bytes, offset 0)
        magic   4s   b"RCS1"
        version u8   1
        flags   u8   reserved, 0
        pad     u16  reserved, 0
        footer_offset u64   (patched when the writer closes)
        footer_length u64

    partition regions (8-byte aligned, one per partition, back to back)
        column offset table: num_columns * u64
            byte offset of each column block, relative to region start
        column blocks, in schema order:
            flags   u8   bit 0: HAS_NULLS          (+7 pad bytes)
            [null mask: row_count bytes, 1 = NULL, padded to 8]
            data:
                type "i"/"f":  row_count * 8 bytes (int64 / float64)
                type "b":      row_count bytes, padded to 8
                type "s":      (row_count + 1) * u64 end-exclusive
                               offsets into the blob, then the UTF-8
                               blob, padded to 8

    footer
        num_columns u16
        per column: name_length u16, name UTF-8, type code u8
        num_partitions u32
        per partition: row_start u64, row_count u64,
                       byte_offset u64, byte_length u64
        meta_length u32, meta JSON UTF-8   (dataset-level metadata)
        total_rows  u64
        [STATS section, version 2 only]
            bloom_bits   u32   (bits per bloom filter; multiple of 8)
            bloom_hashes u8    (probe count per key)
            per partition, per column in schema order:
                flags      u8   bit 0 HAS_MINMAX, bit 1 HAS_BLOOM
                row_count  u64
                null_count u64
                [min, max when HAS_MINMAX]
                    type "i": <q each  · "f": <d each · "b": u8 each
                    type "s": u32 UTF-8 byte length + bytes, each
                [bloom_bits / 8 filter bytes when HAS_BLOOM]

Version 2 is a minor revision: the only change is the optional STATS
section appended past ``total_rows``, so a version-2 reader opens
version-1 files unchanged (they simply carry no stats). The writer
emits version 1 when stats are disabled — byte-identical files to the
original format.

The writer streams one partition at a time (memory stays bounded by a
single partition no matter how large the dataset grows — the 100M-row
path); the reader eagerly touches only the header and footer, handing
out partitions as :class:`~repro.scan.columnar.ColumnStore` views whose
columns are ``memoryview`` casts or lazy per-row decoders directly over
the mapped file. Nothing is copied until a row is actually read.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import MmapStoreError
from repro.scan.columnar import ColumnStore

MAGIC = b"RCS1"
#: Newest format revision this build writes (and the highest it reads).
VERSION = 2
#: Oldest format revision this build still reads.
MIN_VERSION = 1
#: Revision that introduced the footer STATS section.
STATS_VERSION = 2

_HEADER = struct.Struct("<4sBBHQQ")

TYPE_INT = "i"
TYPE_FLOAT = "f"
TYPE_BOOL = "b"
TYPE_STRING = "s"
COLUMN_TYPES = (TYPE_INT, TYPE_FLOAT, TYPE_BOOL, TYPE_STRING)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: memoryview.cast uses native byte order; the file is little-endian, so
#: big-endian hosts take the (slower) struct-based per-value fallback.
_NATIVE_LE = sys.byteorder == "little"


def _pad8(n: int) -> int:
    """Bytes of padding that align ``n`` up to the next multiple of 8."""
    return (-n) % 8


def column_types_for_schema(schema) -> tuple[str, ...]:
    """Map a :class:`~repro.data.schema.Schema` to RCS column type codes."""
    mapping = {int: TYPE_INT, float: TYPE_FLOAT, bool: TYPE_BOOL, str: TYPE_STRING}
    codes = []
    for field in schema.fields:
        code = mapping.get(field.py_type)
        if code is None:
            raise MmapStoreError(
                f"column {field.name!r}: type {field.py_type.__name__} is not "
                f"storable in an mmap dataset; supported: int, float, bool, str"
            )
        codes.append(code)
    return tuple(codes)


def infer_column_types(names: Sequence[str], columns: dict) -> tuple[str, ...]:
    """Infer a type code per column from its first non-NULL value.

    All-NULL columns default to strings (any type round-trips NULL).
    """
    codes = []
    for name in names:
        code = TYPE_STRING
        for value in columns[name]:
            if value is None:
                continue
            if isinstance(value, bool):
                code = TYPE_BOOL
            elif isinstance(value, int):
                code = TYPE_INT
            elif isinstance(value, float):
                code = TYPE_FLOAT
            elif isinstance(value, str):
                code = TYPE_STRING
            else:
                raise MmapStoreError(
                    f"column {name!r}: cannot store a {type(value).__name__} "
                    f"value ({value!r}) in an mmap dataset"
                )
            break
        codes.append(code)
    return tuple(codes)


# ---------------------------------------------------------------------------
# Split references: the split <-> file-range mapping handed to workers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MmapSplitRef:
    """Where one partition lives inside an mmap dataset file.

    Picklable by design: this tuple of path + ranges is everything a map
    worker **process** receives about its input — it reopens the file
    itself (sharing page-cache pages) instead of being handed rows.
    """

    path: str
    partition: int
    row_start: int
    row_count: int
    byte_offset: int
    byte_length: int


# ---------------------------------------------------------------------------
# Split statistics: zone maps + bloom filters (the footer STATS section)
# ---------------------------------------------------------------------------
#: Default bloom filter width; 2048 bits keeps false positives under ~2%
#: for the low-cardinality columns the filter is meant for.
DEFAULT_BLOOM_BITS = 2048
#: Probes per key (fixed; recorded in the file so readers never guess).
BLOOM_HASHES = 4
#: Zone-map min/max for strings is dropped past this encoded length; a
#: truncated bound would be unsound, and long strings rarely prune.
STATS_MAX_STRING_BYTES = 256

_STATS_HAS_MINMAX = 1
_STATS_HAS_BLOOM = 2


def _bloom_key(value) -> bytes | None:
    """Canonical hash input for a bloom-eligible value, or None."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            return None
        return struct.pack("<q", value)
    if isinstance(value, str):
        return value.encode("utf-8")
    return None


def _bloom_positions(key: bytes, bits: int, hashes: int) -> Iterator[int]:
    """Deterministic double-hashing probe sequence (md5-derived, so the
    filter bytes are identical across processes and Python runs)."""
    digest = hashlib.md5(key).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:16], "little") | 1
    for i in range(hashes):
        yield (h1 + i * h2) % bits


@dataclass(frozen=True)
class BloomFilter:
    """A fixed-size bitset over a column's non-NULL values.

    ``might_contain`` has no false negatives: False means the value is
    provably absent from the partition.
    """

    bits: int
    hashes: int
    data: bytes

    def might_contain(self, value) -> bool:
        key = _bloom_key(value)
        if key is None:
            return True  # un-hashable value: never claim absence
        for position in _bloom_positions(key, self.bits, self.hashes):
            if not self.data[position >> 3] & (1 << (position & 7)):
                return False
        return True


@dataclass(frozen=True)
class ColumnStats:
    """Zone map (+ optional bloom) for one column of one partition."""

    row_count: int
    null_count: int
    has_minmax: bool
    min_value: object = None
    max_value: object = None
    bloom: BloomFilter | None = None

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count


def collect_column_stats(
    code: str,
    values: Sequence,
    *,
    bloom_bits: int = DEFAULT_BLOOM_BITS,
    bloom_hashes: int = BLOOM_HASHES,
) -> ColumnStats:
    """One streaming pass over a partition column's values.

    Zone-map soundness rules: the min/max is dropped entirely when the
    column is all-NULL, contains a float NaN (unordered against every
    bound), or its string bounds exceed :data:`STATS_MAX_STRING_BYTES`.
    The bloom filter only covers int/str columns and is dropped when the
    observed distinct count exceeds ``bloom_bits / 8`` — past that load
    factor the false-positive rate makes it dead weight in the footer.
    """
    row_count = 0
    null_count = 0
    low = high = None
    minmax_ok = True
    bloom_data: bytearray | None = None
    distinct: set | None = None
    if code in (TYPE_INT, TYPE_STRING) and bloom_bits > 0:
        bloom_data = bytearray(bloom_bits // 8)
        distinct = set()
    distinct_cap = max(8, bloom_bits // 8)

    for value in values:
        row_count += 1
        if value is None:
            null_count += 1
            continue
        if isinstance(value, float) and value != value:  # NaN poisons ordering
            minmax_ok = False
            continue
        if minmax_ok:
            if low is None:
                low = high = value
            else:
                try:
                    if value < low:
                        low = value
                    elif value > high:
                        high = value
                except TypeError:
                    minmax_ok = False
        if bloom_data is not None:
            key = _bloom_key(value)
            if key is None:
                bloom_data = distinct = None
                continue
            if key not in distinct:
                distinct.add(key)
                if len(distinct) > distinct_cap:
                    bloom_data = distinct = None
                    continue
                for position in _bloom_positions(key, bloom_bits, bloom_hashes):
                    bloom_data[position >> 3] |= 1 << (position & 7)

    if low is None:
        minmax_ok = False
    if minmax_ok and code == TYPE_STRING:
        if (
            len(str(low).encode("utf-8")) > STATS_MAX_STRING_BYTES
            or len(str(high).encode("utf-8")) > STATS_MAX_STRING_BYTES
        ):
            minmax_ok = False
    bloom = (
        BloomFilter(bloom_bits, bloom_hashes, bytes(bloom_data))
        if bloom_data is not None
        else None
    )
    return ColumnStats(
        row_count=row_count,
        null_count=null_count,
        has_minmax=minmax_ok,
        min_value=low if minmax_ok else None,
        max_value=high if minmax_ok else None,
        bloom=bloom,
    )


def _encode_stats_value(code: str, value) -> bytes:
    if code == TYPE_INT:
        return struct.pack("<q", value)
    if code == TYPE_FLOAT:
        return struct.pack("<d", float(value))
    if code == TYPE_BOOL:
        return struct.pack("<B", 1 if value else 0)
    encoded = str(value).encode("utf-8")
    return struct.pack("<I", len(encoded)) + encoded


def _decode_stats_value(code: str, buf: bytes, position: int):
    if code == TYPE_INT:
        return struct.unpack_from("<q", buf, position)[0], position + 8
    if code == TYPE_FLOAT:
        return struct.unpack_from("<d", buf, position)[0], position + 8
    if code == TYPE_BOOL:
        return bool(buf[position]), position + 1
    (length,) = struct.unpack_from("<I", buf, position)
    position += 4
    return buf[position : position + length].decode("utf-8"), position + length


def _encode_stats_section(
    partition_stats: list[list[ColumnStats]],
    types: Sequence[str],
    bloom_bits: int,
    bloom_hashes: int,
) -> bytes:
    pieces = [struct.pack("<IB", bloom_bits, bloom_hashes)]
    for column_stats in partition_stats:
        for code, stats in zip(types, column_stats):
            flags = 0
            if stats.has_minmax:
                flags |= _STATS_HAS_MINMAX
            if stats.bloom is not None:
                flags |= _STATS_HAS_BLOOM
            pieces.append(
                struct.pack("<BQQ", flags, stats.row_count, stats.null_count)
            )
            if stats.has_minmax:
                pieces.append(_encode_stats_value(code, stats.min_value))
                pieces.append(_encode_stats_value(code, stats.max_value))
            if stats.bloom is not None:
                pieces.append(stats.bloom.data)
    return b"".join(pieces)


def _decode_stats_section(
    buf: bytes, position: int, types: Sequence[str], num_partitions: int
) -> tuple[int, int, list[list[ColumnStats]]]:
    bloom_bits, bloom_hashes = struct.unpack_from("<IB", buf, position)
    position += 5
    partition_stats: list[list[ColumnStats]] = []
    for _ in range(num_partitions):
        column_stats: list[ColumnStats] = []
        for code in types:
            flags, row_count, null_count = struct.unpack_from("<BQQ", buf, position)
            position += 17
            low = high = None
            has_minmax = bool(flags & _STATS_HAS_MINMAX)
            if has_minmax:
                low, position = _decode_stats_value(code, buf, position)
                high, position = _decode_stats_value(code, buf, position)
            bloom = None
            if flags & _STATS_HAS_BLOOM:
                data = bytes(buf[position : position + bloom_bits // 8])
                if len(data) != bloom_bits // 8:
                    raise struct.error("bloom filter extends past footer end")
                position += bloom_bits // 8
                bloom = BloomFilter(bloom_bits, bloom_hashes, data)
            column_stats.append(
                ColumnStats(
                    row_count=row_count,
                    null_count=null_count,
                    has_minmax=has_minmax,
                    min_value=low,
                    max_value=high,
                    bloom=bloom,
                )
            )
        partition_stats.append(column_stats)
    return bloom_bits, bloom_hashes, partition_stats


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def _type_error(name: str, index: int, expected: str, value: object) -> MmapStoreError:
    return MmapStoreError(
        f"column {name!r}, row {index}: expected {expected} or NULL, "
        f"got {type(value).__name__} ({value!r})"
    )


def _encode_column(name: str, code: str, values: Sequence, row_count: int) -> bytes:
    mask = bytearray(row_count)
    has_nulls = False
    pieces: list[bytes] = []

    if code == TYPE_INT:
        data = array("q")
        for i, value in enumerate(values):
            if value is None:
                mask[i] = 1
                data.append(0)
            elif isinstance(value, int) and not isinstance(value, bool):
                if not _INT64_MIN <= value <= _INT64_MAX:
                    raise MmapStoreError(
                        f"column {name!r}, row {i}: integer {value} does not "
                        f"fit the fixed 64-bit column width"
                    )
                data.append(value)
            else:
                raise _type_error(name, i, "int", value)
        if not _NATIVE_LE:
            data.byteswap()
        payload = data.tobytes()
    elif code == TYPE_FLOAT:
        data = array("d")
        for i, value in enumerate(values):
            if value is None:
                mask[i] = 1
                data.append(0.0)
            elif isinstance(value, float):
                data.append(value)
            else:
                raise _type_error(name, i, "float", value)
        if not _NATIVE_LE:
            data.byteswap()
        payload = data.tobytes()
    elif code == TYPE_BOOL:
        raw = bytearray(row_count)
        for i, value in enumerate(values):
            if value is None:
                mask[i] = 1
            elif isinstance(value, bool):
                raw[i] = 1 if value else 0
            else:
                raise _type_error(name, i, "bool", value)
        payload = bytes(raw) + b"\0" * _pad8(row_count)
    elif code == TYPE_STRING:
        offsets = array("Q")
        blob = bytearray()
        for i, value in enumerate(values):
            if value is None:
                mask[i] = 1
            elif isinstance(value, str):
                blob.extend(value.encode("utf-8"))
            else:
                raise _type_error(name, i, "str", value)
            offsets.append(len(blob))
        offsets.insert(0, 0)  # row_count + 1 end-exclusive entries
        if not _NATIVE_LE:
            offsets.byteswap()
        payload = offsets.tobytes() + bytes(blob) + b"\0" * _pad8(len(blob))
    else:
        raise MmapStoreError(
            f"column {name!r}: unknown type code {code!r}; one of {COLUMN_TYPES}"
        )

    has_nulls = any(mask)
    pieces.append(struct.pack("<B7x", 1 if has_nulls else 0))
    if has_nulls:
        pieces.append(bytes(mask) + b"\0" * _pad8(row_count))
    pieces.append(payload)
    return b"".join(pieces)


def encode_partition(
    names: Sequence[str], types: Sequence[str], columns: dict, row_count: int
) -> bytes:
    """One partition region (column offset table + column blocks)."""
    blocks = [
        _encode_column(name, code, columns[name], row_count)
        for name, code in zip(names, types)
    ]
    table_len = 8 * len(names)
    offsets = []
    position = table_len
    for block in blocks:
        offsets.append(position)
        position += len(block)
    table = struct.pack(f"<{len(names)}Q", *offsets)
    return b"".join([table, *blocks])


# ---------------------------------------------------------------------------
# Lazy column views (decode-on-access; nothing is materialized up front)
# ---------------------------------------------------------------------------
class _StructColumn:
    """Per-value struct decoding for hosts whose native byte order is not
    little-endian (memoryview.cast would misread the fixed LE layout)."""

    __slots__ = ("_buf", "_struct", "_count")

    def __init__(self, buf: memoryview, fmt: str, count: int) -> None:
        self._buf = buf
        self._struct = struct.Struct(fmt)
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int):
        if index < 0 or index >= self._count:
            raise IndexError(index)
        return self._struct.unpack_from(self._buf, index * self._struct.size)[0]

    def __iter__(self) -> Iterator:
        unpack = self._struct.unpack_from
        size = self._struct.size
        for index in range(self._count):
            yield unpack(self._buf, index * size)[0]


class NullableColumn:
    """A numeric/bool column with a NULL mask: mask hit -> ``None``."""

    __slots__ = ("_values", "_mask")

    def __init__(self, values, mask: memoryview) -> None:
        self._values = values
        self._mask = mask

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int):
        if self._mask[index]:
            return None
        return self._values[index]

    def __iter__(self) -> Iterator:
        for flag, value in zip(self._mask, self._values):
            yield None if flag else value


class StringColumn:
    """Offset-indexed UTF-8 strings decoded per access (zero-copy blob)."""

    __slots__ = ("_offsets", "_blob", "_mask")

    def __init__(self, offsets, blob: memoryview, mask: memoryview | None) -> None:
        self._offsets = offsets
        self._blob = blob
        self._mask = mask

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int):
        if index < 0 or index >= len(self._offsets) - 1:
            raise IndexError(index)
        if self._mask is not None and self._mask[index]:
            return None
        return str(self._blob[self._offsets[index] : self._offsets[index + 1]], "utf-8")

    def __iter__(self) -> Iterator:
        for index in range(len(self)):
            yield self[index]


def _cast(buf: memoryview, fmt: str, count: int):
    if _NATIVE_LE:
        return buf.cast(fmt)
    return _StructColumn(buf, "<" + ("q" if fmt == "q" else "d"), count)


def _decode_column(region: memoryview, start: int, code: str, row_count: int):
    flags = region[start]
    position = start + 8
    mask: memoryview | None = None
    if flags & 1:
        mask = region[position : position + row_count]
        position += row_count + _pad8(row_count)
    if code in (TYPE_INT, TYPE_FLOAT):
        data = region[position : position + 8 * row_count]
        values = _cast(data, "q" if code == TYPE_INT else "d", row_count)
        return NullableColumn(values, mask) if mask is not None else values
    if code == TYPE_BOOL:
        data = region[position : position + row_count]
        values = data.cast("?")
        return NullableColumn(values, mask) if mask is not None else values
    if code == TYPE_STRING:
        raw = region[position : position + 8 * (row_count + 1)]
        if _NATIVE_LE:
            offsets = raw.cast("Q")
        else:
            offsets = _StructColumn(raw, "<Q", row_count + 1)
        position += 8 * (row_count + 1)
        blob = region[position : position + offsets[row_count]]
        return StringColumn(offsets, blob, mask)
    raise MmapStoreError(f"unknown column type code {code!r}; one of {COLUMN_TYPES}")


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------
class MmapDatasetWriter:
    """Streams partitions into an RCS1 file, one region at a time.

    Peak memory is one encoded partition regardless of dataset size;
    the footer (schema, partition directory, metadata) is written when
    the writer closes and the header's footer pointer is patched in
    place.
    """

    def __init__(
        self,
        path: str | Path,
        names: Sequence[str],
        types: Sequence[str],
        *,
        meta: dict | None = None,
        stats: bool = False,
        bloom_bits: int = DEFAULT_BLOOM_BITS,
    ) -> None:
        if not names:
            raise MmapStoreError("an mmap dataset needs at least one column")
        if len(names) != len(set(names)):
            raise MmapStoreError(f"duplicate column names: {list(names)}")
        if len(types) != len(names):
            raise MmapStoreError(
                f"{len(names)} column names but {len(types)} type codes"
            )
        for name, code in zip(names, types):
            if code not in COLUMN_TYPES:
                raise MmapStoreError(
                    f"column {name!r}: unknown type code {code!r}; "
                    f"one of {COLUMN_TYPES}"
                )
        if stats and (bloom_bits < 0 or bloom_bits % 8 != 0):
            raise MmapStoreError(
                f"bloom_bits must be a non-negative multiple of 8, got {bloom_bits}"
            )
        self.path = str(path)
        self.names = tuple(names)
        self.types = tuple(types)
        self.meta = dict(meta or {})
        # Stats-free files keep the original version-1 byte layout; the
        # minor-version bump only buys the appended STATS section.
        self.version = STATS_VERSION if stats else MIN_VERSION
        self.bloom_bits = bloom_bits if stats else 0
        self._stats: list[list[ColumnStats]] | None = [] if stats else None
        self._entries: list[tuple[int, int, int, int]] = []
        self._row_start = 0
        self._closed = False
        self._file = open(self.path, "wb")
        self._file.write(_HEADER.pack(MAGIC, self.version, 0, 0, 0, 0))
        self._offset = _HEADER.size

    def write_partition(self, columns: dict, row_count: int) -> MmapSplitRef:
        """Encode and append one partition's columns; returns its ref."""
        if self._closed:
            raise MmapStoreError(f"writer for {self.path} is closed")
        missing = [name for name in self.names if name not in columns]
        if missing:
            raise MmapStoreError(
                f"partition {len(self._entries)} is missing columns {missing}"
            )
        region = encode_partition(self.names, self.types, columns, row_count)
        if self._stats is not None:
            self._stats.append(
                [
                    collect_column_stats(
                        code, columns[name], bloom_bits=self.bloom_bits
                    )
                    for name, code in zip(self.names, self.types)
                ]
            )
        entry = (self._row_start, row_count, self._offset, len(region))
        self._file.write(region)
        self._entries.append(entry)
        self._offset += len(region)
        self._row_start += row_count
        return MmapSplitRef(self.path, len(self._entries) - 1, *entry)

    def write_rows(self, rows: Iterable[dict]) -> MmapSplitRef:
        """Convenience: transpose row dicts and write them as one partition."""
        store = ColumnStore.from_rows(rows)
        columns = {name: store.columns.get(name, []) for name in self.names}
        if store.num_rows and set(store.names) != set(self.names):
            raise MmapStoreError(
                f"rows carry columns {sorted(store.names)}, "
                f"writer expects {sorted(self.names)}"
            )
        return self.write_partition(columns, store.num_rows)

    def close(self) -> list[MmapSplitRef]:
        """Write footer, patch the header pointer, and close the file."""
        if self._closed:
            raise MmapStoreError(f"writer for {self.path} is already closed")
        footer = self._encode_footer()
        self._file.write(footer)
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(MAGIC, self.version, 0, 0, self._offset, len(footer))
        )
        self._file.close()
        self._closed = True
        return [
            MmapSplitRef(self.path, index, *entry)
            for index, entry in enumerate(self._entries)
        ]

    def _encode_footer(self) -> bytes:
        pieces = [struct.pack("<H", len(self.names))]
        for name, code in zip(self.names, self.types):
            encoded = name.encode("utf-8")
            pieces.append(struct.pack("<H", len(encoded)))
            pieces.append(encoded)
            pieces.append(code.encode("ascii"))
        pieces.append(struct.pack("<I", len(self._entries)))
        for entry in self._entries:
            pieces.append(struct.pack("<4Q", *entry))
        meta = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        pieces.append(struct.pack("<I", len(meta)))
        pieces.append(meta)
        pieces.append(struct.pack("<Q", self._row_start))
        if self._stats is not None:
            pieces.append(
                _encode_stats_section(
                    self._stats, self.types, self.bloom_bits, BLOOM_HASHES
                )
            )
        return b"".join(pieces)

    def __enter__(self) -> "MmapDatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            if exc_type is None:
                self.close()
            else:
                self._file.close()
                self._closed = True


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------
class MmapDataset:
    """Read-only view over an RCS1 file (or in-memory buffer).

    Opening parses only the 24-byte header and the footer
    (``eager_bytes`` accounts for exactly that); partition stores are
    built lazily as zero-copy views, so no column data leaves the page
    cache until a scan touches it.
    """

    def __init__(
        self, path: str | Path | None = None, *, buffer: bytes | None = None
    ) -> None:
        if (path is None) == (buffer is None):
            raise MmapStoreError("pass exactly one of path= or buffer=")
        self.path = str(path) if path is not None else None
        self._mmap: mmap.mmap | None = None
        if path is not None:
            with open(path, "rb") as handle:
                try:
                    self._mmap = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except ValueError as exc:  # empty file cannot be mapped
                    raise MmapStoreError(f"{path}: not an RCS1 file: {exc}") from None
            self._buf = memoryview(self._mmap)
        else:
            self._buf = memoryview(buffer)
        self._stores: dict[int, ColumnStore] = {}
        self._parse()

    # -- format parsing -------------------------------------------------
    def _parse(self) -> None:
        where = self.path or "<buffer>"
        if len(self._buf) < _HEADER.size:
            raise MmapStoreError(
                f"{where}: truncated: {len(self._buf)} bytes is smaller than "
                f"the {_HEADER.size}-byte header"
            )
        magic, version, _flags, _pad, footer_offset, footer_length = _HEADER.unpack(
            self._buf[: _HEADER.size]
        )
        if magic != MAGIC:
            raise MmapStoreError(
                f"{where}: bad magic {magic!r}; not an RCS1 mmap dataset"
            )
        if not MIN_VERSION <= version <= VERSION:
            raise MmapStoreError(
                f"{where}: unsupported RCS version {version}; this build "
                f"reads versions {MIN_VERSION} through {VERSION}"
            )
        self.version = version
        if footer_offset == 0 or footer_offset + footer_length > len(self._buf):
            raise MmapStoreError(
                f"{where}: footer pointer out of bounds (offset {footer_offset}, "
                f"length {footer_length}, file {len(self._buf)} bytes); "
                "the writer was probably never closed"
            )
        footer = bytes(self._buf[footer_offset : footer_offset + footer_length])
        self.eager_bytes = _HEADER.size + footer_length

        position = 0
        (num_columns,) = struct.unpack_from("<H", footer, position)
        position += 2
        names: list[str] = []
        types: list[str] = []
        for _ in range(num_columns):
            (name_length,) = struct.unpack_from("<H", footer, position)
            position += 2
            names.append(footer[position : position + name_length].decode("utf-8"))
            position += name_length
            types.append(chr(footer[position]))
            position += 1
        (num_partitions,) = struct.unpack_from("<I", footer, position)
        position += 4
        entries: list[tuple[int, int, int, int]] = []
        for _ in range(num_partitions):
            entries.append(struct.unpack_from("<4Q", footer, position))
            position += 32
        (meta_length,) = struct.unpack_from("<I", footer, position)
        position += 4
        meta_blob = footer[position : position + meta_length]
        position += meta_length
        (total_rows,) = struct.unpack_from("<Q", footer, position)
        position += 8

        for code in types:
            if code not in COLUMN_TYPES:
                raise MmapStoreError(
                    f"{where}: unknown column type code {code!r}; "
                    f"one of {COLUMN_TYPES}"
                )

        self.bloom_bits = 0
        self.bloom_hashes = 0
        self.stats: list[list[ColumnStats]] | None = None
        if version >= STATS_VERSION:
            try:
                self.bloom_bits, self.bloom_hashes, self.stats = (
                    _decode_stats_section(footer, position, types, num_partitions)
                )
            except struct.error as exc:
                raise MmapStoreError(
                    f"{where}: truncated STATS section in version {version} "
                    f"footer: {exc}"
                ) from None
        self.names = tuple(names)
        self.types = tuple(types)
        self.entries = entries
        self.num_partitions = num_partitions
        self.num_rows = total_rows
        self.meta = json.loads(meta_blob) if meta_length else {}

    # -- access ---------------------------------------------------------
    @property
    def file_size(self) -> int:
        return len(self._buf)

    def split_refs(self) -> list[MmapSplitRef]:
        if self.path is None:
            raise MmapStoreError("buffer-backed datasets have no file to reference")
        return [
            MmapSplitRef(self.path, index, *entry)
            for index, entry in enumerate(self.entries)
        ]

    def partition_stats(self, index: int) -> dict[str, ColumnStats] | None:
        """Column-name -> stats for one partition, or None without stats."""
        if self.stats is None:
            return None
        if index < 0 or index >= self.num_partitions:
            raise MmapStoreError(
                f"partition {index} out of range; dataset has "
                f"{self.num_partitions} partitions"
            )
        return dict(zip(self.names, self.stats[index]))

    def partition_store(self, index: int) -> ColumnStore:
        """The partition's :class:`ColumnStore` of lazy mmap-backed columns."""
        store = self._stores.get(index)
        if store is not None:
            return store
        if index < 0 or index >= self.num_partitions:
            raise MmapStoreError(
                f"partition {index} out of range; dataset has "
                f"{self.num_partitions} partitions"
            )
        _row_start, row_count, byte_offset, byte_length = self.entries[index]
        region = self._buf[byte_offset : byte_offset + byte_length]
        if _NATIVE_LE:
            table = region[: 8 * len(self.names)].cast("Q")
        else:
            table = _StructColumn(region[: 8 * len(self.names)], "<Q", len(self.names))
        columns = {
            name: _decode_column(region, table[ci], code, row_count)
            for ci, (name, code) in enumerate(zip(self.names, self.types))
        }
        store = ColumnStore(self.names, columns)
        self._stores[index] = store
        return store

    def close(self) -> None:
        self._stores.clear()
        self._buf.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Column views handed out earlier still point into the
                # mapping; it is freed when the last of them is collected.
                pass
            self._mmap = None


# ---------------------------------------------------------------------------
# Per-process open cache (map workers and the parent share it)
# ---------------------------------------------------------------------------
_open_cache: dict[str, tuple[tuple[int, int], MmapDataset]] = {}


def open_mmap_dataset(path: str | Path) -> MmapDataset:
    """Open (or reuse this process's handle to) an mmap dataset file.

    Keyed by absolute path + (mtime, size) so a rewritten file is picked
    up fresh; the stale handle is simply dropped — any stores already
    handed out keep their own mapping alive.
    """
    resolved = os.path.abspath(str(path))
    stat = os.stat(resolved)
    fingerprint = (stat.st_mtime_ns, stat.st_size)
    cached = _open_cache.get(resolved)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    dataset = MmapDataset(resolved)
    _open_cache[resolved] = (fingerprint, dataset)
    return dataset


# ---------------------------------------------------------------------------
# PartitionedDataset integration
# ---------------------------------------------------------------------------
def dataset_meta(dataset) -> dict:
    """The JSON metadata blob stored with a written PartitionedDataset."""
    spec = dataset.spec
    return {
        "repro": {
            "spec": {
                "name": spec.name,
                "scale": spec.scale,
                "num_rows": spec.num_rows,
                "num_partitions": spec.num_partitions,
                "avg_row_bytes": spec.avg_row_bytes,
            },
            "seed": dataset.seed,
            "predicates": [
                {"name": name, "column": pred.column, "marker": pred.marker}
                for name, pred in sorted(dataset.predicates.items())
            ],
            "placements": {
                name: {
                    "counts": [int(c) for c in placement.counts],
                    "rank_of_partition": [
                        int(r) for r in placement.rank_of_partition
                    ],
                    "z": placement.z,
                    "total_matches": placement.total_matches,
                }
                for name, placement in sorted(dataset.placements.items())
            },
            "partitions": [
                {
                    "num_records": p.num_records,
                    "num_bytes": p.num_bytes,
                    "match_counts": {k: int(v) for k, v in p.match_counts.items()},
                }
                for p in dataset.partitions
            ],
        }
    }


def attach_mmap_refs(dataset, refs: list[MmapSplitRef]) -> None:
    """Point a dataset's partitions at their written file regions,
    dropping any in-memory rows/columns (the file is now the data)."""
    if len(refs) != len(dataset.partitions):
        raise MmapStoreError(
            f"{len(refs)} refs for {len(dataset.partitions)} partitions"
        )
    for partition, ref in zip(dataset.partitions, refs):
        partition.mmap_ref = ref
        partition.rows = None
        partition.columns = None


def write_mmap_dataset(
    dataset,
    path: str | Path,
    *,
    stats: bool = False,
    bloom_bits: int = DEFAULT_BLOOM_BITS,
) -> list[MmapSplitRef]:
    """Write an already-materialized PartitionedDataset to ``path`` and
    switch its partitions over to the mmap layout."""
    from repro.data.tpch import LINEITEM_SCHEMA

    first = dataset.partitions[0].column_store() if dataset.partitions else None
    if first is not None and first.names == LINEITEM_SCHEMA.field_names:
        types = column_types_for_schema(LINEITEM_SCHEMA)
        names = LINEITEM_SCHEMA.field_names
    elif first is not None:
        names = first.names
        types = infer_column_types(names, first.columns)
    else:
        raise MmapStoreError("cannot write an empty dataset")
    with MmapDatasetWriter(
        path,
        names,
        types,
        meta=dataset_meta(dataset),
        stats=stats,
        bloom_bits=bloom_bits,
    ) as writer:
        for partition in dataset.partitions:
            store = partition.column_store()
            writer.write_partition(store.columns, store.num_rows)
    refs = [
        MmapSplitRef(writer.path, index, *entry)
        for index, entry in enumerate(writer._entries)
    ]
    attach_mmap_refs(dataset, refs)
    return refs


def load_mmap_dataset(path: str | Path):
    """Reopen a written dataset file as a full PartitionedDataset.

    Requires the file to carry the ``repro`` metadata blob written by
    the dataset builders (spec, seed, predicate placements, per-partition
    match counts).
    """
    import numpy as np

    from repro.data.datasets import DatasetSpec, PartitionData, PartitionedDataset
    from repro.data.predicates import MarkerEquals
    from repro.data.skew import MatchPlacement

    reader = open_mmap_dataset(path)
    meta = reader.meta.get("repro")
    if not meta:
        raise MmapStoreError(
            f"{path}: file carries no dataset metadata; it was not written "
            "by the repro dataset builders"
        )
    spec = DatasetSpec(**meta["spec"])
    predicates = {
        entry["name"]: MarkerEquals(entry["column"], entry["marker"])
        for entry in meta["predicates"]
    }
    placements = {
        name: MatchPlacement(
            counts=np.asarray(body["counts"]),
            rank_of_partition=np.asarray(body["rank_of_partition"]),
            z=body["z"],
            total_matches=body["total_matches"],
        )
        for name, body in meta["placements"].items()
    }
    refs = reader.split_refs()
    partitions = [
        PartitionData(
            index=index,
            num_records=body["num_records"],
            num_bytes=body["num_bytes"],
            match_counts=dict(body["match_counts"]),
            mmap_ref=refs[index],
        )
        for index, body in enumerate(meta["partitions"])
    ]
    return PartitionedDataset(
        spec=spec,
        partitions=partitions,
        placements=placements,
        predicates=predicates,
        seed=meta["seed"],
    )
