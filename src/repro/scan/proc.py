"""Process map-worker protocol for the shared-memory multiprocess scan.

The :class:`~repro.engine.runtime.LocalRunner`'s ``map_executor="process"``
mode ships each map task to a worker **process** as a
:class:`ScanTask` — the dataset file path, the split's file range, and
the compiled predicate's generated source — never pickled rows. The
worker re-``mmap``s the file (the OS shares the page-cache pages with
every other worker and the parent), re-compiles the batch matcher
locally, scans its partition, and returns only match indices and
counters (:class:`ScanTaskResult`). The parent materializes output rows
at the hit indices from its own mapping, so job output is byte-identical
to serial execution:

* **Rows & order** — hits come back in ascending row order, exactly the
  order the serial batch loop appends matches.
* **LIMIT-k accounting** — the generated matcher returns ``index of the
  k-th match + 1`` on early exit, a quantity independent of batch
  chunking (the batch-size parity tests pin this), so scanning the whole
  partition range in one call yields the same ``records_read`` as the
  serial batch-by-batch loop.
* **Keys** — :class:`ScanTaskSpec.fixed_key` reproduces the sampling
  job's dummy-key emission; ``None`` keys each output by its absolute
  row index, the scan job's convention.

Everything in this module must stay importable and picklable from a bare
interpreter: worker processes receive :func:`run_scan_task` by reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.record import row_at
from repro.obs.profile import cpu_clock, wall_clock
from repro.scan.codegen import compile_batch_matcher_from_source
from repro.scan.mmapstore import MmapSplitRef, open_mmap_dataset


@dataclass(frozen=True)
class ScanTaskSpec:
    """The job-level half of a process scan task: what to match and emit.

    Built once per map batch by ``Mapper.scan_task_spec()``; everything
    here must pickle (the runtime verifies and falls back to in-process
    execution when a predicate's constant pool doesn't).
    """

    source: str
    """Generated batch-matcher source (:func:`repro.scan.codegen.batch_matcher_source`)."""

    namespace: dict
    """The matcher's constant pool (column names, literals)."""

    limit: int | None
    """Per-task match cap (Algorithm 1's k), or None for full scans."""

    columns: tuple[str, ...] | None
    """Output projection, or None to emit whole rows."""

    fixed_key: Any = None
    """Emit every output under this key (the sampling job's dummy key);
    None keys outputs by absolute row index instead (scan jobs)."""


@dataclass(frozen=True)
class ScanTask:
    """One map task as shipped to a worker process."""

    ref: MmapSplitRef
    spec: ScanTaskSpec

    job_id: str | None = None
    """Telemetry routing key. Set only when a
    :class:`~repro.obs.hub.TelemetryHub` is live in the parent; workers
    stamp it on every :class:`WorkerDelta` so the hub can multiplex live
    progress across concurrent jobs. ``None`` (the default, and always
    the value when no hub is installed) keeps the worker on the exact
    single-call scan path."""


@dataclass(frozen=True)
class WorkerDelta:
    """One live progress checkpoint flushed mid-task by a worker.

    ``rows_scanned`` is **cumulative** for this (job, partition) task,
    never an increment — the telemetry channel is therefore idempotent:
    a lost, duplicated, or reordered flush can only delay the live view,
    not corrupt counts (the hub keeps max-so-far per partition)."""

    job_id: str
    partition: int
    rows_scanned: int
    """Rows scanned so far in this task (cumulative)."""

    hits: int
    """Matches found so far (cumulative)."""

    chunk_rows: int
    """Rows scanned by the chunk that triggered this flush."""

    wall_s: float
    """Wall seconds the triggering chunk took (chunk scan rate =
    ``chunk_rows / wall_s``)."""


@dataclass(frozen=True)
class ScanTaskResult:
    """What a worker sends back: indices and counters, never rows."""

    partition: int
    scanned: int
    """Rows actually read (the LIMIT-k early exit included) — feeds
    ``records_read`` and the Input Provider's progress statistics."""

    hits: list[int]
    """Absolute row indices of matches, ascending, capped at the limit."""

    wall_s: float
    """Worker-measured wall time for the whole task (open + compile +
    scan) — the parent feeds this to ``profile.scan.map_task`` so the
    phase taxonomy reconciles even though the work ran elsewhere."""

    cpu_s: float
    scan_wall_s: float
    """Wall time of just the scan loop (the ``ScanSpan.elapsed_s``
    analogue); always <= ``wall_s`` so phase totals keep bounding span
    totals."""

    deltas: tuple[tuple[int, float], ...] = ()
    """Piggybacked ``(rows_scanned_cumulative, wall_s_since_scan_start)``
    checkpoints, one per telemetry chunk — the fallback live-progress
    record when the delta queue could not be created (the hub folds
    these into its chunk-rate sketch at task completion). Empty when
    telemetry is off."""


#: Default telemetry chunk: large enough that the per-chunk matcher
#: re-entry cost vanishes, small enough that a long split flushes
#: progress several times before finishing.
TELEMETRY_CHUNK_ROWS = 65_536


class _WorkerTelemetry:
    """Per-worker-process telemetry conduit (installed by the pool
    initializer, read by :func:`run_scan_task`)."""

    __slots__ = ("queue", "chunk_rows")

    def __init__(self, queue, chunk_rows: int) -> None:
        self.queue = queue
        self.chunk_rows = max(1, int(chunk_rows))

    def flush(self, delta: WorkerDelta) -> None:
        """Best-effort: a telemetry flush must never fail the scan."""
        if self.queue is None:
            return
        try:
            self.queue.put_nowait(delta)
        except Exception:
            pass


_TELEMETRY: _WorkerTelemetry | None = None


def init_worker_telemetry(queue, chunk_rows: int = TELEMETRY_CHUNK_ROWS) -> None:
    """Install the telemetry conduit in a worker process.

    Passed as the pool's ``initializer`` (with the hub's delta queue in
    ``initargs`` — multiprocessing queues travel safely that way, via
    process inheritance, where a normal pickle would fail). Safe to call
    in the parent too (the inline-fallback path reuses it)."""
    global _TELEMETRY
    _TELEMETRY = _WorkerTelemetry(queue, chunk_rows)


def reset_worker_telemetry() -> None:
    """Remove an installed conduit (parent-side cleanup after fallback)."""
    global _TELEMETRY
    _TELEMETRY = None


def run_scan_task(task: ScanTask) -> ScanTaskResult:
    """Execute one scan task inside a worker process.

    Opens the dataset via the per-process mmap cache (so a worker maps
    each file once no matter how many of its partitions it scans),
    rebuilds the matcher from source, and scans the partition's row
    range. Without telemetry (``task.job_id`` unset or no conduit
    installed) the whole range goes through one matcher call; with
    telemetry the range is scanned in chunks with a cumulative
    :class:`WorkerDelta` flushed after each — byte-identical either way,
    because the generated matcher's LIMIT-k accounting is
    chunking-independent (the batch-size parity tests pin this)."""
    wall0 = wall_clock()
    cpu0 = cpu_clock()
    store = open_mmap_dataset(task.ref.path).partition_store(task.ref.partition)
    matcher = compile_batch_matcher_from_source(
        task.spec.source, dict(task.spec.namespace)
    )
    hits: list[int] = []
    telemetry = _TELEMETRY if task.job_id is not None else None
    scan0 = wall_clock()
    deltas: tuple[tuple[int, float], ...] = ()
    if telemetry is None:
        scanned = matcher(
            store.columns, 0, store.num_rows, task.spec.limit, hits.append
        )
    else:
        scanned, deltas = _chunked_scan(matcher, store, task, hits, telemetry, scan0)
    scan_wall = wall_clock() - scan0
    return ScanTaskResult(
        partition=task.ref.partition,
        scanned=scanned,
        hits=hits,
        wall_s=wall_clock() - wall0,
        cpu_s=max(0.0, cpu_clock() - cpu0),
        scan_wall_s=scan_wall,
        deltas=deltas,
    )


def _chunked_scan(
    matcher, store, task: ScanTask, hits: list[int],
    telemetry: _WorkerTelemetry, scan0: float,
) -> tuple[int, tuple[tuple[int, float], ...]]:
    """Scan the partition in telemetry-sized chunks, flushing progress.

    Equivalence with the single-call path: each chunk call appends the
    same ascending absolute indices, and the per-chunk scanned counts
    (full chunk size, or ``k-th-match-offset + 1`` on early exit) sum to
    exactly the single call's return value.
    """
    limit = task.spec.limit
    num_rows = store.num_rows
    chunk = telemetry.chunk_rows
    scanned = 0
    checkpoints: list[tuple[int, float]] = []
    position = 0
    while position < num_rows:
        end = min(position + chunk, num_rows)
        remaining = None if limit is None else limit - len(hits)
        chunk0 = wall_clock()
        sub = matcher(store.columns, position, end, remaining, hits.append)
        chunk_wall = wall_clock() - chunk0
        scanned += sub
        checkpoints.append((scanned, wall_clock() - scan0))
        telemetry.flush(
            WorkerDelta(
                job_id=task.job_id,
                partition=task.ref.partition,
                rows_scanned=scanned,
                hits=len(hits),
                chunk_rows=sub,
                wall_s=chunk_wall,
            )
        )
        # limit=0 deliberately never breaks: the generated matcher's
        # early-exit check (``_n == _limit``) cannot fire for 0, so the
        # single-call path scans everything and chunking must match.
        if limit is not None and limit > 0 and len(hits) >= limit:
            break
        position = end
    return scanned, tuple(checkpoints)


def materialize_outputs(
    store, result: ScanTaskResult, spec: ScanTaskSpec
) -> list[tuple[Any, Any]]:
    """Turn a worker's hit indices into the mapper's output pairs.

    Runs in the parent over its own mmap view of the same file; row
    synthesis here is exactly what the serial batch loop does via
    ``ColumnBatch.row``, so output bytes match.
    """
    names = spec.columns if spec.columns is not None else store.names
    columns = store.columns
    if spec.fixed_key is not None:
        key = spec.fixed_key
        return [(key, row_at(names, columns, index)) for index in result.hits]
    return [(index, row_at(names, columns, index)) for index in result.hits]
