"""Process map-worker protocol for the shared-memory multiprocess scan.

The :class:`~repro.engine.runtime.LocalRunner`'s ``map_executor="process"``
mode ships each map task to a worker **process** as a
:class:`ScanTask` — the dataset file path, the split's file range, and
the compiled predicate's generated source — never pickled rows. The
worker re-``mmap``s the file (the OS shares the page-cache pages with
every other worker and the parent), re-compiles the batch matcher
locally, scans its partition, and returns only match indices and
counters (:class:`ScanTaskResult`). The parent materializes output rows
at the hit indices from its own mapping, so job output is byte-identical
to serial execution:

* **Rows & order** — hits come back in ascending row order, exactly the
  order the serial batch loop appends matches.
* **LIMIT-k accounting** — the generated matcher returns ``index of the
  k-th match + 1`` on early exit, a quantity independent of batch
  chunking (the batch-size parity tests pin this), so scanning the whole
  partition range in one call yields the same ``records_read`` as the
  serial batch-by-batch loop.
* **Keys** — :class:`ScanTaskSpec.fixed_key` reproduces the sampling
  job's dummy-key emission; ``None`` keys each output by its absolute
  row index, the scan job's convention.

Everything in this module must stay importable and picklable from a bare
interpreter: worker processes receive :func:`run_scan_task` by reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.record import row_at
from repro.obs.profile import cpu_clock, wall_clock
from repro.scan.codegen import compile_batch_matcher_from_source
from repro.scan.mmapstore import MmapSplitRef, open_mmap_dataset


@dataclass(frozen=True)
class ScanTaskSpec:
    """The job-level half of a process scan task: what to match and emit.

    Built once per map batch by ``Mapper.scan_task_spec()``; everything
    here must pickle (the runtime verifies and falls back to in-process
    execution when a predicate's constant pool doesn't).
    """

    source: str
    """Generated batch-matcher source (:func:`repro.scan.codegen.batch_matcher_source`)."""

    namespace: dict
    """The matcher's constant pool (column names, literals)."""

    limit: int | None
    """Per-task match cap (Algorithm 1's k), or None for full scans."""

    columns: tuple[str, ...] | None
    """Output projection, or None to emit whole rows."""

    fixed_key: Any = None
    """Emit every output under this key (the sampling job's dummy key);
    None keys outputs by absolute row index instead (scan jobs)."""


@dataclass(frozen=True)
class ScanTask:
    """One map task as shipped to a worker process."""

    ref: MmapSplitRef
    spec: ScanTaskSpec


@dataclass(frozen=True)
class ScanTaskResult:
    """What a worker sends back: indices and counters, never rows."""

    partition: int
    scanned: int
    """Rows actually read (the LIMIT-k early exit included) — feeds
    ``records_read`` and the Input Provider's progress statistics."""

    hits: list[int]
    """Absolute row indices of matches, ascending, capped at the limit."""

    wall_s: float
    """Worker-measured wall time for the whole task (open + compile +
    scan) — the parent feeds this to ``profile.scan.map_task`` so the
    phase taxonomy reconciles even though the work ran elsewhere."""

    cpu_s: float
    scan_wall_s: float
    """Wall time of just the scan loop (the ``ScanSpan.elapsed_s``
    analogue); always <= ``wall_s`` so phase totals keep bounding span
    totals."""


def run_scan_task(task: ScanTask) -> ScanTaskResult:
    """Execute one scan task inside a worker process.

    Opens the dataset via the per-process mmap cache (so a worker maps
    each file once no matter how many of its partitions it scans),
    rebuilds the matcher from source, and scans the partition's full row
    range in a single matcher call.
    """
    wall0 = wall_clock()
    cpu0 = cpu_clock()
    store = open_mmap_dataset(task.ref.path).partition_store(task.ref.partition)
    matcher = compile_batch_matcher_from_source(
        task.spec.source, dict(task.spec.namespace)
    )
    hits: list[int] = []
    scan0 = wall_clock()
    scanned = matcher(store.columns, 0, store.num_rows, task.spec.limit, hits.append)
    scan_wall = wall_clock() - scan0
    return ScanTaskResult(
        partition=task.ref.partition,
        scanned=scanned,
        hits=hits,
        wall_s=wall_clock() - wall0,
        cpu_s=max(0.0, cpu_clock() - cpu0),
        scan_wall_s=scan_wall,
    )


def materialize_outputs(
    store, result: ScanTaskResult, spec: ScanTaskSpec
) -> list[tuple[Any, Any]]:
    """Turn a worker's hit indices into the mapper's output pairs.

    Runs in the parent over its own mmap view of the same file; row
    synthesis here is exactly what the serial batch loop does via
    ``ColumnBatch.row``, so output bytes match.
    """
    names = spec.columns if spec.columns is not None else store.names
    columns = store.columns
    if spec.fixed_key is not None:
        key = spec.fixed_key
        return [(key, row_at(names, columns, index)) for index in result.hits]
    return [(index, row_at(names, columns, index)) for index in result.hits]
