"""LocalRunner: real, in-process MapReduce execution.

Runs a job's actual map and reduce functions over materialized splits,
with no simulated time — the correctness substrate. Dynamic jobs execute
the full Input Provider protocol synchronously: grab a batch, run its
map tasks for real, report progress, evaluate, repeat until end of
input, then shuffle and reduce.

Because execution is synchronous, the LocalRunner models the cluster
status handed to providers with a configurable virtual slot pool: all
slots are "available" at every evaluation (nothing else is running), so
policies degrade gracefully to their idle-cluster grab limits.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.input_provider import (
    ProviderRegistry,
    ResponseKind,
    default_providers,
)
from repro.core.policy import PolicyRegistry, paper_policies
from repro.dfs.split import InputSplit
from repro.engine.job import ClusterStatus, JobProgress, JobResult, JobState
from repro.engine.jobconf import JobConf
from repro.engine.mapreduce import ReduceContext
from repro.engine.shuffle import group_outputs
from repro.errors import JobConfError, JobError
from repro.obs import hub as _hub
from repro.obs import profile as _profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import policy_knobs
from repro.scan.engine import ScanOptions, ScanSpan, run_map_task
from repro.scan.proc import (
    ScanTask,
    init_worker_telemetry,
    materialize_outputs,
    run_scan_task,
)
from repro.sim.random_source import RandomSource

MAP_EXECUTORS = ("thread", "process")
"""How the LocalRunner parallelizes a map batch across workers."""

#: Environment defaults, so existing entry points (tests, CI suites) can
#: be switched to the process executor without changing call sites.
MAP_EXECUTOR_ENV = "REPRO_MAP_EXECUTOR"
MAP_WORKERS_ENV = "REPRO_MAP_WORKERS"


@dataclass
class LocalMapResult:
    """Outcome of one locally executed map task."""

    split: InputSplit
    records_processed: int
    outputs: list
    span: ScanSpan | None = None
    """Scan timing, captured only when a trace recorder is attached."""


class LocalRunner:
    """Executes MapReduce jobs in process, over materialized splits."""

    def __init__(
        self,
        *,
        policies: PolicyRegistry | None = None,
        providers: ProviderRegistry | None = None,
        seed: int = 0,
        virtual_map_slots: int = 40,
        scan_options: ScanOptions | None = None,
        map_workers: int | None = None,
        trace=None,
        map_executor: str | None = None,
    ) -> None:
        if virtual_map_slots < 1:
            raise JobConfError("virtual_map_slots must be >= 1")
        if map_executor is None:
            map_executor = os.environ.get(MAP_EXECUTOR_ENV) or "thread"
        if map_executor not in MAP_EXECUTORS:
            raise JobConfError(
                f"unknown map executor {map_executor!r}; one of {MAP_EXECUTORS}"
            )
        if map_workers is None:
            env_workers = os.environ.get(MAP_WORKERS_ENV)
            try:
                map_workers = int(env_workers) if env_workers else 1
            except ValueError:
                raise JobConfError(
                    f"{MAP_WORKERS_ENV} must be an integer, got {env_workers!r}"
                ) from None
        if map_workers < 1:
            raise JobConfError(f"map_workers must be >= 1, got {map_workers}")
        self._policies = policies or paper_policies()
        self._providers = providers or default_providers()
        self._random = RandomSource(seed)
        self._slots = virtual_map_slots
        self._scan_options = scan_options or ScanOptions()
        self._map_workers = map_workers
        self._map_executor = map_executor
        self._process_pool: ProcessPoolExecutor | None = None
        self._runs = 0
        self.trace = trace
        """Optional :class:`repro.obs.trace.TraceRecorder`. Pure
        read-side: attaching one changes no job output bytes. Local
        execution has no simulated clock, so events carry time 0.0 and
        scan spans carry wall-clock durations only."""
        self._task_seq = 0

    # ------------------------------------------------------------------
    def run(self, conf: JobConf, splits: list[InputSplit]) -> JobResult:
        """Execute ``conf`` over ``splits`` and return its result.

        All splits must be materialized and the conf must define a
        mapper factory (real execution only — this runner never consults
        split profiles).
        """
        if conf.mapper_factory is None:
            raise JobConfError(f"job {conf.name!r}: LocalRunner needs a mapper_factory")
        if not splits:
            raise JobConfError(f"job {conf.name!r}: no input splits")
        for split in splits:
            if not split.materialized:
                raise JobError(
                    f"job {conf.name!r}: split {split.split_id} is not materialized; "
                    "LocalRunner executes real rows only"
                )
        self._runs += 1
        self._task_seq = 0
        job_id = f"local_{self._runs:06d}"
        if self.trace is not None:
            self.trace.record(
                0.0, "job_submitted", job_id, name=conf.name,
                dynamic=conf.is_dynamic, splits=len(splits),
                input_complete=not conf.is_dynamic,
                total_splits=len(splits),
                sample_size=conf.sample_size,
            )
        approx = None
        if conf.is_dynamic:
            map_results, evaluations, increments, pruned, provider = (
                self._run_dynamic(conf, splits, job_id)
            )
            summary = getattr(provider, "approx_summary", None)
            if summary is not None:
                approx = summary()
        else:
            map_results = self._run_map_batch(conf, splits, job_id=job_id)
            evaluations, increments, pruned = 0, 1, 0

        output_data = self._run_reduce(conf, map_results)
        records = sum(r.records_processed for r in map_results)
        map_outputs = sum(len(r.outputs) for r in map_results)
        registry = self._job_registry(
            job_id, map_results,
            evaluations=evaluations, increments=increments, pruned=pruned,
        )
        if self.trace is not None:
            self.trace.record(0.0, "job_succeeded", job_id)
            self.trace.metrics_snapshot(
                0.0, scope="job", job_id=job_id, metrics=registry.snapshot()
            )
        return JobResult(
            job_id=job_id,
            name=conf.name,
            state=JobState.SUCCEEDED,
            submit_time=0.0,
            finish_time=0.0,
            splits_total=len(splits),
            splits_processed=len(map_results),
            records_processed=records,
            map_outputs_produced=map_outputs,
            outputs_produced=len(output_data),
            output_data=output_data,
            evaluations=evaluations,
            input_increments=increments,
            metrics_snapshot=registry.snapshot(),
            splits_pruned=pruned,
            approx=approx,
        )

    def _job_registry(
        self,
        job_id: str,
        map_results: list[LocalMapResult],
        *,
        evaluations: int,
        increments: int,
        pruned: int = 0,
    ) -> MetricsRegistry:
        """Per-run registry mirroring the simulated Job's metric names."""
        registry = MetricsRegistry(scope=f"job:{job_id}")
        records = registry.counter("records_processed")
        outputs = registry.counter("outputs_produced")
        per_task = registry.histogram("map_records_per_task")
        for result in map_results:
            records.inc(result.records_processed)
            outputs.inc(len(result.outputs))
            per_task.observe(result.records_processed)
        registry.gauge("records_pending").set(0)
        registry.counter("provider_evaluations").inc(evaluations)
        registry.counter("input_increments").inc(increments)
        registry.counter("failed_map_attempts")
        registry.counter("splits_pruned").inc(pruned)
        return registry

    # ------------------------------------------------------------------
    # Dynamic protocol, synchronous
    # ------------------------------------------------------------------
    def _run_dynamic(
        self, conf: JobConf, splits: list[InputSplit], job_id: str
    ) -> tuple[list[LocalMapResult], int, int, int, object]:
        conf.validate_dynamic()
        policy = self._policies.get(conf.policy_name)  # type: ignore[arg-type]
        provider = self._providers.create(conf.input_provider_name)  # type: ignore[arg-type]
        rng = self._random.stream(f"local-provider:{conf.name}:{self._runs}")
        provider.initialize(splits, conf, policy, rng)

        total = len(splits)
        cluster = self._cluster_status()
        # Same span discipline as JobClient: exactly one provider.evaluate
        # span per provider invocation, matching provider_evaluation events.
        with _profile.profiled_span(_profile.PHASE_EVALUATE):
            batch, complete = provider.initial_input(cluster)
        if self.trace is not None:
            self.trace.provider_evaluation(
                0.0,
                job_id=job_id,
                phase="initial",
                policy=policy.name,
                knobs=policy_knobs(policy),
                progress=None,
                cluster=cluster,
                response_kind="END_OF_INPUT" if complete else "INPUT_AVAILABLE",
                splits=len(batch),
                pruned=getattr(provider, "splits_pruned", 0),
                ci=getattr(provider, "ci_state", None),
            )
        map_results: list[LocalMapResult] = []
        evaluations = 0
        increments = 1 if batch else 0
        idle_evaluations = 0

        while True:
            batch_results = self._run_map_batch(conf, batch, job_id=job_id)
            map_results.extend(batch_results)
            for result in batch_results:
                provider.observe_split(
                    result.split.split_id,
                    records=result.records_processed,
                    outputs=len(result.outputs),
                    rows=result.outputs,
                )
            if complete:
                break
            evaluations += 1
            progress = self._progress(conf, total, map_results)
            cluster = self._cluster_status()
            with _profile.profiled_span(_profile.PHASE_EVALUATE):
                response = provider.evaluate(progress, cluster)
            if self.trace is not None:
                self.trace.provider_evaluation(
                    0.0,
                    job_id=job_id,
                    phase="evaluate",
                    policy=policy.name,
                    knobs=policy_knobs(policy),
                    progress=progress,
                    cluster=cluster,
                    response_kind=response.kind.name,
                    splits=len(response.splits),
                    pruned=getattr(provider, "splits_pruned", 0),
                    ci=getattr(provider, "ci_state", None),
                )
            if response.kind is ResponseKind.END_OF_INPUT:
                break
            if response.kind is ResponseKind.INPUT_AVAILABLE:
                batch = list(response.splits)
                increments += 1
                idle_evaluations = 0
                continue
            # NO_INPUT_AVAILABLE: with synchronous execution nothing is
            # pending, so repeated waits cannot make progress.
            batch = []
            idle_evaluations += 1
            if idle_evaluations > 2:
                raise JobError(
                    f"job {conf.name!r}: provider waited {idle_evaluations} times "
                    "with no work in flight; the provider is livelocked"
                )
        return (
            map_results,
            evaluations,
            increments,
            getattr(provider, "splits_pruned", 0),
            provider,
        )

    def _progress(
        self, conf: JobConf, total_splits: int, map_results: list[LocalMapResult]
    ) -> JobProgress:
        records = sum(r.records_processed for r in map_results)
        outputs = sum(len(r.outputs) for r in map_results)
        return JobProgress(
            job_id="local",
            total_splits_known=total_splits,
            splits_added=len(map_results),
            splits_completed=len(map_results),
            splits_pending=0,
            records_processed=records,
            outputs_produced=outputs,
            records_pending=0,
        )

    def _cluster_status(self) -> ClusterStatus:
        return ClusterStatus(
            total_map_slots=self._slots,
            available_map_slots=self._slots,
            running_map_tasks=0,
            queued_map_tasks=0,
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _run_map(self, conf: JobConf, split: InputSplit) -> LocalMapResult:
        options = self._scan_options.with_conf(conf)
        if self.trace is None:
            context = run_map_task(conf, split, options)
            span = None
        else:
            holder: list = []
            context = run_map_task(conf, split, options, span_sink=holder.append)
            span = holder[0]
        return LocalMapResult(
            split=split,
            records_processed=context.records_read,
            outputs=context.outputs,
            span=span,
        )

    def _run_map_batch(
        self, conf: JobConf, splits: list[InputSplit], *, job_id: str = "local"
    ) -> list[LocalMapResult]:
        """Run one grabbed batch's map tasks, optionally across a worker pool.

        Results are gathered in submission order, so serial and parallel
        execution produce byte-identical job output. The ``process``
        executor ships tasks as (path, file range, matcher source) to
        worker processes sharing the dataset's page-cache pages; it
        applies only when every split lives in an mmap dataset and the
        mapper's work reduces to a shippable scan spec — anything else
        falls back to the in-process path, which is always correct. Scan
        spans are emitted here, after the gather, so the trace order is
        submission order no matter how the pool interleaved the work.
        """
        results = None
        if self._map_executor == "process" and splits:
            results = self._run_map_batch_process(conf, splits, job_id=job_id)
        if results is None:
            results = self._run_map_batch_inline(conf, splits)
        if self.trace is not None:
            for result in results:
                span = result.span
                if span is None:
                    continue
                self._task_seq += 1
                self.trace.scan_span(
                    0.0,
                    job_id=job_id,
                    task_id=f"{job_id}_m_{self._task_seq:06d}",
                    split_id=span.split_id,
                    mode=span.mode,
                    batch_size=span.batch_size,
                    rows=span.rows,
                    outputs=span.outputs,
                    elapsed_s=span.elapsed_s,
                )
        return results

    def _run_map_batch_inline(
        self, conf: JobConf, splits: list[InputSplit]
    ) -> list[LocalMapResult]:
        """Serial or thread-pool execution inside this process. Threads
        (not processes) because mapper factories are closures; map tasks
        share no mutable state, each getting its own mapper and context."""
        if self._map_workers == 1 or len(splits) <= 1:
            return [self._run_map(conf, split) for split in splits]
        workers = min(self._map_workers, len(splits))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(self._run_map, conf, split) for split in splits]
            return [future.result() for future in futures]

    def _run_map_batch_process(
        self, conf: JobConf, splits: list[InputSplit], *, job_id: str = "local"
    ) -> list[LocalMapResult] | None:
        """Ship the batch to worker processes; None means "fall back".

        Preconditions checked here, not assumed: the mapper must expose
        a scan-task spec, every split must reference an mmap dataset
        file, and the spec must pickle (opaque predicates may not).
        Workers return only match indices and counters; output rows are
        materialized parent-side from its own mapping of the same file,
        so bytes match serial execution exactly. Worker-measured
        wall/CPU timings feed the ``scan.map_task`` profiler phase —
        one timing per task, same as in-process scans.

        When a telemetry hub is installed, tasks carry the job id and
        workers flush cumulative progress deltas mid-scan (see
        ``scan.proc``); the hub also reconciles each finished task's
        piggybacked checkpoints here, right after the gather. All of it
        is read-side: counters, indices, and output bytes are identical
        hub on or off.
        """
        spec = conf.mapper_factory().scan_task_spec()
        if spec is None:
            return None
        refs = [split.mmap_ref for split in splits]
        if any(ref is None for ref in refs):
            return None
        hub = _hub.ACTIVE
        telemetry_job = job_id if hub is not None else None
        tasks = [ScanTask(ref=ref, spec=spec, job_id=telemetry_job) for ref in refs]
        try:
            pickle.dumps(tasks[0])
        except Exception:
            return None
        pool = self._ensure_process_pool()
        futures = [pool.submit(run_scan_task, task) for task in tasks]
        try:
            outcomes = [future.result() for future in futures]
        except BrokenProcessPool:
            # A worker died mid-batch (OOM, signal): drop the pool so it
            # is rebuilt lazily, and run this batch in process instead.
            self._process_pool = None
            return None
        if hub is not None:
            for outcome in outcomes:
                hub.record_worker_result(job_id, outcome)
        options = self._scan_options.with_conf(conf)
        profiler = _profile.ACTIVE
        results: list[LocalMapResult] = []
        for split, outcome in zip(splits, outcomes):
            outputs = materialize_outputs(
                split.block.payload.column_store(), outcome, spec
            )
            if profiler is not None:
                profiler.record_external(
                    _profile.PHASE_SCAN, outcome.wall_s, outcome.cpu_s
                )
            span = None
            if self.trace is not None:
                # Workers always run the generated batch matcher; the
                # span reports the runner's requested mode, which is
                # byte-equivalent by the scan-mode parity contract.
                span = ScanSpan(
                    split_id=split.split_id,
                    mode=options.mode,
                    batch_size=options.batch_size,
                    rows=outcome.scanned,
                    outputs=len(outputs),
                    elapsed_s=outcome.scan_wall_s,
                )
            results.append(
                LocalMapResult(
                    split=split,
                    records_processed=outcome.scanned,
                    outputs=outputs,
                    span=span,
                )
            )
        return results

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """The runner's persistent worker pool, created on first use.

        Forked where the platform allows it: forked workers inherit the
        imported modules, so per-task cost is mmap-open (cached per
        worker) + one small compile, never interpreter start-up.

        If a telemetry hub is installed when the pool is first built,
        every worker gets the hub's delta queue through the pool
        initializer (multiprocessing queues travel safely via
        ``initargs`` — they ride the process-spawn arguments, where a
        plain pickle of the queue would fail). A pool created before the
        hub simply carries no conduit; workers then take the single-call
        scan path and telemetry degrades to task-completion granularity.
        """
        if self._process_pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork
                ctx = multiprocessing.get_context()
            initializer = None
            initargs: tuple = ()
            hub = _hub.ACTIVE
            if hub is not None:
                queue = hub.worker_channel(ctx)
                if queue is not None:
                    initializer = init_worker_telemetry
                    initargs = (
                        (queue,)
                        if hub.worker_chunk_rows is None
                        else (queue, hub.worker_chunk_rows)
                    )
            self._process_pool = ProcessPoolExecutor(
                max_workers=self._map_workers, mp_context=ctx,
                initializer=initializer, initargs=initargs,
            )
        return self._process_pool

    def close(self) -> None:
        """Shut down the process pool, if one was ever started."""
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None

    def __enter__(self) -> "LocalRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_reduce(self, conf: JobConf, map_results: list[LocalMapResult]) -> list:
        all_outputs = [r.outputs for r in map_results]
        if conf.num_reduce_tasks == 0 or conf.reducer_factory is None:
            return [pair for outputs in all_outputs for pair in outputs]
        context = ReduceContext()
        reducer = conf.reducer_factory()
        reducer.run(group_outputs(all_outputs), context)
        return context.outputs
