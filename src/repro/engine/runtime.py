"""LocalRunner: real, in-process MapReduce execution.

Runs a job's actual map and reduce functions over materialized splits,
with no simulated time — the correctness substrate. Dynamic jobs execute
the full Input Provider protocol synchronously: grab a batch, run its
map tasks for real, report progress, evaluate, repeat until end of
input, then shuffle and reduce.

Because execution is synchronous, the LocalRunner models the cluster
status handed to providers with a configurable virtual slot pool: all
slots are "available" at every evaluation (nothing else is running), so
policies degrade gracefully to their idle-cluster grab limits.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.input_provider import (
    ProviderRegistry,
    ResponseKind,
    default_providers,
)
from repro.core.policy import PolicyRegistry, paper_policies
from repro.dfs.split import InputSplit
from repro.engine.job import ClusterStatus, JobProgress, JobResult, JobState
from repro.engine.jobconf import JobConf
from repro.engine.mapreduce import ReduceContext
from repro.engine.shuffle import group_outputs
from repro.errors import JobConfError, JobError
from repro.scan.engine import ScanOptions, run_map_task
from repro.sim.random_source import RandomSource


@dataclass
class LocalMapResult:
    """Outcome of one locally executed map task."""

    split: InputSplit
    records_processed: int
    outputs: list


class LocalRunner:
    """Executes MapReduce jobs in process, over materialized splits."""

    def __init__(
        self,
        *,
        policies: PolicyRegistry | None = None,
        providers: ProviderRegistry | None = None,
        seed: int = 0,
        virtual_map_slots: int = 40,
        scan_options: ScanOptions | None = None,
        map_workers: int = 1,
    ) -> None:
        if virtual_map_slots < 1:
            raise JobConfError("virtual_map_slots must be >= 1")
        if map_workers < 1:
            raise JobConfError(f"map_workers must be >= 1, got {map_workers}")
        self._policies = policies or paper_policies()
        self._providers = providers or default_providers()
        self._random = RandomSource(seed)
        self._slots = virtual_map_slots
        self._scan_options = scan_options or ScanOptions()
        self._map_workers = map_workers
        self._runs = 0

    # ------------------------------------------------------------------
    def run(self, conf: JobConf, splits: list[InputSplit]) -> JobResult:
        """Execute ``conf`` over ``splits`` and return its result.

        All splits must be materialized and the conf must define a
        mapper factory (real execution only — this runner never consults
        split profiles).
        """
        if conf.mapper_factory is None:
            raise JobConfError(f"job {conf.name!r}: LocalRunner needs a mapper_factory")
        if not splits:
            raise JobConfError(f"job {conf.name!r}: no input splits")
        for split in splits:
            if not split.materialized:
                raise JobError(
                    f"job {conf.name!r}: split {split.split_id} is not materialized; "
                    "LocalRunner executes real rows only"
                )
        self._runs += 1
        if conf.is_dynamic:
            map_results, evaluations, increments = self._run_dynamic(conf, splits)
        else:
            map_results = self._run_map_batch(conf, splits)
            evaluations, increments = 0, 1

        output_data = self._run_reduce(conf, map_results)
        records = sum(r.records_processed for r in map_results)
        map_outputs = sum(len(r.outputs) for r in map_results)
        return JobResult(
            job_id=f"local_{self._runs:06d}",
            name=conf.name,
            state=JobState.SUCCEEDED,
            submit_time=0.0,
            finish_time=0.0,
            splits_total=len(splits),
            splits_processed=len(map_results),
            records_processed=records,
            map_outputs_produced=map_outputs,
            outputs_produced=len(output_data),
            output_data=output_data,
            evaluations=evaluations,
            input_increments=increments,
        )

    # ------------------------------------------------------------------
    # Dynamic protocol, synchronous
    # ------------------------------------------------------------------
    def _run_dynamic(
        self, conf: JobConf, splits: list[InputSplit]
    ) -> tuple[list[LocalMapResult], int, int]:
        conf.validate_dynamic()
        policy = self._policies.get(conf.policy_name)  # type: ignore[arg-type]
        provider = self._providers.create(conf.input_provider_name)  # type: ignore[arg-type]
        rng = self._random.stream(f"local-provider:{conf.name}:{self._runs}")
        provider.initialize(splits, conf, policy, rng)

        total = len(splits)
        cluster = self._cluster_status()
        batch, complete = provider.initial_input(cluster)
        map_results: list[LocalMapResult] = []
        evaluations = 0
        increments = 1 if batch else 0
        idle_evaluations = 0

        while True:
            map_results.extend(self._run_map_batch(conf, batch))
            if complete:
                break
            evaluations += 1
            progress = self._progress(conf, total, map_results)
            response = provider.evaluate(progress, self._cluster_status())
            if response.kind is ResponseKind.END_OF_INPUT:
                break
            if response.kind is ResponseKind.INPUT_AVAILABLE:
                batch = list(response.splits)
                increments += 1
                idle_evaluations = 0
                continue
            # NO_INPUT_AVAILABLE: with synchronous execution nothing is
            # pending, so repeated waits cannot make progress.
            batch = []
            idle_evaluations += 1
            if idle_evaluations > 2:
                raise JobError(
                    f"job {conf.name!r}: provider waited {idle_evaluations} times "
                    "with no work in flight; the provider is livelocked"
                )
        return map_results, evaluations, increments

    def _progress(
        self, conf: JobConf, total_splits: int, map_results: list[LocalMapResult]
    ) -> JobProgress:
        records = sum(r.records_processed for r in map_results)
        outputs = sum(len(r.outputs) for r in map_results)
        return JobProgress(
            job_id="local",
            total_splits_known=total_splits,
            splits_added=len(map_results),
            splits_completed=len(map_results),
            splits_pending=0,
            records_processed=records,
            outputs_produced=outputs,
            records_pending=0,
        )

    def _cluster_status(self) -> ClusterStatus:
        return ClusterStatus(
            total_map_slots=self._slots,
            available_map_slots=self._slots,
            running_map_tasks=0,
            queued_map_tasks=0,
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _run_map(self, conf: JobConf, split: InputSplit) -> LocalMapResult:
        options = self._scan_options.with_conf(conf)
        context = run_map_task(conf, split, options)
        return LocalMapResult(
            split=split,
            records_processed=context.records_read,
            outputs=context.outputs,
        )

    def _run_map_batch(
        self, conf: JobConf, splits: list[InputSplit]
    ) -> list[LocalMapResult]:
        """Run one grabbed batch's map tasks, optionally across a worker pool.

        Results are gathered in submission order, so serial and parallel
        execution produce byte-identical job output. Threads (not
        processes) because mapper factories are closures; map tasks share
        no mutable state, each getting its own mapper and context.
        """
        if self._map_workers == 1 or len(splits) <= 1:
            return [self._run_map(conf, split) for split in splits]
        workers = min(self._map_workers, len(splits))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(self._run_map, conf, split) for split in splits]
            return [future.result() for future in futures]

    def _run_reduce(self, conf: JobConf, map_results: list[LocalMapResult]) -> list:
        all_outputs = [r.outputs for r in map_results]
        if conf.num_reduce_tasks == 0 or conf.reducer_factory is None:
            return [pair for outputs in all_outputs for pair in outputs]
        context = ReduceContext()
        reducer = conf.reducer_factory()
        reducer.run(group_outputs(all_outputs), context)
        return context.outputs
