"""SimulatedCluster: the one-stop facade for performance experiments.

Wires together the simulator, topology, DFS, JobTracker, TaskTrackers,
JobClient, and metrics monitor, mirroring a freshly provisioned
Hadoop/Hive installation. Typical use::

    cluster = SimulatedCluster.paper_cluster()
    cluster.load_dataset("/data/lineitem_5x", dataset)
    conf = make_sampling_conf(name="q", input_path="/data/lineitem_5x",
                              predicate=pred, sample_size=10_000,
                              policy_name="LA")
    result = cluster.run_job(conf)
    print(result.response_time, result.splits_processed)
"""

from __future__ import annotations

from repro.cluster.costmodel import CostModel
from repro.cluster.metrics import ClusterMetrics, MetricsMonitor
from repro.cluster.topology import ClusterTopology, paper_topology
from repro.core.input_provider import ProviderRegistry, default_providers
from repro.core.policy import PolicyRegistry, paper_policies
from repro.data.datasets import PartitionedDataset
from repro.dfs.dfs import DistributedFileSystem
from repro.dfs.placement import PlacementPolicy
from repro.engine.job import Job, JobResult
from repro.engine.jobclient import CompletionCallback, JobClient
from repro.engine.jobconf import JobConf
from repro.engine.jobtracker import JobTracker
from repro.engine.scheduler.base import TaskScheduler
from repro.engine.scheduler.fair import FairScheduler
from repro.engine.scheduler.fifo import FifoScheduler
from repro.errors import ClusterConfigError, JobError
from repro.sim.random_source import RandomSource
from repro.sim.simulator import Simulator


def _make_scheduler(scheduler: str | TaskScheduler | None) -> TaskScheduler:
    if scheduler is None:
        return FifoScheduler()
    if isinstance(scheduler, TaskScheduler):
        return scheduler
    if scheduler == "fifo":
        return FifoScheduler()
    if scheduler == "fair":
        return FairScheduler()
    raise ClusterConfigError(
        f"unknown scheduler {scheduler!r}; use 'fifo', 'fair', or an instance"
    )


class SimulatedCluster:
    """A complete simulated Hadoop cluster plus client-side machinery."""

    def __init__(
        self,
        topology: ClusterTopology | None = None,
        *,
        cost_model: CostModel | None = None,
        scheduler: str | TaskScheduler | None = None,
        policies: PolicyRegistry | None = None,
        providers: ProviderRegistry | None = None,
        placement: PlacementPolicy | None = None,
        seed: int = 0,
        metrics_interval: float = 30.0,
        failure_injector=None,
        straggler_model=None,
        dispatch_delay: float = 1.5,
        history=None,
        trace=None,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or paper_topology()
        self.cost_model = cost_model or CostModel()
        self.random_source = RandomSource(seed)
        self.dfs = DistributedFileSystem(
            self.topology.storage_locations(), placement=placement
        )
        self.monitor = MetricsMonitor(
            self.sim, self.topology, interval=metrics_interval
        )
        self.jobtracker = JobTracker(
            self.sim,
            self.topology,
            cost_model=self.cost_model,
            scheduler=_make_scheduler(scheduler),
            metrics=self.monitor.metrics,
            dispatch_delay=dispatch_delay,
            failure_injector=failure_injector,
            straggler_model=straggler_model,
            history=history,
            trace=trace,
        )
        self.jobclient = JobClient(
            self.sim,
            self.jobtracker,
            self.dfs,
            policies=policies or paper_policies(),
            providers=providers or default_providers(),
            random_source=self.random_source,
        )
        self._results: list[JobResult] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def paper_cluster(
        cls,
        *,
        map_slots_per_node: int = 4,
        scheduler: str | TaskScheduler | None = None,
        seed: int = 0,
        cost_model: CostModel | None = None,
        failure_injector=None,
        history=None,
        trace=None,
    ) -> "SimulatedCluster":
        """The paper's 10-node cluster (§V-A): 40 cores, 40 disks.

        ``map_slots_per_node=4`` is the single-user configuration; pass 16
        for the multi-user experiments (§V-D).
        """
        return cls(
            paper_topology(map_slots_per_node=map_slots_per_node),
            scheduler=scheduler,
            seed=seed,
            cost_model=cost_model,
            failure_injector=failure_injector,
            history=history,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Data & metrics
    # ------------------------------------------------------------------
    def load_dataset(self, path: str, dataset: PartitionedDataset) -> None:
        """Store a dataset into the cluster's DFS."""
        self.dfs.write_dataset(path, dataset)

    def start_metrics(self) -> None:
        self.monitor.start()

    @property
    def metrics(self) -> ClusterMetrics:
        return self.monitor.metrics

    @property
    def history(self):
        """The JobHistory event log, if one was attached at construction."""
        return self.jobtracker.history

    @property
    def trace(self):
        """The TraceRecorder, if one was attached at construction."""
        return self.jobtracker.trace

    def snapshot_cluster_metrics(self) -> None:
        """Export the cluster registry into the trace (end of a run)."""
        if self.trace is not None:
            self.trace.metrics_snapshot(
                self.sim.now, scope="cluster", metrics=self.metrics.snapshot()
            )

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def submit(self, conf: JobConf, on_complete: CompletionCallback | None = None) -> Job:
        """Submit a job; the simulation must then be advanced with run()."""

        def record_and_forward(result: JobResult) -> None:
            self._results.append(result)
            if on_complete is not None:
                on_complete(result)

        return self.jobclient.submit(conf, record_and_forward)

    def run_job(self, conf: JobConf, *, timeout: float = 1e7) -> JobResult:
        """Submit one job and run the simulation until it completes.

        Periodic activities (metrics sampling, other jobs' evaluation
        loops) keep the event queue alive, so completion is detected via
        the job's own callback rather than queue drain.
        """
        done: list[JobResult] = []

        def on_done(result: JobResult) -> None:
            done.append(result)
            self.sim.stop()

        self.submit(conf, on_done)
        self.sim.run(until=self.sim.now + timeout, advance_clock=False)
        if not done:
            raise JobError(
                f"job {conf.name!r} did not complete by simulated t={self.sim.now:.0f}s"
            )
        return done[0]

    def run(self, until: float | None = None) -> float:
        """Advance the simulation to ``until`` (or drain the event queue)."""
        return self.sim.run(until=until)

    @property
    def results(self) -> list[JobResult]:
        return list(self._results)
