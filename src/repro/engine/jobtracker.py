"""The JobTracker: job lifecycle and slot dispatch.

Event-driven rather than heartbeat-driven: dispatch runs when a job is
submitted, when input is added to a dynamic job, and when any task
completes. Schedulers that decline slots (delay scheduling) additionally
get a periodic retry so their locality waits can expire.

Per the paper's design (§IV), the JobTracker is agnostic of Input
Providers and policies: it only ever sees "submit job with these splits",
"add these splits to job J", and "input complete for job J" messages from
the client side.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cluster.costmodel import CostModel
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.topology import ClusterTopology
from repro.dfs.split import InputSplit
from repro.engine.job import ClusterStatus, Job, JobState
from repro.engine.jobconf import JobConf
from repro.engine.scheduler.base import TaskScheduler
from repro.engine.scheduler.fifo import FifoScheduler
from repro.engine.task import MapTask, ReduceTask, TaskState
from repro.engine.tasktracker import TaskTracker
from repro.errors import JobError
from repro.obs import hub as _hub
from repro.obs import profile as _profile
from repro.sim.simulator import Simulator

JobListener = Callable[[Job], None]


class JobTracker:
    """Server-side daemon managing all jobs on the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        cost_model: CostModel | None = None,
        scheduler: TaskScheduler | None = None,
        metrics: ClusterMetrics | None = None,
        dispatch_delay: float = 1.5,
        failure_injector=None,
        straggler_model=None,
        history=None,
        trace=None,
    ) -> None:
        if dispatch_delay < 0:
            raise JobError(f"dispatch_delay must be >= 0, got {dispatch_delay}")
        self._sim = sim
        self._topology = topology
        self._cost = cost_model or CostModel()
        self.scheduler = scheduler or FifoScheduler()
        self.metrics = metrics
        self.failure_injector = failure_injector
        self.history = history
        self.trace = trace
        """Optional :class:`repro.obs.trace.TraceRecorder`. Lifecycle
        events go to both ``history`` and ``trace`` (a TraceRecorder
        *is* a JobHistory, so passing the same object once works too);
        TaskTrackers and the JobClient reach the recorder through this
        attribute for scan spans and provider evaluations."""
        self.dispatch_delay = dispatch_delay
        """Latency between a state change and slot (re)assignment.

        Hadoop 0.20 assigns tasks only when a TaskTracker heartbeat
        arrives (3 s default period -> mean wait of about half that), so
        freed slots stay visibly *available* for a moment. Dynamic jobs
        rely on that: a conservative policy whose GrabLimit is a fraction
        of AS can only grow when an evaluation observes AS > 0, which
        never happens under instantaneous (delay 0) reassignment on a
        saturated cluster.
        """
        self._trackers = {
            node.node_id: TaskTracker(
                sim, node, topology, self._cost, self,
                failure_injector, straggler_model,
            )
            for node in topology.nodes
        }
        self._jobs: dict[str, Job] = {}
        self._active_jobs: list[Job] = []  # submission order
        self._listeners: dict[str, list[JobListener]] = {}
        self._dispatch_scheduled = False
        self._retry_handle = None
        self._node_rotation = itertools.cycle([n.node_id for n in topology.nodes])
        self._reduce_ids = itertools.count(1)
        # Per-tracker, so a job's id depends only on its submission order
        # within this cluster — not on process history (determinism: two
        # back-to-back runs must produce byte-identical JobResults).
        self._job_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------
    def submit_job(
        self,
        conf: JobConf,
        splits: list[InputSplit],
        *,
        input_complete: bool,
        total_splits_known: int,
        listener: JobListener | None = None,
    ) -> Job:
        """Register a new job. For static jobs ``input_complete`` is True
        and ``splits`` is the whole input; dynamic jobs start smaller."""
        job = Job(
            f"job_{next(self._job_ids):06d}",
            conf,
            total_splits_known=total_splits_known,
            submit_time=self._sim.now,
        )
        self._record(
            "job_submitted", job.job_id, name=conf.name,
            dynamic=conf.is_dynamic, splits=len(splits),
            input_complete=input_complete,
            total_splits=total_splits_known,
            sample_size=conf.sample_size,
        )
        self._jobs[job.job_id] = job
        self._active_jobs.append(job)
        if listener is not None:
            self.add_listener(job.job_id, listener)
        if splits:
            job.add_splits(splits)
        if input_complete:
            job.mark_input_complete()
        # Job setup (split computation, initialization) before tasks launch.
        self._sim.schedule(
            self._cost.job_setup_seconds, self._activate_job, job,
            label=f"job-setup:{job.job_id}",
        )
        return job

    def add_input(self, job_id: str, splits: list[InputSplit]) -> None:
        """The "input available" message: attach more splits to a dynamic job."""
        job = self.get_job(job_id)
        job.add_splits(splits)
        self._record("input_added", job.job_id, splits=len(splits))
        self._request_dispatch()

    def complete_input(self, job_id: str) -> None:
        """The "end of input" message: no further splits will arrive."""
        job = self.get_job(job_id)
        if job.input_complete:
            return
        job.mark_input_complete()
        self._record("input_complete", job.job_id)
        self._maybe_finish_maps(job)
        self._request_dispatch()

    def get_job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job {job_id}") from None

    def add_listener(self, job_id: str, listener: JobListener) -> None:
        self._listeners.setdefault(job_id, []).append(listener)

    def cluster_status(self) -> ClusterStatus:
        queued = sum(len(job.pending_maps) for job in self._active_jobs)
        return ClusterStatus(
            total_map_slots=self._topology.total_map_slots,
            available_map_slots=self._topology.available_map_slots,
            running_map_tasks=self._topology.running_map_tasks,
            queued_map_tasks=queued,
        )

    @property
    def active_jobs(self) -> list[Job]:
        return list(self._active_jobs)

    # ------------------------------------------------------------------
    # Internal lifecycle
    # ------------------------------------------------------------------
    def _record(self, kind: str, job_id: str, *, task_id: str | None = None, **detail) -> None:
        now = self._sim.now
        if self.history is not None:
            self.history.record(now, kind, job_id, task_id=task_id, **detail)
        if self.trace is not None and self.trace is not self.history:
            self.trace.record(now, kind, job_id, task_id=task_id, **detail)

    def _activate_job(self, job: Job) -> None:
        if job.state is not JobState.PREP:
            return
        job.state = JobState.RUNNING
        self._record("job_activated", job.job_id)
        # A dynamic job may have been granted zero initial splits (e.g. a
        # conservative policy on a saturated cluster); it still becomes
        # RUNNING and waits for its provider to add input.
        self._maybe_finish_maps(job)
        self._request_dispatch()

    def _request_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        self._sim.schedule(self.dispatch_delay, self._dispatch, label="dispatch")

    def _dispatch(self) -> None:
        with _profile.profiled_span(_profile.PHASE_DISPATCH):
            self._dispatch_pass()
        hub = _hub.ACTIVE
        if hub is not None:
            # Live slot-utilization sample after every dispatch pass.
            # Read-side only: cluster_status() is a pure computation and
            # the hub never feeds anything back into scheduling.
            hub.observe_cluster(self.cluster_status())

    def _dispatch_pass(self) -> None:
        self._dispatch_scheduled = False
        schedulable = [
            job
            for job in self._active_jobs
            if job.state is JobState.RUNNING and not job.pending_maps.empty
        ]
        declined = False
        if schedulable:
            declined = self._assign_map_slots(schedulable)
        self._assign_reduce_slots()
        if declined:
            self._schedule_retry()
        elif self._retry_handle is not None:
            # The stall the retry timer was armed for has resolved: every
            # offerable slot was either filled or there is no pending work
            # left. Left alone, the stale timer would fire a phantom
            # dispatch whose coalescing window (_dispatch_scheduled) can
            # pull a *later* real dispatch earlier — leaking one job's
            # stall history into the next job's timing on a shared
            # cluster. Cancelling keeps "timer armed" equivalent to
            # "a decline is outstanding".
            self._retry_handle.cancel()
            self._retry_handle = None

    def _assign_map_slots(self, schedulable: list[Job]) -> bool:
        """Offer free map slots breadth-first across nodes: one task per
        node per pass, repeating until a pass assigns nothing.

        Hadoop 0.20 hands out roughly one map task per TaskTracker
        heartbeat, which spreads a small job's tasks over the nodes that
        store its data instead of stacking them onto whichever node is
        polled first — breadth-first assignment preserves that locality
        behaviour. Returns True if the scheduler declined offerable slots
        while work remained (delay scheduling).
        """
        declined = False
        node_ids = [next(self._node_rotation) for _ in range(self._topology.num_nodes)]
        assigned_any = True
        while assigned_any:
            assigned_any = False
            for node_id in node_ids:
                node = self._topology.node(node_id)
                if node.free_map_slots <= 0:
                    continue
                live_jobs = [j for j in schedulable if not j.pending_maps.empty]
                if not live_jobs:
                    return declined
                task = self.scheduler.choose_map_task(node, live_jobs, self._sim.now)
                if task is None:
                    declined = True
                    continue
                job = self.get_job(task.job_id)
                self._trackers[node_id].launch_map(job, task)
                job.map_started(task)
                self._record(
                    "map_started", job.job_id, task_id=task.task_id,
                    node=node_id, local=bool(task.local), attempt=task.attempt,
                )
                assigned_any = True
        still_pending = any(not j.pending_maps.empty for j in schedulable)
        return declined and still_pending

    def _assign_reduce_slots(self) -> None:
        for job in self._active_jobs:
            if job.state is JobState.RUNNING and job.ready_for_reduce:
                self._start_reduce(job)

    def _schedule_retry(self) -> None:
        """Arm the delay-scheduling retry timer (at most one outstanding).

        The timer disarms itself when it fires, so every later decline —
        a second locality-wait expiry, a third — arms a fresh one; a
        dispatch that resolves the stall cancels it (see ``_dispatch``).
        """
        delay = self.scheduler.retry_delay()
        if delay is None or self._retry_handle is not None:
            return

        def retry() -> None:
            self._retry_handle = None
            self._request_dispatch()

        self._retry_handle = self._sim.schedule(
            delay, retry, label="dispatch-retry"
        )

    @property
    def retry_pending(self) -> bool:
        """True while a dispatch-retry timer is armed (tests/tracing)."""
        return self._retry_handle is not None

    # ------------------------------------------------------------------
    # Completion callbacks (from TaskTrackers)
    # ------------------------------------------------------------------
    def on_map_complete(self, job: Job, task: MapTask, *, local: bool) -> None:
        job.map_finished(task)
        self._record(
            "map_finished", job.job_id, task_id=task.task_id,
            outputs=task.outputs_produced, records=task.records_processed,
        )
        if self.metrics is not None:
            self.metrics.record_map_task(local=local)
        self._maybe_finish_maps(job)
        self._request_dispatch()

    def on_map_failed(self, job: Job, task: MapTask) -> None:
        """A map attempt failed: retry its split, or kill the job once
        the attempt budget is exhausted (Hadoop semantics)."""
        self._record(
            "map_failed", job.job_id, task_id=task.task_id, attempt=task.attempt
        )
        retry = job.map_failed(task)
        if retry is None:
            if not job.finished:
                self._kill_job(job)
        else:
            self._record(
                "map_retried", job.job_id, task_id=retry.task_id,
                attempt=retry.attempt, split=retry.split.split_id,
            )
        self._request_dispatch()

    def _kill_job(self, job: Job) -> None:
        job.state = JobState.KILLED
        job.finish_time = self._sim.now
        self._record("job_killed", job.job_id)
        self._snapshot_job_metrics(job)
        if job in self._active_jobs:
            self._active_jobs.remove(job)
        for listener in self._listeners.pop(job.job_id, []):
            listener(job)

    def on_reduce_complete(self, job: Job, task: ReduceTask) -> None:
        self._record(
            "reduce_finished", job.job_id, task_id=task.task_id,
            outputs=task.outputs_produced,
        )
        self._sim.schedule(
            self._cost.job_cleanup_seconds,
            self._finish_job,
            job,
            label=f"job-cleanup:{job.job_id}",
        )
        self._request_dispatch()

    def _maybe_finish_maps(self, job: Job) -> None:
        """Move to reduce (or straight to done) once maps cannot progress."""
        if job.state is not JobState.RUNNING:
            return
        if not (job.input_complete and job.maps_done):
            return
        if job.conf.num_reduce_tasks == 0:
            if job.reduce_task is None and job.finish_time is None:
                self._sim.schedule(
                    self._cost.job_cleanup_seconds, self._finish_job, job,
                    label=f"job-cleanup:{job.job_id}",
                )
        # Reduce start is handled by _assign_reduce_slots via dispatch.

    def _start_reduce(self, job: Job) -> None:
        node = self._pick_reduce_node()
        if node is None:
            return  # retried on next dispatch
        task = ReduceTask(
            task_id=f"{job.job_id}_r_{next(self._reduce_ids):06d}",
            job_id=job.job_id,
        )
        job.reduce_task = task
        self._record("reduce_started", job.job_id, task_id=task.task_id,
                      node=node.node_id)
        self._trackers[node.node_id].launch_reduce(job, task)

    def _pick_reduce_node(self):
        best = None
        for node in self._topology.nodes:
            if node.free_reduce_slots > 0 and (
                best is None or node.free_reduce_slots > best.free_reduce_slots
            ):
                best = node
        return best

    def _snapshot_job_metrics(self, job: Job) -> None:
        """Export the job's registry into the trace at end of life."""
        if self.trace is not None:
            self.trace.metrics_snapshot(
                self._sim.now, scope="job", job_id=job.job_id,
                metrics=job.metrics.snapshot(),
            )

    def _finish_job(self, job: Job) -> None:
        if job.finished:
            return
        job.state = JobState.SUCCEEDED
        job.finish_time = self._sim.now
        self._record("job_succeeded", job.job_id)
        self._snapshot_job_metrics(job)
        self._active_jobs.remove(job)
        for listener in self._listeners.pop(job.job_id, []):
            listener(job)
        self._request_dispatch()
