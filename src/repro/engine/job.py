"""Job state: lifecycle, counters, and the progress snapshots handed to
Input Providers.

A *dynamic* job (paper §III) starts with a subset of its input splits and
grows via "add input" messages until its Input Provider declares end of
input; the reduce phase is held back until then. A *static* job receives
all splits at submission with input already complete (Hadoop's default
model — the paper's 'Hadoop' policy).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any

from repro.core.protocol import ClusterStatus, JobProgress
from repro.dfs.split import InputSplit
from repro.engine.jobconf import JobConf
from repro.engine.task import MapTask, PendingTaskQueue, ReduceTask
from repro.errors import JobError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ClusterStatus",
    "Job",
    "JobProgress",
    "JobResult",
    "JobState",
]


class JobState(enum.Enum):
    PREP = "prep"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    KILLED = "killed"


MAX_ATTEMPTS_PARAM = "mapred.map.max.attempts"
"""Attempts per map task before the job is killed (Hadoop parameter)."""


@dataclass
class JobResult:
    """Everything a caller learns from a finished job."""

    job_id: str
    name: str
    state: JobState
    submit_time: float
    finish_time: float
    splits_total: int
    splits_processed: int
    records_processed: int
    map_outputs_produced: int
    outputs_produced: int
    output_data: list[tuple[Any, Any]] | None
    evaluations: int
    input_increments: int
    failed_map_attempts: int = 0
    metrics_snapshot: dict | None = None
    """``MetricsRegistry.snapshot()`` of the job's registry, when one
    was kept. Deterministic: counts and simulated-time values only."""
    splits_pruned: int = 0
    """Splits the provider retired via split statistics without
    dispatching a map task (provably zero matches)."""
    approx: dict | None = None
    """Error-bounded aggregation summary (``AccuracyProvider
    .approx_summary()``): per-group estimates with CI half-widths.
    None for every other provider / job shape."""

    @property
    def response_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def sample(self) -> list:
        """The output values (sampled rows for a sampling job)."""
        if self.output_data is None:
            return []
        return [value for _key, value in self.output_data]


class Job:
    """Mutable job state tracked by the JobTracker."""

    _task_ids = itertools.count(1)

    def __init__(
        self,
        job_id: str,
        conf: JobConf,
        *,
        total_splits_known: int,
        submit_time: float,
    ) -> None:
        self.job_id = job_id
        self.conf = conf
        self.state = JobState.PREP
        self.submit_time = submit_time
        self.finish_time: float | None = None
        self.total_splits_known = total_splits_known
        self.input_complete = False

        self.pending_maps = PendingTaskQueue()
        self.running_maps: dict[str, MapTask] = {}
        self.completed_maps: list[MapTask] = []
        self.all_map_tasks: dict[str, MapTask] = {}
        self.reduce_task: ReduceTask | None = None

        # All job accounting lives in one registry (obs layer); the
        # legacy counter names remain readable as properties below.
        self.metrics = MetricsRegistry(scope=f"job:{job_id}")
        self._records_processed = self.metrics.counter("records_processed")
        self._outputs_produced = self.metrics.counter("outputs_produced")
        self._records_pending = self.metrics.gauge("records_pending")
        self._evaluations = self.metrics.counter("provider_evaluations")
        self._input_increments = self.metrics.counter("input_increments")
        self._failed_map_attempts = self.metrics.counter("failed_map_attempts")
        self._map_records = self.metrics.histogram("map_records_per_task")
        self._added_split_ids: set[str] = set()

        # Fair-scheduler bookkeeping: when this job last received a local
        # assignment opportunity (delay scheduling).
        self.locality_wait_start: float | None = None

        # Error-bounded aggregation summary, set by the JobClient's
        # completion listener when the job ran an accuracy provider.
        self.approx: dict | None = None

    # ------------------------------------------------------------------
    # Input growth
    # ------------------------------------------------------------------
    def add_splits(self, splits: list[InputSplit]) -> list[MapTask]:
        """Attach new input splits; returns the created (pending) map tasks."""
        if self.input_complete:
            raise JobError(f"job {self.job_id}: cannot add input after end-of-input")
        if self.state not in (JobState.PREP, JobState.RUNNING):
            raise JobError(f"job {self.job_id}: cannot add input in state {self.state}")
        tasks = []
        for split in splits:
            if split.split_id in self._added_split_ids:
                raise JobError(
                    f"job {self.job_id}: split {split.split_id} added twice"
                )
            self._added_split_ids.add(split.split_id)
            task = MapTask(
                task_id=f"{self.job_id}_m_{next(self._task_ids):06d}",
                job_id=self.job_id,
                split=split,
            )
            self.all_map_tasks[task.task_id] = task
            self.pending_maps.add(task)
            self._records_pending.inc(split.num_records)
            tasks.append(task)
        if splits:
            self._input_increments.inc()
        return tasks

    def mark_input_complete(self) -> None:
        self.input_complete = True

    # ------------------------------------------------------------------
    # Task lifecycle (called by the JobTracker)
    # ------------------------------------------------------------------
    def map_started(self, task: MapTask) -> None:
        self.running_maps[task.task_id] = task

    def map_finished(self, task: MapTask) -> None:
        removed = self.running_maps.pop(task.task_id, None)
        if removed is None:
            raise JobError(f"job {self.job_id}: unknown running map {task.task_id}")
        self.completed_maps.append(task)
        self._records_processed.inc(task.records_processed)
        self._outputs_produced.inc(task.outputs_produced)
        self._records_pending.dec(task.split.num_records)
        self._map_records.observe(task.records_processed)

    def map_failed(self, task: MapTask) -> MapTask | None:
        """Record a failed attempt; returns the retry attempt, or None
        when the task is out of attempts and the job must be killed.

        The split stays *pending* throughout (``records_pending`` is
        untouched), so Input Providers keep accounting for it.
        """
        removed = self.running_maps.pop(task.task_id, None)
        if removed is None:
            raise JobError(f"job {self.job_id}: unknown running map {task.task_id}")
        self._failed_map_attempts.inc()
        max_attempts = self.conf.get_int(MAX_ATTEMPTS_PARAM, 4)
        if task.attempt >= max_attempts:
            return None
        retry = task.retry()
        self.all_map_tasks[retry.task_id] = retry
        self.pending_maps.add(retry)
        return retry

    def record_evaluation(self) -> None:
        """Count one Input Provider evaluation (called by the client side)."""
        self._evaluations.inc()

    # ------------------------------------------------------------------
    # Introspection — counters are registry-backed; the names predate
    # the obs layer and stay readable for callers and tests.
    # ------------------------------------------------------------------
    @property
    def records_processed(self) -> int:
        return self._records_processed.value

    @property
    def outputs_produced(self) -> int:
        return self._outputs_produced.value

    @property
    def records_pending(self) -> int:
        return self._records_pending.value

    @property
    def evaluations(self) -> int:
        return self._evaluations.value

    @property
    def input_increments(self) -> int:
        return self._input_increments.value

    @property
    def failed_map_attempts(self) -> int:
        return self._failed_map_attempts.value

    @property
    def splits_added(self) -> int:
        return len(self._added_split_ids)

    @property
    def splits_completed(self) -> int:
        return len(self.completed_maps)

    @property
    def splits_pending(self) -> int:
        return self.splits_added - self.splits_completed

    @property
    def maps_done(self) -> bool:
        return self.pending_maps.empty and not self.running_maps

    @property
    def ready_for_reduce(self) -> bool:
        """Reduce may start only after end-of-input AND all maps finished
        (paper §III-A); map-only jobs never enter a reduce phase."""
        return (
            self.conf.num_reduce_tasks > 0
            and self.input_complete
            and self.maps_done
            and self.reduce_task is None
        )

    @property
    def finished(self) -> bool:
        return self.state in (JobState.SUCCEEDED, JobState.KILLED)

    def progress(self) -> JobProgress:
        return JobProgress(
            job_id=self.job_id,
            total_splits_known=self.total_splits_known,
            splits_added=self.splits_added,
            splits_completed=self.splits_completed,
            splits_pending=self.splits_pending,
            records_processed=self.records_processed,
            outputs_produced=self.outputs_produced,
            records_pending=self.records_pending,
        )

    def to_result(self) -> JobResult:
        if self.finish_time is None:
            raise JobError(f"job {self.job_id} has not finished")
        reduce_outputs = (
            self.reduce_task.outputs_produced if self.reduce_task is not None else 0
        )
        output_data = (
            self.reduce_task.output_data if self.reduce_task is not None else None
        )
        return JobResult(
            job_id=self.job_id,
            name=self.conf.name,
            state=self.state,
            submit_time=self.submit_time,
            finish_time=self.finish_time,
            splits_total=self.total_splits_known,
            splits_processed=self.splits_completed,
            records_processed=self.records_processed,
            map_outputs_produced=self.outputs_produced,
            outputs_produced=reduce_outputs,
            output_data=output_data,
            evaluations=self.evaluations,
            input_increments=self.input_increments,
            failed_map_attempts=self.failed_map_attempts,
            metrics_snapshot=self.metrics.snapshot(),
            approx=self.approx,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id}, {self.state.value}, "
            f"maps={self.splits_completed}/{self.splits_added}, "
            f"eoi={self.input_complete})"
        )
