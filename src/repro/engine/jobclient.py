"""The JobClient: client-side job submission and the dynamic-job loop.

Per the paper's design (§IV), the Input Provider is a *client-side*
entity: a buggy provider can then only hurt its own job, never the
JobTracker. The JobClient:

1. computes the input splits for the job's input file,
2. for a dynamic job, instantiates the provider, obtains the initial
   split set (GrabLimit-capped), and submits the job,
3. at every EvaluationInterval retrieves job status and cluster load from
   the JobTracker, applies the policy's WorkThreshold gate, invokes the
   provider, and relays its response ("add input" / "input complete") to
   the JobTracker.

Liveness note: the WorkThreshold gate is bypassed whenever the job has no
in-flight work left — otherwise a conservative policy (threshold 15%)
could wait forever on a job whose small grabbed batch finished without
reaching the threshold. The paper does not spell this case out; any
working implementation needs the same escape hatch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.core.input_provider import (
    InputProvider,
    ProviderRegistry,
    ResponseKind,
    default_providers,
)
from repro.core.policy import Policy, PolicyRegistry, paper_policies
from repro.dfs.dfs import DistributedFileSystem
from repro.engine.job import Job, JobResult
from repro.engine.jobconf import JobConf
from repro.engine.jobtracker import JobTracker
from repro.errors import JobConfError, JobError
from repro.obs import profile as _profile
from repro.obs.trace import policy_knobs
from repro.sim.random_source import RandomSource
from repro.sim.simulator import PeriodicTask, Simulator

CompletionCallback = Callable[[JobResult], None]


@dataclass
class DynamicJobHandle:
    """Client-side state for one dynamic job."""

    job: Job
    provider: InputProvider
    policy: Policy
    evaluation_task: PeriodicTask | None = None
    splits_completed_at_last_eval: int = 0
    observed_maps: int = 0
    """How many completed map tasks have been fed to the provider's
    ``observe_split`` hook (an index into ``job.completed_maps``)."""


class JobClient:
    """Submits jobs and drives Input Providers for dynamic ones."""

    def __init__(
        self,
        sim: Simulator,
        jobtracker: JobTracker,
        dfs: DistributedFileSystem,
        *,
        policies: PolicyRegistry | None = None,
        providers: ProviderRegistry | None = None,
        random_source: RandomSource | None = None,
    ) -> None:
        self._sim = sim
        self._jobtracker = jobtracker
        self._dfs = dfs
        self._policies = policies or paper_policies()
        self._providers = providers or default_providers()
        self._random = random_source or RandomSource(0)
        self._handles: dict[str, DynamicJobHandle] = {}
        # Per-client counter: keeps provider RNG streams deterministic for
        # a given cluster regardless of what ran earlier in the process.
        self._submissions = itertools.count(1)

    @property
    def policies(self) -> PolicyRegistry:
        return self._policies

    @property
    def providers(self) -> ProviderRegistry:
        return self._providers

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, conf: JobConf, on_complete: CompletionCallback | None = None) -> Job:
        """Submit a job; returns the live Job object immediately."""
        splits = self._dfs.open_splits(conf.input_path)
        if not splits:
            raise JobConfError(f"job {conf.name!r}: input {conf.input_path} is empty")
        if not conf.is_dynamic:
            return self._jobtracker.submit_job(
                conf,
                splits,
                input_complete=True,
                total_splits_known=len(splits),
                listener=self._completion_listener(on_complete),
            )
        return self._submit_dynamic(conf, splits, on_complete)

    def _submit_dynamic(
        self,
        conf: JobConf,
        splits: list,
        on_complete: CompletionCallback | None,
    ) -> Job:
        conf.validate_dynamic()
        policy = self._policies.get(conf.policy_name)  # type: ignore[arg-type]
        provider = self._providers.create(conf.input_provider_name)  # type: ignore[arg-type]
        rng = self._random.stream(f"provider:{conf.name}:{next(self._submissions)}")
        provider.initialize(splits, conf, policy, rng)

        cluster = self._jobtracker.cluster_status()
        # Span exactly the provider invocation (not the gate around it),
        # so profile.provider.evaluate call counts match the trace's
        # provider_evaluation events one-for-one.
        with _profile.profiled_span(_profile.PHASE_EVALUATE):
            initial, complete = provider.initial_input(cluster)
        job = self._jobtracker.submit_job(
            conf,
            initial,
            input_complete=complete,
            total_splits_known=len(splits),
            listener=self._completion_listener(on_complete),
        )
        trace = self._jobtracker.trace
        if trace is not None:
            trace.provider_evaluation(
                self._sim.now,
                job_id=job.job_id,
                phase="initial",
                policy=policy.name,
                knobs=policy_knobs(policy),
                progress=None,
                cluster=cluster,
                response_kind="END_OF_INPUT" if complete else "INPUT_AVAILABLE",
                splits=len(initial),
                pruned=getattr(provider, "splits_pruned", 0),
                ci=getattr(provider, "ci_state", None),
            )
        # The handle is kept even when the initial grab already completed
        # the input: the completion listener still needs the provider to
        # feed it the finished maps and collect its final summary.
        handle = DynamicJobHandle(job=job, provider=provider, policy=policy)
        if not complete:
            handle.evaluation_task = PeriodicTask(
                self._sim,
                policy.evaluation_interval,
                lambda: self._evaluate(handle),
                label=f"evaluate:{job.job_id}",
            )
        self._handles[job.job_id] = handle
        return job

    def _completion_listener(self, on_complete: CompletionCallback | None):
        def listener(job: Job) -> None:
            handle = self._handles.pop(job.job_id, None)
            if handle is not None:
                if handle.evaluation_task is not None:
                    handle.evaluation_task.cancel()
                # Maps that landed after the last evaluation (in-flight
                # work at END_OF_INPUT) still belong in the estimate.
                self._feed_completed(handle)
                summary = getattr(handle.provider, "approx_summary", None)
                if summary is not None:
                    job.approx = summary()
            if on_complete is not None:
                on_complete(job.to_result())

        return listener

    def _feed_completed(self, handle: DynamicJobHandle) -> None:
        """Feed newly completed map tasks to the provider's observe hook.

        ``output_data`` is the task's materialized map outputs when rows
        were really executed, or None in profile-only simulation — the
        provider decides what it can estimate from which.
        """
        completed = handle.job.completed_maps
        for task in completed[handle.observed_maps:]:
            handle.provider.observe_split(
                task.split.split_id,
                records=task.records_processed,
                outputs=task.outputs_produced,
                rows=task.output_data,
            )
        handle.observed_maps = len(completed)

    # ------------------------------------------------------------------
    # The evaluation loop
    # ------------------------------------------------------------------
    def _evaluate(self, handle: DynamicJobHandle) -> None:
        job = handle.job
        if job.finished or job.input_complete:
            if handle.evaluation_task is not None:
                handle.evaluation_task.cancel()
            return

        if not self._work_threshold_met(handle):
            return

        job.record_evaluation()
        handle.splits_completed_at_last_eval = job.splits_completed
        self._feed_completed(handle)
        progress = job.progress()
        cluster = self._jobtracker.cluster_status()
        with _profile.profiled_span(_profile.PHASE_EVALUATE):
            response = handle.provider.evaluate(progress, cluster)
        trace = self._jobtracker.trace
        if trace is not None:
            trace.provider_evaluation(
                self._sim.now,
                job_id=job.job_id,
                phase="evaluate",
                policy=handle.policy.name,
                knobs=policy_knobs(handle.policy),
                progress=progress,
                cluster=cluster,
                response_kind=response.kind.name,
                splits=len(response.splits),
                pruned=getattr(handle.provider, "splits_pruned", 0),
                ci=getattr(handle.provider, "ci_state", None),
            )
        if response.kind is ResponseKind.END_OF_INPUT:
            if handle.evaluation_task is not None:
                handle.evaluation_task.cancel()
            self._jobtracker.complete_input(job.job_id)
        elif response.kind is ResponseKind.INPUT_AVAILABLE:
            self._jobtracker.add_input(job.job_id, list(response.splits))
        elif response.kind is not ResponseKind.NO_INPUT_AVAILABLE:
            raise JobError(f"provider returned unknown response {response.kind}")

    def _work_threshold_met(self, handle: DynamicJobHandle) -> bool:
        """The WorkThreshold gate, with the all-work-done escape hatch.

        The threshold percentage is applied to the splits the job has
        *added so far* (its current input), not the full input file. The
        paper's wording admits either reading; against the full input a
        conservative job's threshold (e.g. 15% of 800 partitions) could
        never be reached and every policy would degenerate into
        serialized all-done waves — which contradicts the measured
        Figure 6 ordering (LA best). See DESIGN.md §5.
        """
        job = handle.job
        if job.maps_done:
            return True
        threshold = handle.policy.work_threshold_splits(job.splits_added)
        newly_completed = job.splits_completed - handle.splits_completed_at_last_eval
        return newly_completed >= threshold
