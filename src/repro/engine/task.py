"""Task state: map tasks and reduce tasks."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.dfs.split import InputSplit
from repro.errors import JobError


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"


@dataclass
class MapTask:
    """One map task attempt: processes exactly one input split.

    Hadoop retries failed tasks as fresh attempts; :meth:`retry` mints
    the next attempt for the same split.
    """

    task_id: str
    job_id: str
    split: InputSplit
    state: TaskState = TaskState.PENDING
    node_id: str | None = None
    local: bool | None = None
    start_time: float | None = None
    finish_time: float | None = None
    records_processed: int = 0
    outputs_produced: int = 0
    output_data: list[tuple[Any, Any]] | None = None
    attempt: int = 1

    def mark_running(self, node_id: str, local: bool, time: float) -> None:
        if self.state is not TaskState.PENDING:
            raise JobError(f"map task {self.task_id} started twice (state={self.state})")
        self.state = TaskState.RUNNING
        self.node_id = node_id
        self.local = local
        self.start_time = time

    def mark_succeeded(
        self,
        time: float,
        *,
        records_processed: int,
        outputs_produced: int,
        output_data: list[tuple[Any, Any]] | None = None,
    ) -> None:
        if self.state is not TaskState.RUNNING:
            raise JobError(
                f"map task {self.task_id} finished without running (state={self.state})"
            )
        self.state = TaskState.SUCCEEDED
        self.finish_time = time
        self.records_processed = records_processed
        self.outputs_produced = outputs_produced
        self.output_data = output_data

    def mark_failed(self, time: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise JobError(
                f"map task {self.task_id} failed without running (state={self.state})"
            )
        self.state = TaskState.FAILED
        self.finish_time = time

    def retry(self) -> "MapTask":
        """The next attempt for this task's split."""
        if self.state is not TaskState.FAILED:
            raise JobError(
                f"map task {self.task_id} cannot retry from state {self.state}"
            )
        base = self.task_id.rsplit("#", 1)[0]
        return MapTask(
            task_id=f"{base}#{self.attempt + 1}",
            job_id=self.job_id,
            split=self.split,
            attempt=self.attempt + 1,
        )

    @property
    def duration(self) -> float:
        if self.start_time is None or self.finish_time is None:
            raise JobError(f"map task {self.task_id} has not completed")
        return self.finish_time - self.start_time


@dataclass
class ReduceTask:
    """The reduce task (sampling jobs use exactly one)."""

    task_id: str
    job_id: str
    state: TaskState = TaskState.PENDING
    node_id: str | None = None
    start_time: float | None = None
    finish_time: float | None = None
    input_records: int = 0
    outputs_produced: int = 0
    output_data: list[tuple[Any, Any]] | None = None

    def mark_running(self, node_id: str, time: float) -> None:
        if self.state is not TaskState.PENDING:
            raise JobError(
                f"reduce task {self.task_id} started twice (state={self.state})"
            )
        self.state = TaskState.RUNNING
        self.node_id = node_id
        self.start_time = time

    def mark_succeeded(
        self,
        time: float,
        *,
        input_records: int,
        outputs_produced: int,
        output_data: list[tuple[Any, Any]] | None = None,
    ) -> None:
        if self.state is not TaskState.RUNNING:
            raise JobError(
                f"reduce task {self.task_id} finished without running (state={self.state})"
            )
        self.state = TaskState.SUCCEEDED
        self.finish_time = time
        self.input_records = input_records
        self.outputs_produced = outputs_produced
        self.output_data = output_data


@dataclass
class PendingTaskQueue:
    """Pending map tasks with O(1) local-task lookup.

    Maintains FIFO order overall and a per-node index keyed by the node
    that stores each task's split. Entries are removed lazily: a task may
    still sit in the per-node lists after being claimed, so consumers
    always re-check ``state`` when popping.
    """

    _fifo: list[MapTask] = field(default_factory=list)
    _by_node: dict[str, list[MapTask]] = field(default_factory=dict)
    _fifo_head: int = 0
    _claimed: set = field(default_factory=set)

    def add(self, task: MapTask) -> None:
        self._fifo.append(task)
        # Indexed under every replica's node: the task is local anywhere
        # a copy of its split lives.
        for node_id in {replica.node_id for replica in task.split.replicas}:
            self._by_node.setdefault(node_id, []).append(task)

    def __len__(self) -> int:
        return self._live_count()

    def _live_count(self) -> int:
        return sum(
            1
            for task in self._fifo[self._fifo_head:]
            if task.task_id not in self._claimed
        )

    @property
    def empty(self) -> bool:
        self._compact()
        return self._fifo_head >= len(self._fifo)

    def _compact(self) -> None:
        while self._fifo_head < len(self._fifo) and (
            self._fifo[self._fifo_head].task_id in self._claimed
        ):
            self._fifo_head += 1

    def pop_local(self, node_id: str) -> MapTask | None:
        """Claim the oldest pending task whose split lives on ``node_id``."""
        queue = self._by_node.get(node_id)
        while queue:
            task = queue[0]
            if task.task_id in self._claimed:
                queue.pop(0)
                continue
            queue.pop(0)
            self._claimed.add(task.task_id)
            return task
        return None

    def pop_any(self) -> MapTask | None:
        """Claim the oldest pending task regardless of locality."""
        self._compact()
        if self._fifo_head >= len(self._fifo):
            return None
        task = self._fifo[self._fifo_head]
        self._fifo_head += 1
        self._claimed.add(task.task_id)
        return task

    def has_local(self, node_id: str) -> bool:
        queue = self._by_node.get(node_id)
        if not queue:
            return False
        # Drop stale heads so the check is accurate.
        while queue and queue[0].task_id in self._claimed:
            queue.pop(0)
        return bool(queue)
