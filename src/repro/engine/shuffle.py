"""Shuffle: grouping map outputs by key for the reduce phase.

In real Hadoop the shuffle partitions, transfers, merges and sorts map
output. Here the data-volume cost of that is charged by the cost model
(:meth:`repro.cluster.costmodel.CostModel.reduce_task_duration`); this
module implements the *semantics* — grouping all values of each
intermediate key — used whenever map output is actually materialized.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs import profile as _profile


def group_outputs(
    map_outputs: Iterable[list[tuple[Any, Any]]]
) -> list[tuple[Any, list]]:
    """Merge per-task output lists into sorted ``(key, [values])`` groups.

    Keys are ordered by their string form, which matches Hadoop's sorted
    reduce input for string keys and gives a deterministic order for any
    key type. Within a key, values keep map-task order (task lists are
    consumed in the order given).
    """
    with _profile.profiled_span(_profile.PHASE_SHUFFLE):
        grouped: dict[Any, list] = {}
        for task_output in map_outputs:
            for key, value in task_output:
                grouped.setdefault(key, []).append(value)
        return sorted(grouped.items(), key=lambda item: str(item[0]))


def partition_for_key(key: Any, num_partitions: int) -> int:
    """Hadoop's default HashPartitioner: ``hash(key) mod partitions``."""
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    return hash(key) % num_partitions
