"""Failure injection for the simulated cluster.

Hadoop re-executes failed task attempts and gives up on a job once any
single task has failed ``mapred.map.max.attempts`` (default 4) times.
The simulator reproduces that behaviour so the dynamic-job machinery can
be exercised under failures: a failed map's split goes back into the
job's pending queue as a fresh attempt, counters never double-count, and
an Input Provider sees the split as *pending* throughout.

``FailureInjector`` decides which attempts fail. The default model is
Bernoulli per attempt, optionally restricted to a set of "flaky" nodes;
subclass and override :meth:`should_fail_map` for bespoke scenarios
(e.g. deterministic "fail the first attempt of every task").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.task import MapTask
from repro.errors import ClusterConfigError

DEFAULT_MAX_ATTEMPTS = 4
"""Attempts per map task before the job is killed (Hadoop's default)."""


@dataclass(frozen=True)
class FailureConfig:
    """Declarative failure-injection parameters for an experiment cell.

    A :class:`FailureInjector` carries live RNG state, so it cannot ride
    inside a sweep grid; this config can — it is hashable, picklable,
    and has a stable ``repr``, which is exactly what the sweep result
    cache keys on. Two sweeps differing only in failure parameters must
    never collide on cached cells, so the config is part of every
    sweep-point key (and its defaults are folded into the code
    fingerprint).
    """

    map_failure_probability: float = 0.0
    flaky_nodes: tuple[str, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.map_failure_probability <= 1.0:
            raise ClusterConfigError(
                "failure probability must be in [0, 1], "
                f"got {self.map_failure_probability}"
            )
        if self.flaky_nodes is not None and not isinstance(self.flaky_nodes, tuple):
            raise ClusterConfigError(
                f"flaky_nodes must be a tuple or None, got {self.flaky_nodes!r}"
            )

    @property
    def enabled(self) -> bool:
        return self.map_failure_probability > 0.0

    def build(self) -> "FailureInjector | None":
        """A fresh injector (fresh RNG) for one cluster, or None when
        the config injects nothing."""
        if not self.enabled:
            return None
        return FailureInjector(
            self.map_failure_probability,
            flaky_nodes=set(self.flaky_nodes) if self.flaky_nodes is not None else None,
            seed=self.seed,
        )


class FailureInjector:
    """Decides whether a given map attempt fails at completion time."""

    def __init__(
        self,
        map_failure_probability: float = 0.0,
        *,
        flaky_nodes: set[str] | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= map_failure_probability <= 1.0:
            raise ClusterConfigError(
                f"failure probability must be in [0, 1], got {map_failure_probability}"
            )
        self.map_failure_probability = map_failure_probability
        self.flaky_nodes = flaky_nodes
        self._rng = random.Random(seed)
        self.injected_failures = 0

    def should_fail_map(self, task: MapTask, node_id: str) -> bool:
        """Called once when the attempt would otherwise complete."""
        if self.map_failure_probability <= 0.0:
            return False
        if self.flaky_nodes is not None and node_id not in self.flaky_nodes:
            return False
        if self._rng.random() < self.map_failure_probability:
            self.injected_failures += 1
            return True
        return False


class FailFirstAttempts(FailureInjector):
    """Deterministically fail the first ``n`` attempts of every task.

    ``n >= DEFAULT_MAX_ATTEMPTS`` therefore kills any job; smaller values
    force retries without killing. Useful in tests.
    """

    def __init__(self, attempts_to_fail: int) -> None:
        super().__init__(map_failure_probability=0.0)
        if attempts_to_fail < 0:
            raise ClusterConfigError("attempts_to_fail must be >= 0")
        self.attempts_to_fail = attempts_to_fail

    def should_fail_map(self, task: MapTask, node_id: str) -> bool:
        if task.attempt <= self.attempts_to_fail:
            self.injected_failures += 1
            return True
        return False
