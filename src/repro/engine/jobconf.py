"""JobConf: the primary interface for describing a job (paper §IV).

As in Hadoop, a JobConf is a bag of string configuration parameters; the
paper extends the parameter set with::

    dynamic.job             boolean flag, true for dynamic jobs
    dynamic.job.policy      name of the growth policy
    dynamic.input.provider  the InputProvider implementation to use

We keep the string-parameter surface (so the Hive layer can ``SET`` them
exactly as the paper describes) and add typed accessors plus direct
object fields for the Python callables a job needs (mapper/reducer
factories and — simulation substrate only — the per-split output profile
used when rows are not materialized).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.dfs.split import InputSplit
from repro.engine.mapreduce import Mapper, Reducer
from repro.errors import JobConfError

# Parameter names from the paper (§IV).
DYNAMIC_JOB = "dynamic.job"
DYNAMIC_JOB_POLICY = "dynamic.job.policy"
DYNAMIC_INPUT_PROVIDER = "dynamic.input.provider"

# Additional parameters used by the sampling implementation.
SAMPLE_SIZE = "sampling.size"
SAMPLING_PREDICATE = "sampling.predicate"
STATS_MODE = "sampling.stats.mode"

# Error-bounded aggregation (ROADMAP item 2): the accuracy provider
# stops when every group's CI half-width is within ERROR_PCT percent of
# its estimate at ERROR_CONFIDENCE percent confidence.
ERROR_PCT = "sampling.error.pct"
ERROR_CONFIDENCE = "sampling.error.confidence"
APPROX_AGGREGATE = "approx.aggregate"
APPROX_GROUP_BY = "approx.group.by"

#: How the stats-aware provider uses split statistics: ``off`` (exact
#: baseline behavior), ``prune`` (retire provably-empty splits up
#: front), ``rank`` (prune + order grabs by estimated matches), or
#: ``stratified`` (prune lazily at grab time — the grab stream over the
#: pool is identical to ``off``, so sampling is provably undisturbed).
STATS_MODES = ("off", "prune", "rank", "stratified")

# Hadoop job priority (§III-B motivates pairing low priority with a
# conservative policy). Same five levels as Hadoop's JobPriority.
JOB_PRIORITY = "mapred.job.priority"
PRIORITY_LEVELS = ("VERY_LOW", "LOW", "NORMAL", "HIGH", "VERY_HIGH")
DEFAULT_PRIORITY = "NORMAL"

_job_ids = itertools.count(1)


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no", ""):
        return False
    raise JobConfError(f"cannot interpret {text!r} as a boolean")


@dataclass
class JobConf:
    """Description of one MapReduce job.

    Parameters
    ----------
    name:
        Human-readable job name.
    input_path:
        DFS path of the input file.
    mapper_factory / reducer_factory:
        Zero-argument callables returning fresh Mapper/Reducer instances
        (one per task).
    num_reduce_tasks:
        The sampling job of the paper always uses 1.
    profile_outputs:
        Simulation hook: ``fn(split) -> int`` giving the number of map
        output records a task over ``split`` produces. Required to run a
        job on the simulated substrate with profile-only splits; ignored
        when real rows are available and executed.
    params:
        Hadoop-style string parameters, including the dynamic-job set.
    predicate:
        The compiled predicate object behind ``sampling.predicate``
        (which, string-only, carries just the name). Optional; the
        stats-aware provider needs the real tree to analyze splits.
    """

    name: str
    input_path: str
    mapper_factory: Callable[[], Mapper] | None = None
    reducer_factory: Callable[[], Reducer] | None = None
    num_reduce_tasks: int = 1
    profile_outputs: Callable[[InputSplit], int] | None = None
    params: dict[str, str] = field(default_factory=dict)
    user: str = "default"
    predicate: object | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfError("job name must be non-empty")
        if not self.input_path:
            raise JobConfError("input_path must be non-empty")
        if self.num_reduce_tasks < 0:
            raise JobConfError(
                f"num_reduce_tasks must be >= 0, got {self.num_reduce_tasks}"
            )

    # ------------------------------------------------------------------
    # String parameter access (Hadoop style)
    # ------------------------------------------------------------------
    def set(self, key: str, value: object) -> "JobConf":
        """Set a configuration parameter (stringified). Returns self for chaining."""
        self.params[key] = str(value)
        return self

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.params.get(key, default)

    def get_bool(self, key: str, default: bool = False) -> bool:
        raw = self.params.get(key)
        if raw is None:
            return default
        return _parse_bool(raw)

    def get_int(self, key: str, default: int | None = None) -> int | None:
        raw = self.params.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise JobConfError(f"parameter {key}={raw!r} is not an integer") from None

    def get_float(self, key: str, default: float | None = None) -> float | None:
        raw = self.params.get(key)
        if raw is None:
            return default
        try:
            value = float(raw)
        except ValueError:
            raise JobConfError(f"parameter {key}={raw!r} is not a number") from None
        if value != value or value in (float("inf"), float("-inf")):
            raise JobConfError(f"parameter {key}={raw!r} must be finite")
        return value

    # ------------------------------------------------------------------
    # Dynamic-job parameters (the paper's JobConf extension)
    # ------------------------------------------------------------------
    @property
    def is_dynamic(self) -> bool:
        return self.get_bool(DYNAMIC_JOB, default=False)

    @property
    def policy_name(self) -> str | None:
        return self.get(DYNAMIC_JOB_POLICY)

    @property
    def input_provider_name(self) -> str | None:
        return self.get(DYNAMIC_INPUT_PROVIDER)

    @property
    def sample_size(self) -> int | None:
        return self.get_int(SAMPLE_SIZE)

    @property
    def error_pct(self) -> float | None:
        """Relative error target in percent, e.g. 5.0 for WITHIN 5% ERROR."""
        value = self.get_float(ERROR_PCT)
        if value is not None and value <= 0:
            raise JobConfError(f"{ERROR_PCT} must be positive, got {value}")
        return value

    @property
    def error_confidence(self) -> float:
        """Confidence level in percent for the error target (default 95)."""
        value = self.get_float(ERROR_CONFIDENCE, 95.0)
        assert value is not None
        if not 50.0 < value < 100.0:
            raise JobConfError(
                f"{ERROR_CONFIDENCE} must be in (50, 100), got {value}"
            )
        return value

    @property
    def stats_mode(self) -> str:
        value = self.get(STATS_MODE, "off") or "off"
        if value not in STATS_MODES:
            raise JobConfError(
                f"invalid {STATS_MODE}={value!r}; one of {STATS_MODES}"
            )
        return value

    @property
    def priority(self) -> str:
        value = self.get(JOB_PRIORITY, DEFAULT_PRIORITY)
        if value not in PRIORITY_LEVELS:
            raise JobConfError(
                f"invalid {JOB_PRIORITY}={value!r}; one of {PRIORITY_LEVELS}"
            )
        return value

    @property
    def priority_rank(self) -> int:
        """Numeric priority: higher runs first (VERY_HIGH=4 .. VERY_LOW=0)."""
        return PRIORITY_LEVELS.index(self.priority)

    def validate_dynamic(self) -> None:
        """Check that a dynamic job names its policy and provider."""
        if not self.is_dynamic:
            return
        if not self.policy_name:
            raise JobConfError(
                f"dynamic job {self.name!r} must set {DYNAMIC_JOB_POLICY}"
            )
        if not self.input_provider_name:
            raise JobConfError(
                f"dynamic job {self.name!r} must set {DYNAMIC_INPUT_PROVIDER}"
            )

    def copy(self) -> "JobConf":
        """A deep-enough copy: params dict is cloned, factories shared."""
        return JobConf(
            name=self.name,
            input_path=self.input_path,
            mapper_factory=self.mapper_factory,
            reducer_factory=self.reducer_factory,
            num_reduce_tasks=self.num_reduce_tasks,
            profile_outputs=self.profile_outputs,
            params=dict(self.params),
            user=self.user,
            predicate=self.predicate,
        )


def next_job_id() -> str:
    """Globally unique job id, Hadoop style."""
    return f"job_{next(_job_ids):06d}"
