"""JobHistory: a structured event log of everything the JobTracker does.

Hadoop writes per-job history files that tools like the JobTracker web
UI and Rumen consume; this is the simulator's equivalent. When a
:class:`JobHistory` is attached to the JobTracker, every lifecycle
transition is recorded with its simulated timestamp, giving tests and
analyses an audit trail of *how* an execution unfolded (wave structure,
input increments, retries) rather than just its end state.

Event kinds::

    job_submitted      job_activated     input_added     input_complete
    map_started        map_finished      map_failed
    reduce_started     reduce_finished
    job_succeeded      job_killed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class HistoryEvent:
    """One recorded lifecycle transition."""

    time: float
    kind: str
    job_id: str
    task_id: str | None = None
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        task = f" {self.task_id}" if self.task_id else ""
        extra = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.3f}] {self.kind:15s} {self.job_id}{task}{extra}"


class JobHistory:
    """Append-only event log with per-job query helpers."""

    def __init__(self, *, capacity: int | None = None) -> None:
        """``capacity`` bounds memory for long workload runs: when set,
        the oldest events are dropped once the log exceeds it."""
        self._events: list[HistoryEvent] = []
        self._capacity = capacity
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # Recording (called by the JobTracker)
    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: str,
        job_id: str,
        *,
        task_id: str | None = None,
        **detail,
    ) -> None:
        self._events.append(
            HistoryEvent(
                time=time, kind=kind, job_id=job_id, task_id=task_id, detail=detail
            )
        )
        if self._capacity is not None and len(self._events) > self._capacity:
            overflow = len(self._events) - self._capacity
            del self._events[:overflow]
            self.dropped_events += overflow

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self._events)

    def events(
        self, *, job_id: str | None = None, kind: str | None = None
    ) -> list[HistoryEvent]:
        return [
            event
            for event in self._events
            if (job_id is None or event.job_id == job_id)
            and (kind is None or event.kind == kind)
        ]

    def kinds(self, job_id: str) -> list[str]:
        """The ordered sequence of event kinds for one job."""
        return [event.kind for event in self._events if event.job_id == job_id]

    def input_increment_sizes(self, job_id: str) -> list[int]:
        """How many splits each ``input_added`` event carried."""
        return [
            event.detail.get("splits", 0)
            for event in self.events(job_id=job_id, kind="input_added")
        ]

    def map_concurrency_timeline(self, job_id: str) -> list[tuple[float, int]]:
        """(time, running-map-count) steps for one job — the wave shape."""
        timeline = []
        running = 0
        for event in self._events:
            if event.job_id != job_id:
                continue
            if event.kind == "map_started":
                running += 1
            elif event.kind in ("map_finished", "map_failed"):
                running -= 1
            else:
                continue
            timeline.append((event.time, running))
        return timeline

    def render(self, job_id: str | None = None, limit: int = 50) -> str:
        """Human-readable tail of the log."""
        selected = self.events(job_id=job_id)[-limit:]
        return "\n".join(str(event) for event in selected)
