"""TaskTrackers: per-node task execution.

A TaskTracker launches a task on its node, charges the cost model for a
duration based on input volume, locality and current contention, and
reports completion back to the JobTracker. When the split's rows are
materialized and the job carries a real mapper, the user code is actually
executed (so the simulated substrate produces real samples on small
data); otherwise the split's profile supplies the output count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.costmodel import CostModel
from repro.cluster.node import Node, RunningTask
from repro.cluster.topology import ClusterTopology
from repro.engine.job import Job
from repro.engine.mapreduce import ReduceContext
from repro.engine.shuffle import group_outputs
from repro.engine.task import MapTask, ReduceTask
from repro.errors import JobError
from repro.scan.engine import ScanOptions, run_map_task
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.jobtracker import JobTracker


class TaskTracker:
    """Executes tasks on one node of the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        topology: ClusterTopology,
        cost_model: CostModel,
        jobtracker: "JobTracker",
        failure_injector=None,
        straggler_model=None,
    ) -> None:
        self._sim = sim
        self.node = node
        self._topology = topology
        self._cost = cost_model
        self._jobtracker = jobtracker
        self._failures = failure_injector
        self._stragglers = straggler_model

    def _jitter(self, duration: float, overhead: float) -> float:
        """Apply straggler noise to a task's data-path time (not overhead)."""
        if self._stragglers is None:
            return duration
        return overhead + (duration - overhead) * self._stragglers.multiplier()

    # ------------------------------------------------------------------
    # Map tasks
    # ------------------------------------------------------------------
    def launch_map(self, job: Job, task: MapTask) -> None:
        split = task.split
        # Read from the replica on this node when one exists; remote
        # reads go to the primary replica.
        replica = split.replica_on(self.node.node_id)
        local = replica is not None
        source = replica if replica is not None else split.location
        storage_node = self._topology.node(source.node_id)
        disk_id = source.disk_id

        # The reader occupies a slot here but consumes bandwidth on the
        # disk that stores the split (possibly on another node).
        storage_node.add_disk_reader(disk_id)
        readers = storage_node.disk_readers(disk_id)
        cpu_contention = max(
            1.0, (self.node.running_map_tasks + 1) / self.node.spec.cores
        )
        duration = self._jitter(
            self._cost.map_task_duration(
                split_bytes=split.num_bytes,
                split_records=split.num_records,
                local=local,
                disk_readers=readers,
                cpu_contention=cpu_contention,
            ),
            self._cost.map_task_overhead,
        )
        read_rate = split.num_bytes / duration if duration > 0 else 0.0

        task.mark_running(self.node.node_id, local, self._sim.now)
        self.node.start_task(
            RunningTask(
                attempt_id=task.task_id,
                kind="map",
                disk_id=disk_id if local else None,
                read_rate_bps=read_rate,
                cpu_fraction=1.0,
                start_time=self._sim.now,
            )
        )
        if local:
            self.node.local_map_tasks += 1
        else:
            self.node.remote_map_tasks += 1
        self._sim.schedule(
            duration,
            self._finish_map,
            job,
            task,
            storage_node,
            disk_id,
            label=f"map-finish:{task.task_id}",
        )

    def _finish_map(
        self, job: Job, task: MapTask, storage_node: Node, disk_id: int
    ) -> None:
        self.node.finish_task(task.task_id)
        storage_node.remove_disk_reader(disk_id)
        if self._failures is not None and self._failures.should_fail_map(
            task, self.node.node_id
        ):
            # The failed attempt consumed its slot and disk time but
            # produces nothing; the JobTracker decides retry vs kill.
            task.mark_failed(self._sim.now)
            self._jobtracker.on_map_failed(job, task)
            return
        records, outputs, output_data = self._execute_map(job, task)
        task.mark_succeeded(
            self._sim.now,
            records_processed=records,
            outputs_produced=outputs,
            output_data=output_data,
        )
        self._jobtracker.on_map_complete(job, task, local=bool(task.local))

    def _execute_map(
        self, job: Job, task: MapTask
    ) -> tuple[int, int, list[tuple[Any, Any]] | None]:
        """Run the real mapper when possible, else consult the profile."""
        split = task.split
        conf = job.conf
        if split.materialized and conf.mapper_factory is not None:
            trace = self._jobtracker.trace
            span_sink = None
            if trace is not None:
                now = self._sim.now

                def span_sink(span) -> None:
                    trace.scan_span(
                        now,
                        job_id=job.job_id,
                        task_id=task.task_id,
                        split_id=span.split_id,
                        mode=span.mode,
                        batch_size=span.batch_size,
                        rows=span.rows,
                        outputs=span.outputs,
                        elapsed_s=span.elapsed_s,
                    )

            context = run_map_task(
                conf, split, ScanOptions().with_conf(conf), span_sink=span_sink
            )
            return context.records_read, context.outputs_produced, context.outputs
        if conf.profile_outputs is None:
            raise JobError(
                f"job {job.job_id}: split {split.split_id} has no materialized "
                "rows and the JobConf defines no profile_outputs function"
            )
        outputs = conf.profile_outputs(split)
        if outputs < 0:
            raise JobError(
                f"job {job.job_id}: profile_outputs returned {outputs} (< 0)"
            )
        return split.num_records, outputs, None

    # ------------------------------------------------------------------
    # Reduce tasks
    # ------------------------------------------------------------------
    def launch_reduce(self, job: Job, task: ReduceTask) -> None:
        shuffle_records = job.outputs_produced
        duration = self._jitter(
            self._cost.reduce_task_duration(shuffle_records=shuffle_records),
            self._cost.reduce_task_overhead,
        )
        task.mark_running(self.node.node_id, self._sim.now)
        shuffle_bytes = shuffle_records * self._cost.output_record_bytes
        self.node.start_task(
            RunningTask(
                attempt_id=task.task_id,
                kind="reduce",
                disk_id=None,
                read_rate_bps=shuffle_bytes / duration if duration > 0 else 0.0,
                cpu_fraction=1.0,
                start_time=self._sim.now,
            )
        )
        self._sim.schedule(
            duration, self._finish_reduce, job, task, label=f"reduce-finish:{task.task_id}"
        )

    def _finish_reduce(self, job: Job, task: ReduceTask) -> None:
        outputs, output_data = self._execute_reduce(job)
        self.node.finish_task(task.task_id)
        task.mark_succeeded(
            self._sim.now,
            input_records=job.outputs_produced,
            outputs_produced=outputs,
            output_data=output_data,
        )
        self._jobtracker.on_reduce_complete(job, task)

    def _execute_reduce(self, job: Job) -> tuple[int, list[tuple[Any, Any]] | None]:
        conf = job.conf
        map_outputs = [t.output_data for t in job.completed_maps]
        if conf.reducer_factory is not None and all(
            data is not None for data in map_outputs
        ):
            context = ReduceContext()
            reducer = conf.reducer_factory()
            reducer.run(group_outputs(map_outputs), context)  # type: ignore[arg-type]
            return len(context.outputs), context.outputs
        reduce_fn: Callable[[int], int] = conf_profile_reduce(conf)
        outputs = reduce_fn(job.outputs_produced)
        return outputs, None


def conf_profile_reduce(conf) -> Callable[[int], int]:
    """The profile-mode reduce output function for a JobConf.

    Sampling jobs cap output at the sample size k (Algorithm 2); plain
    jobs pass map output through unchanged.
    """
    k = conf.sample_size
    if k is not None:
        return lambda total: min(total, k)
    return lambda total: total
