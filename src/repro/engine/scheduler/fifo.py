"""Hadoop's default FIFO scheduler.

Slots are offered to jobs in priority order and, within a priority, in
submission order — Hadoop 0.20's JobQueueTaskScheduler. The chosen job
takes the slot, preferring a split stored on the offering node and
otherwise accepting a non-local one immediately (no delay scheduling),
which is why the paper measures relatively low locality (57%) but high
slot occupancy (44%) for it.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.engine.job import Job
from repro.engine.scheduler.base import TaskScheduler
from repro.engine.task import MapTask


class FifoScheduler(TaskScheduler):
    name = "fifo"

    def choose_map_task(
        self, node: Node, jobs: list[Job], now: float
    ) -> MapTask | None:
        ordered = sorted(
            jobs, key=lambda job: (-job.conf.priority_rank, job.submit_time)
        )
        for job in ordered:
            if job.pending_maps.empty:
                continue
            task = job.pending_maps.pop_local(node.node_id)
            if task is None:
                task = job.pending_maps.pop_any()
            if task is not None:
                return task
        return None
