"""Scheduler interface.

In Hadoop, "the task of assigning empty slots to the pending tasks is
handled by the TaskScheduler" (paper §V-F). Here the JobTracker's
dispatch loop offers each free map slot to the scheduler, which picks a
pending map task (or declines, e.g. while delay-scheduling for
locality).
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.engine.job import Job
from repro.engine.task import MapTask


class TaskScheduler:
    """Chooses which pending map task gets a free slot on a node."""

    name = "base"

    def choose_map_task(
        self, node: Node, jobs: list[Job], now: float
    ) -> MapTask | None:
        """Claim and return a pending map task to run on ``node``.

        ``jobs`` are the schedulable jobs in submission order. Returning
        None leaves the slot empty for now (the JobTracker will re-offer
        it after a task completes or a retry timer fires).
        """
        raise NotImplementedError

    def retry_delay(self) -> float | None:
        """How long to wait before re-offering slots that were declined.

        None means "no time-based retry needed" (slots are only re-offered
        on state changes). Schedulers that decline for locality reasons
        return their wait quantum.
        """
        return None
