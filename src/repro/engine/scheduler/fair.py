"""The Fair Scheduler (Zaharia et al., developed at U.C. Berkeley and
Facebook), as used in the paper's §V-F scheduler-impact experiment.

Two behaviours matter for reproducing the paper's observations:

1. **Fair sharing** — free slots go to the job that is furthest below its
   equal share of the cluster (smallest running-task count, with FIFO
   tie-break), instead of strictly to the oldest job.
2. **Delay scheduling** — a job offered a slot on a node where it has no
   local data *declines* and waits up to ``locality_delay`` seconds for a
   slot on a node that stores one of its splits. This raises locality
   (paper: 88% vs FIFO's 57%) at the cost of leaving slots idle
   (occupancy 18% vs 44%), which is exactly the throughput trade-off the
   paper reports.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.engine.job import Job
from repro.engine.scheduler.base import TaskScheduler
from repro.engine.task import MapTask
from repro.errors import SchedulerError


class FairScheduler(TaskScheduler):
    name = "fair"

    def __init__(self, locality_delay: float = 8.0) -> None:
        if locality_delay < 0:
            raise SchedulerError(
                f"locality_delay must be >= 0, got {locality_delay}"
            )
        self.locality_delay = locality_delay

    def choose_map_task(
        self, node: Node, jobs: list[Job], now: float
    ) -> MapTask | None:
        candidates = [job for job in jobs if not job.pending_maps.empty]
        if not candidates:
            return None
        # Most-starved job first: fewest running maps relative to equal
        # shares (equal weights make the share constant, so the running
        # count alone orders jobs); submission order breaks ties.
        candidates.sort(key=lambda job: (len(job.running_maps), job.submit_time))
        job = candidates[0]
        task = job.pending_maps.pop_local(node.node_id)
        if task is not None:
            job.locality_wait_start = None
            return task
        # No local work on this node: delay scheduling. The slot is held
        # for the most-starved job rather than offered down the list —
        # this strictness is what produces the paper's Fair Scheduler
        # signature (high locality, low slot occupancy, lower overall
        # throughput; §V-F measured 88% locality at 18% occupancy).
        if job.locality_wait_start is None:
            job.locality_wait_start = now
            return None
        if now - job.locality_wait_start >= self.locality_delay:
            task = job.pending_maps.pop_any()
            if task is not None:
                job.locality_wait_start = None
                return task
        return None

    def retry_delay(self) -> float | None:
        # Declined slots must be re-offered so waits can expire.
        return max(0.5, self.locality_delay / 4.0)
