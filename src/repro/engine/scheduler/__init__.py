"""Task schedulers: FIFO (Hadoop default) and Fair (paper §V-F)."""

from repro.engine.scheduler.base import TaskScheduler
from repro.engine.scheduler.fair import FairScheduler
from repro.engine.scheduler.fifo import FifoScheduler

__all__ = ["FairScheduler", "FifoScheduler", "TaskScheduler"]
