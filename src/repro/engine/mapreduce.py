"""User-facing map/reduce interfaces.

Mirrors the classic Hadoop 0.20 contract:

    map(k1, v1)            -> list(k2, v2)
    reduce(k2, list(v2))   -> list(k3, v3)

Mappers and reducers are instantiated per task from factories held in the
JobConf, so task-local state (e.g. Algorithm 1's ``foundRecords`` counter)
is private to each task, exactly as in Hadoop.
"""

from __future__ import annotations

from typing import Any, Iterable


class MapContext:
    """Collects a map task's output and progress counters."""

    __slots__ = ("outputs", "records_read")

    def __init__(self) -> None:
        self.outputs: list[tuple[Any, Any]] = []
        self.records_read = 0

    def emit(self, key: Any, value: Any) -> None:
        self.outputs.append((key, value))

    @property
    def outputs_produced(self) -> int:
        return len(self.outputs)


class ReduceContext:
    """Collects a reduce task's final output."""

    __slots__ = ("outputs",)

    def __init__(self) -> None:
        self.outputs: list[tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        self.outputs.append((key, value))


class Mapper:
    """Base mapper. Subclasses override :meth:`map`.

    One instance is created per map task; :meth:`setup` / :meth:`cleanup`
    bracket the record loop as in Hadoop.

    The scan engine adds a columnar fast path: when a split is stored (or
    cached) column-major, the engine calls :meth:`run_batches` with
    :class:`~repro.scan.columnar.ColumnBatch` views instead of driving
    :meth:`run` row by row. Mappers that can scan whole batches override
    :meth:`run_batch`; the default re-synthesizes row dicts so any mapper
    stays correct under either layout.
    """

    def setup(self, context: MapContext) -> None:
        """Called once before the first record."""

    def map(self, key: Any, value: Any, context: MapContext) -> None:
        raise NotImplementedError

    def cleanup(self, context: MapContext) -> None:
        """Called once after the last record."""

    def prepare_scan(self, mode: str) -> None:
        """Scan-engine hook, called once before the record loop.

        ``mode`` is one of ``interpreted`` / ``compiled`` / ``batch``
        (see :mod:`repro.scan.engine`). Mappers that evaluate predicates
        swap in compiled matchers here; the default ignores it.
        """

    def scan_task_spec(self):
        """Process-executor hook: this mapper's work as a shippable spec.

        Mappers whose whole map phase is "match a predicate, emit (key,
        row) pairs, optionally capped" return a
        :class:`repro.scan.proc.ScanTaskSpec` so the runtime can run the
        scan in a worker process over an mmap dataset. The default
        (None) keeps the mapper on the in-process path — always correct,
        never parallel across processes.
        """
        return None

    def run(self, records: Iterable[tuple[Any, Any]], context: MapContext) -> None:
        """The task main loop (override for whole-split algorithms)."""
        self.setup(context)
        for key, value in records:
            context.records_read += 1
            self.map(key, value, context)
        self.cleanup(context)

    def run_batches(self, batches: Iterable, context: MapContext) -> None:
        """The batch-mode task main loop.

        ``batches`` yields :class:`~repro.scan.columnar.ColumnBatch`
        views in split order. A :meth:`run_batch` returning True stops
        the scan mid-split (the LIMIT short-circuit) — remaining batches
        are never materialized, so ``records_read`` counts only rows
        actually scanned.
        """
        self.setup(context)
        for batch in batches:
            if self.run_batch(batch, context):
                break
        self.cleanup(context)

    def run_batch(self, batch, context: MapContext) -> bool:
        """Process one columnar batch; return True to stop scanning.

        Default: per-row fallback over synthesized dicts, byte-identical
        to :meth:`run` on the same split.
        """
        for key, row in batch.iter_indexed_rows():
            context.records_read += 1
            self.map(key, row, context)
        return False


class Reducer:
    """Base reducer. Subclasses override :meth:`reduce`."""

    def setup(self, context: ReduceContext) -> None:
        """Called once before the first key group."""

    def reduce(self, key: Any, values: list, context: ReduceContext) -> None:
        raise NotImplementedError

    def cleanup(self, context: ReduceContext) -> None:
        """Called once after the last key group."""

    def run(
        self, groups: Iterable[tuple[Any, list]], context: ReduceContext
    ) -> None:
        self.setup(context)
        for key, values in groups:
            self.reduce(key, values, context)
        self.cleanup(context)


class IdentityMapper(Mapper):
    """Emits every input pair unchanged."""

    def map(self, key: Any, value: Any, context: MapContext) -> None:
        context.emit(key, value)


class IdentityReducer(Reducer):
    """Emits every (key, value) of each group unchanged."""

    def reduce(self, key: Any, values: list, context: ReduceContext) -> None:
        for value in values:
            context.emit(key, value)
