"""The MapReduce engine (Hadoop 0.20 analogue).

Two execution substrates share one job description
(:class:`~repro.engine.jobconf.JobConf`):

* :class:`~repro.engine.runtime.LocalRunner` executes map/reduce functions
  for real, in process, over materialized splits — including the full
  dynamic-job protocol run synchronously. It validates *what* is computed.
* The simulated cluster (:class:`~repro.engine.cluster_engine.SimulatedCluster`)
  executes jobs on the discrete-event cluster model — JobClient,
  JobTracker, TaskTrackers, FIFO/Fair schedulers — and validates *how
  long* execution takes and *which resources* it consumes.

The incremental-processing extension of the paper lives in
:mod:`repro.core`; this package provides the `dynamic job` hooks it plugs
into (JobClient evaluation loop, deferred reduce-phase start, JobTracker
"add input" message).
"""

from repro.engine.cluster_engine import SimulatedCluster
from repro.engine.job import Job, JobProgress, JobResult, JobState
from repro.engine.jobconf import JobConf
from repro.engine.mapreduce import Mapper, MapContext, Reducer, ReduceContext
from repro.engine.runtime import LocalRunner
from repro.engine.scheduler import FairScheduler, FifoScheduler, TaskScheduler
from repro.engine.task import MapTask, ReduceTask, TaskState

__all__ = [
    "FairScheduler",
    "FifoScheduler",
    "Job",
    "JobConf",
    "JobProgress",
    "JobResult",
    "JobState",
    "LocalRunner",
    "MapContext",
    "MapTask",
    "Mapper",
    "ReduceContext",
    "ReduceTask",
    "Reducer",
    "SimulatedCluster",
    "TaskScheduler",
    "TaskState",
]
