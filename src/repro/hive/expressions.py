"""Compiling WHERE expressions into predicates.

Two outputs matter:

* a fast ``matches(row)`` callable (wrapped as a
  :class:`~repro.data.predicates.Predicate`), used by the sampling map
  tasks; and
* a canonical predicate *name*. A simple ``column = literal`` equality
  compiles to :class:`~repro.data.predicates.ColumnCompare`, whose name
  (``l_quantity=51``) coincides with the marker-predicate names the data
  generator controls — which is what lets profile-mode simulation look up
  exact match counts for Hive-issued queries.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping

from repro.data.predicates import ColumnCompare, FunctionPredicate, Predicate
from repro.data.schema import Schema
from repro.errors import HiveAnalysisError
from repro.hive.ast import (
    Arithmetic,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
)

_COMPARE: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


def resolve_column(name: str, schema: Schema | None) -> str:
    """Map a query column reference onto a schema field name.

    Accepts exact (case-insensitive) field names and, for convenience,
    the unprefixed TPC-H style (``ORDERKEY`` for ``l_orderkey``).
    """
    if schema is None:
        return name.lower()
    lowered = name.lower()
    if lowered in schema:
        return lowered
    for field in schema.fields:
        bare = field.name.split("_", 1)[-1]
        if bare == lowered:
            return field.name
    raise HiveAnalysisError(
        f"unknown column {name!r}; table {schema.name} has "
        f"{', '.join(schema.field_names)}"
    )


def like_to_regex(pattern: str) -> re.Pattern:
    """SQL LIKE pattern (% and _) compiled to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _compile_value(expr: Expression, schema: Schema | None):
    """Compile an expression to ``fn(row) -> value``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Column):
        column = resolve_column(expr.name, schema)
        return lambda row: row[column]
    if isinstance(expr, Arithmetic):
        left = _compile_value(expr.left, schema)
        right = _compile_value(expr.right, schema)
        op = _ARITHMETIC[expr.op]

        def arithmetic(row: Mapping):
            b = right(row)
            if expr.op in ("/", "%") and b == 0:
                raise HiveAnalysisError(f"division by zero evaluating {expr}")
            return op(left(row), b)

        return arithmetic
    # Boolean sub-expressions used as values (rare but legal: WHERE (a AND b)).
    boolean = _compile_bool(expr, schema)
    return boolean


def _compile_bool(expr: Expression, schema: Schema | None):
    """Compile an expression to ``fn(row) -> bool``."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            value = expr.value
            return lambda row: value
        raise HiveAnalysisError(f"{expr} is not a boolean condition")
    if isinstance(expr, LogicalAnd):
        left = _compile_bool(expr.left, schema)
        right = _compile_bool(expr.right, schema)
        return lambda row: left(row) and right(row)
    if isinstance(expr, LogicalOr):
        left = _compile_bool(expr.left, schema)
        right = _compile_bool(expr.right, schema)
        return lambda row: left(row) or right(row)
    if isinstance(expr, LogicalNot):
        operand = _compile_bool(expr.operand, schema)
        return lambda row: not operand(row)
    if isinstance(expr, Comparison):
        left = _compile_value(expr.left, schema)
        right = _compile_value(expr.right, schema)
        op = _COMPARE[expr.op]
        return lambda row: op(left(row), right(row))
    if isinstance(expr, Between):
        operand = _compile_value(expr.operand, schema)
        low = _compile_value(expr.low, schema)
        high = _compile_value(expr.high, schema)
        if expr.negated:
            return lambda row: not (low(row) <= operand(row) <= high(row))
        return lambda row: low(row) <= operand(row) <= high(row)
    if isinstance(expr, InList):
        operand = _compile_value(expr.operand, schema)
        options = [_compile_value(o, schema) for o in expr.options]
        if expr.negated:
            return lambda row: operand(row) not in {o(row) for o in options}
        return lambda row: operand(row) in {o(row) for o in options}
    if isinstance(expr, Like):
        operand = _compile_value(expr.operand, schema)
        regex = like_to_regex(expr.pattern)
        if expr.negated:
            return lambda row: regex.match(str(operand(row))) is None
        return lambda row: regex.match(str(operand(row))) is not None
    if isinstance(expr, IsNull):
        operand = _compile_value(expr.operand, schema)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, Column):
        raise HiveAnalysisError(
            f"bare column {expr.name!r} is not a boolean condition"
        )
    raise HiveAnalysisError(f"cannot use {expr} as a condition")


def compile_predicate(expr: Expression, schema: Schema | None = None) -> Predicate:
    """Compile a WHERE expression into a Predicate.

    Simple ``column = literal`` equalities become
    :class:`~repro.data.predicates.ColumnCompare` so their names line up
    with the generator's controlled marker predicates; everything else
    becomes a :class:`~repro.data.predicates.FunctionPredicate` labeled
    with the SQL text.
    """
    simple = _as_simple_comparison(expr, schema)
    if simple is not None:
        return simple
    return FunctionPredicate(fn=_compile_bool(expr, schema), label=str(expr))


def _as_simple_comparison(
    expr: Expression, schema: Schema | None
) -> ColumnCompare | None:
    if not isinstance(expr, Comparison):
        return None
    column, literal = None, None
    op = expr.op
    if isinstance(expr.left, Column) and isinstance(expr.right, Literal):
        column, literal = expr.left, expr.right
    elif isinstance(expr.right, Column) and isinstance(expr.left, Literal):
        column, literal = expr.right, expr.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column is None or literal is None or literal.value is None:
        return None
    return ColumnCompare(resolve_column(column.name, schema), op, literal.value)
