"""Compiling WHERE expressions into predicates.

Two outputs matter:

* a fast ``matches(row)`` callable (wrapped as a
  :class:`~repro.data.predicates.Predicate`), used by the sampling map
  tasks; and
* a canonical predicate *name*. A simple ``column = literal`` equality
  compiles to :class:`~repro.data.predicates.ColumnCompare`, whose name
  (``l_quantity=51``) coincides with the marker-predicate names the data
  generator controls — which is what lets profile-mode simulation look up
  exact match counts for Hive-issued queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.data.predicates import ColumnCompare, FunctionPredicate, Predicate
from repro.data.schema import Schema
from repro.errors import HiveAnalysisError
from repro.hive.ast import (
    Arithmetic,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
)

def _null_safe(op: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    """Comparisons involving NULL evaluate false (SQL WHERE semantics)."""

    def compare(a: object, b: object) -> bool:
        if a is None or b is None:
            return False
        return op(a, b)

    return compare


_COMPARE: dict[str, Callable[[object, object], bool]] = {
    "=": _null_safe(lambda a, b: a == b),
    "!=": _null_safe(lambda a, b: a != b),
    "<": _null_safe(lambda a, b: a < b),
    "<=": _null_safe(lambda a, b: a <= b),
    ">": _null_safe(lambda a, b: a > b),
    ">=": _null_safe(lambda a, b: a >= b),
}

#: Python source for each comparison operator (used by the codegen path).
_COMPARE_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


def resolve_column(name: str, schema: Schema | None) -> str:
    """Map a query column reference onto a schema field name.

    Accepts exact (case-insensitive) field names and, for convenience,
    the unprefixed TPC-H style (``ORDERKEY`` for ``l_orderkey``).
    """
    if schema is None:
        return name.lower()
    lowered = name.lower()
    if lowered in schema:
        return lowered
    for field in schema.fields:
        bare = field.name.split("_", 1)[-1]
        if bare == lowered:
            return field.name
    raise HiveAnalysisError(
        f"unknown column {name!r}; table {schema.name} has "
        f"{', '.join(schema.field_names)}"
    )


def like_to_regex(pattern: str) -> re.Pattern:
    """SQL LIKE pattern (% and _) compiled to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _compile_value(expr: Expression, schema: Schema | None):
    """Compile an expression to ``fn(row) -> value``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Column):
        column = resolve_column(expr.name, schema)
        return lambda row: row[column]
    if isinstance(expr, Arithmetic):
        left = _compile_value(expr.left, schema)
        right = _compile_value(expr.right, schema)
        op = _ARITHMETIC[expr.op]

        def arithmetic(row: Mapping):
            a, b = left(row), right(row)
            if a is None or b is None:
                return None  # SQL: NULL propagates through arithmetic
            if expr.op in ("/", "%") and b == 0:
                raise HiveAnalysisError(f"division by zero evaluating {expr}")
            return op(a, b)

        return arithmetic
    # Boolean sub-expressions used as values (rare but legal: WHERE (a AND b)).
    boolean = _compile_bool(expr, schema)
    return boolean


def _compile_bool(expr: Expression, schema: Schema | None):
    """Compile an expression to ``fn(row) -> bool``."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            value = expr.value
            return lambda row: value
        raise HiveAnalysisError(f"{expr} is not a boolean condition")
    if isinstance(expr, LogicalAnd):
        left = _compile_bool(expr.left, schema)
        right = _compile_bool(expr.right, schema)
        return lambda row: left(row) and right(row)
    if isinstance(expr, LogicalOr):
        left = _compile_bool(expr.left, schema)
        right = _compile_bool(expr.right, schema)
        return lambda row: left(row) or right(row)
    if isinstance(expr, LogicalNot):
        operand = _compile_bool(expr.operand, schema)
        return lambda row: not operand(row)
    if isinstance(expr, Comparison):
        left = _compile_value(expr.left, schema)
        right = _compile_value(expr.right, schema)
        op = _COMPARE[expr.op]
        return lambda row: op(left(row), right(row))
    if isinstance(expr, Between):
        operand = _compile_value(expr.operand, schema)
        low = _compile_value(expr.low, schema)
        high = _compile_value(expr.high, schema)

        def between(row: Mapping) -> bool:
            value, lo, hi = operand(row), low(row), high(row)
            if value is None or lo is None or hi is None:
                return False  # NULL never matches, in either polarity
            inside = lo <= value <= hi
            return not inside if expr.negated else inside

        return between
    if isinstance(expr, InList):
        operand = _compile_value(expr.operand, schema)
        options = [_compile_value(o, schema) for o in expr.options]

        def in_list(row: Mapping) -> bool:
            value = operand(row)
            if value is None:
                return False
            found = value in {o(row) for o in options}
            return not found if expr.negated else found

        return in_list
    if isinstance(expr, Like):
        operand = _compile_value(expr.operand, schema)
        regex = like_to_regex(expr.pattern)

        def like(row: Mapping) -> bool:
            value = operand(row)
            if value is None:
                return False
            found = regex.match(str(value)) is not None
            return not found if expr.negated else found

        return like
    if isinstance(expr, IsNull):
        operand = _compile_value(expr.operand, schema)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, Column):
        raise HiveAnalysisError(
            f"bare column {expr.name!r} is not a boolean condition"
        )
    raise HiveAnalysisError(f"cannot use {expr} as a condition")


# ---------------------------------------------------------------------------
# Source codegen (the scan engine's compiled path)
# ---------------------------------------------------------------------------
def _checked_arithmetic(expr: Arithmetic) -> Callable[[float, float], float]:
    """The arithmetic kernel: NULL-propagating, with the ``/`` and ``%``
    division-by-zero check. Shared by the codegen path (as an embedded
    constant) so it matches :func:`_compile_value` exactly."""
    op = _ARITHMETIC[expr.op]
    checked = expr.op in ("/", "%")

    def apply(a: float, b: float) -> float:
        if a is None or b is None:
            return None  # SQL: NULL propagates through arithmetic
        if checked and b == 0:
            raise HiveAnalysisError(f"division by zero evaluating {expr}")
        return op(a, b)

    return apply


def _emit_value(expr: Expression, em, schema: Schema | None) -> str:
    """Render an expression as Python source for its per-row value.

    ``em`` is a :class:`repro.scan.codegen.SourceEmitter` (duck-typed:
    ``const``/``temp``/``ref``/``row_expr``).
    """
    if isinstance(expr, Literal):
        return em.const(expr.value)
    if isinstance(expr, Column):
        return em.ref(resolve_column(expr.name, schema))
    if isinstance(expr, Arithmetic):
        left = _emit_value(expr.left, em, schema)
        right = _emit_value(expr.right, em, schema)
        return f"{em.const(_checked_arithmetic(expr))}({left}, {right})"
    return emit_condition(expr, em, schema)


def emit_condition(expr: Expression, em, schema: Schema | None = None) -> str:
    """Render a boolean expression as Python source (NULL-safe).

    Mirrors :func:`_compile_bool` node for node, so the interpreted
    closures and the generated source agree row-for-row — the scan
    engine's equivalence tests cross-check exactly this pair.
    """
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "True" if expr.value else "False"
        raise HiveAnalysisError(f"{expr} is not a boolean condition")
    if isinstance(expr, LogicalAnd):
        return (
            f"({emit_condition(expr.left, em, schema)}"
            f" and {emit_condition(expr.right, em, schema)})"
        )
    if isinstance(expr, LogicalOr):
        return (
            f"({emit_condition(expr.left, em, schema)}"
            f" or {emit_condition(expr.right, em, schema)})"
        )
    if isinstance(expr, LogicalNot):
        return f"(not {emit_condition(expr.operand, em, schema)})"
    if isinstance(expr, Comparison):
        a, b = em.temp(), em.temp()
        left = _emit_value(expr.left, em, schema)
        right = _emit_value(expr.right, em, schema)
        return (
            f"(({a} := {left}) is not None and ({b} := {right}) is not None"
            f" and {a} {_COMPARE_SOURCE[expr.op]} {b})"
        )
    if isinstance(expr, Between):
        value, lo, hi = em.temp(), em.temp(), em.temp()
        inner = f"{lo} <= {value} <= {hi}"
        if expr.negated:
            inner = f"not ({inner})"
        return (
            f"(({value} := {_emit_value(expr.operand, em, schema)}) is not None"
            f" and ({lo} := {_emit_value(expr.low, em, schema)}) is not None"
            f" and ({hi} := {_emit_value(expr.high, em, schema)}) is not None"
            f" and {inner})"
        )
    if isinstance(expr, InList):
        value = em.temp()
        options = ", ".join(_emit_value(o, em, schema) for o in expr.options)
        membership = f"{value} {'not in' if expr.negated else 'in'} {{{options}}}"
        return (
            f"(({value} := {_emit_value(expr.operand, em, schema)}) is not None"
            f" and {membership})"
        )
    if isinstance(expr, Like):
        value = em.temp()
        regex = em.const(like_to_regex(expr.pattern))
        verdict = "is None" if expr.negated else "is not None"
        return (
            f"(({value} := {_emit_value(expr.operand, em, schema)}) is not None"
            f" and {regex}.match(str({value})) {verdict})"
        )
    if isinstance(expr, IsNull):
        verdict = "is not None" if expr.negated else "is None"
        return f"({_emit_value(expr.operand, em, schema)} {verdict})"
    if isinstance(expr, Column):
        raise HiveAnalysisError(
            f"bare column {expr.name!r} is not a boolean condition"
        )
    raise HiveAnalysisError(f"cannot use {expr} as a condition")


@dataclass(frozen=True)
class ExpressionPredicate(FunctionPredicate):
    """A WHERE-clause predicate that carries its AST.

    Behaves exactly like the :class:`FunctionPredicate` it extends (the
    interpreted fallback), but also implements the scan codegen hook so
    :func:`repro.scan.codegen.compile_batch_matcher` can inline the whole
    expression into the fused scan loop instead of calling ``fn`` on a
    synthesized row dict.
    """

    expression: Expression | None = None
    schema: Schema | None = None

    def emit_source(self, em) -> str:
        if self.expression is None:  # pragma: no cover - defensive
            return f"bool({em.const(self.fn)}({em.row_expr}))"
        return emit_condition(self.expression, em, self.schema)


def compile_predicate(expr: Expression, schema: Schema | None = None) -> Predicate:
    """Compile a WHERE expression into a Predicate.

    Simple ``column = literal`` equalities become
    :class:`~repro.data.predicates.ColumnCompare` so their names line up
    with the generator's controlled marker predicates; everything else
    becomes an :class:`ExpressionPredicate` labeled with the SQL text,
    carrying both the interpreted closure and the AST the scan engine
    compiles to source.
    """
    simple = _as_simple_comparison(expr, schema)
    if simple is not None:
        return simple
    return ExpressionPredicate(
        fn=_compile_bool(expr, schema),
        label=str(expr),
        expression=expr,
        schema=schema,
    )


def _as_simple_comparison(
    expr: Expression, schema: Schema | None
) -> ColumnCompare | None:
    if not isinstance(expr, Comparison):
        return None
    column, literal = None, None
    op = expr.op
    if isinstance(expr.left, Column) and isinstance(expr.right, Literal):
        column, literal = expr.left, expr.right
    elif isinstance(expr.right, Column) and isinstance(expr.left, Literal):
        column, literal = expr.right, expr.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column is None or literal is None or literal.value is None:
        return None
    return ColumnCompare(resolve_column(column.name, schema), op, literal.value)
