"""The query compiler: SELECT statements to JobConfs.

This is the analogue of the paper's Hive compiler modification (§IV):
a SELECT with a LIMIT compiles to a predicate-based sampling job whose
JobConf carries ``dynamic.job = true``, the configured
``dynamic.job.policy``, and ``dynamic.input.provider = sampling``; a
SELECT without a LIMIT compiles to a plain static scan job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.estimators import AggregateSpec
from repro.approx.job import make_approx_conf
from repro.core.sampling_job import make_sampling_conf, make_scan_conf
from repro.data.predicates import TruePredicate
from repro.data.schema import Schema
from repro.engine.jobconf import JobConf
from repro.errors import HiveAnalysisError
from repro.hive.ast import SelectStatement
from repro.hive.expressions import compile_predicate, resolve_column

# Session parameters understood by the compiler.
PARAM_POLICY = "dynamic.job.policy"
PARAM_DYNAMIC = "dynamic.job"
PARAM_PROVIDER = "dynamic.input.provider"
PARAM_FALLBACK_SELECTIVITY = "hive.scan.fallback.selectivity"
PARAM_STATS_MODE = "sampling.stats.mode"
PARAM_ERROR_PCT = "sampling.error.pct"
PARAM_ERROR_CONFIDENCE = "sampling.error.confidence"

DEFAULT_POLICY = "LA"
DEFAULT_PROVIDER = "sampling"
DEFAULT_ACCURACY_PROVIDER = "accuracy"


@dataclass(frozen=True)
class Table:
    """A catalogue entry: where a table lives and what it looks like."""

    name: str
    path: str
    schema: Schema | None = None


class TableCatalog:
    """Name -> table registry (Hive metastore stand-in)."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def register(self, name: str, path: str, schema: Schema | None = None) -> None:
        if not name:
            raise HiveAnalysisError("table name must be non-empty")
        self._tables[name.lower()] = Table(name=name.lower(), path=path, schema=schema)

    def lookup(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise HiveAnalysisError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return table

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables


class QueryCompiler:
    """Compiles parsed SELECT statements against a catalogue + session params."""

    def __init__(self, catalog: TableCatalog) -> None:
        self._catalog = catalog
        self._query_counter = 0

    def compile(
        self, statement: SelectStatement, params: dict[str, str], *, user: str = "default"
    ) -> JobConf:
        table = self._catalog.lookup(statement.table)
        predicate = (
            compile_predicate(statement.where, table.schema)
            if statement.where is not None
            else TruePredicate()
        )
        columns = self._resolve_projection(statement, table)
        self._query_counter += 1
        name = f"hive-q{self._query_counter}-{user}"

        if statement.aggregate is not None:
            return self._compile_aggregate(statement, table, params, name, user)
        if statement.limit is not None:
            dynamic = params.get(PARAM_DYNAMIC, "true").lower() != "false"
            policy = params.get(PARAM_POLICY, DEFAULT_POLICY) if dynamic else None
            return make_sampling_conf(
                name=name,
                input_path=table.path,
                predicate=predicate,
                sample_size=statement.limit,
                policy_name=policy,
                provider_name=params.get(PARAM_PROVIDER, DEFAULT_PROVIDER),
                columns=columns,
                user=user,
                stats_mode=params.get(PARAM_STATS_MODE),
            )
        fallback = params.get(PARAM_FALLBACK_SELECTIVITY)
        return make_scan_conf(
            name=name,
            input_path=table.path,
            predicate=predicate,
            columns=columns,
            fallback_selectivity=float(fallback) if fallback is not None else None,
            user=user,
        )

    def _compile_aggregate(
        self,
        statement: SelectStatement,
        table: Table,
        params: dict[str, str],
        name: str,
        user: str,
    ) -> JobConf:
        """An error-bounded aggregation job over the accuracy provider.

        The error target comes from the statement's ``WITHIN p% ERROR``
        clause, falling back to the session's ``sampling.error.pct``
        parameter; without either there is no stopping rule to run, so
        the query is rejected at analysis time rather than scanning
        everything silently.
        """
        predicate = (
            compile_predicate(statement.where, table.schema)
            if statement.where is not None
            else TruePredicate()
        )
        error_pct = statement.error_pct
        if error_pct is None:
            raw = params.get(PARAM_ERROR_PCT)
            if raw is None:
                raise HiveAnalysisError(
                    f"aggregate query {statement.aggregate} needs an error "
                    f"target: add WITHIN <p>% ERROR or SET {PARAM_ERROR_PCT}"
                )
            error_pct = float(raw)
        confidence_pct = statement.confidence_pct
        if confidence_pct is None:
            confidence_pct = float(params.get(PARAM_ERROR_CONFIDENCE, "95"))
        assert statement.aggregate is not None
        spec = AggregateSpec(
            func=statement.aggregate.func,
            column=(
                resolve_column(statement.aggregate.column, table.schema)
                if statement.aggregate.column is not None
                else None
            ),
        )
        group_by = (
            resolve_column(statement.group_by, table.schema)
            if statement.group_by is not None
            else None
        )
        fallback = params.get(PARAM_FALLBACK_SELECTIVITY)
        return make_approx_conf(
            name=name,
            input_path=table.path,
            predicate=predicate,
            aggregate=spec,
            error_pct=error_pct,
            confidence_pct=confidence_pct,
            group_by=group_by,
            policy_name=params.get(PARAM_POLICY, DEFAULT_POLICY),
            # Always the accuracy provider: a session-level provider
            # override targets sampling queries (e.g. "stats"), whose
            # providers cannot run a CI stopping rule.
            provider_name=DEFAULT_ACCURACY_PROVIDER,
            fallback_selectivity=float(fallback) if fallback is not None else None,
            user=user,
        )

    def _resolve_projection(
        self, statement: SelectStatement, table: Table
    ) -> tuple[str, ...] | None:
        if statement.columns is None:
            return None
        return tuple(
            resolve_column(column, table.schema) for column in statement.columns
        )
