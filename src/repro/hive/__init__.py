"""A mini-Hive: the high-level query layer (paper §IV).

At Facebook, end-users express predicate-based sampling in Hive::

    SELECT ORDERKEY, PARTKEY, SUPPKEY
    FROM LINEITEM
    WHERE predicate LIMIT 10000

and the (modified) Hive compiler marks the compiled MapReduce job as
*dynamic*, wires in the sampling Input Provider, and carries the policy
chosen via ``SET dynamic.job.policy=...`` on the CLI.

This package is a from-scratch equivalent: a lexer, a recursive-descent
parser for SELECT/WHERE/LIMIT (plus SET and EXPLAIN), an expression
compiler producing :class:`repro.data.predicates.Predicate` objects, and
a :class:`~repro.hive.session.HiveSession` that compiles queries to
JobConfs and executes them on either substrate.
"""

from repro.hive.ast import SelectStatement, SetStatement
from repro.hive.compiler import QueryCompiler, TableCatalog
from repro.hive.expressions import ExpressionPredicate, compile_predicate
from repro.hive.lexer import Token, TokenKind, tokenize
from repro.hive.parser import parse_statement
from repro.hive.session import HiveSession, QueryResult

__all__ = [
    "ExpressionPredicate",
    "HiveSession",
    "QueryCompiler",
    "QueryResult",
    "SelectStatement",
    "SetStatement",
    "TableCatalog",
    "Token",
    "TokenKind",
    "compile_predicate",
    "parse_statement",
    "tokenize",
]
