"""Abstract syntax tree for the query language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Column:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal:
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class Comparison:
    op: str  # = != < <= > >=
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Arithmetic:
    op: str  # + - * / %
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class LogicalAnd:
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class LogicalOr:
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class LogicalNot:
    operand: "Expression"

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Between:
    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"{self.operand} {word} {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList:
    operand: "Expression"
    options: tuple["Expression", ...]
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(o) for o in self.options)
        return f"{self.operand} {word} ({inner})"


@dataclass(frozen=True)
class Like:
    operand: "Expression"
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand} {word} '{self.pattern}'"


@dataclass(frozen=True)
class IsNull:
    operand: "Expression"
    negated: bool = False

    def __str__(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {word}"


Expression = Union[
    Column, Literal, Comparison, Arithmetic,
    LogicalAnd, LogicalOr, LogicalNot,
    Between, InList, Like, IsNull,
]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Aggregate:
    """``COUNT(*)``, ``SUM(col)`` or ``AVG(col)`` in the select list."""

    func: str  # "count" | "sum" | "avg"
    column: str | None  # None for COUNT(*)

    def __str__(self) -> str:
        return f"{self.func.upper()}({self.column or '*'})"


@dataclass(frozen=True)
class SelectStatement:
    """``SELECT cols FROM table [WHERE expr] [LIMIT k]`` — or the
    error-bounded aggregate form ``SELECT agg(...) FROM table [WHERE expr]
    [GROUP BY col] WITHIN p% ERROR [AT c% CONFIDENCE]``.

    ``columns`` is None for ``SELECT *`` (and for aggregate queries,
    where ``aggregate`` carries the select list instead).
    """

    columns: tuple[str, ...] | None
    table: str
    where: Expression | None
    limit: int | None
    explain: bool = False
    aggregate: Aggregate | None = None
    group_by: str | None = None
    error_pct: float | None = None
    confidence_pct: float | None = None

    def __str__(self) -> str:
        if self.aggregate is not None:
            cols = str(self.aggregate)
        else:
            cols = "*" if self.columns is None else ", ".join(self.columns)
        text = f"SELECT {cols} FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.group_by is not None:
            text += f" GROUP BY {self.group_by}"
        if self.error_pct is not None:
            text += f" WITHIN {self.error_pct}% ERROR"
            if self.confidence_pct is not None:
                text += f" AT {self.confidence_pct}% CONFIDENCE"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass(frozen=True)
class SetStatement:
    """``SET key = value`` (configuration parameter assignment)."""

    key: str
    value: str

    def __str__(self) -> str:
        return f"SET {self.key}={self.value}"


Statement = Union[SelectStatement, SetStatement]
