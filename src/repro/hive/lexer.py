"""Tokenizer for the query language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import HiveSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "LIMIT", "AND", "OR", "NOT",
    "BETWEEN", "IN", "LIKE", "IS", "NULL", "TRUE", "FALSE",
    "SET", "EXPLAIN",
    # Error-bounded aggregation: GROUP BY and WITHIN p% ERROR
    # [AT c% CONFIDENCE]. COUNT/SUM/AVG stay identifiers, recognized
    # contextually by the parser, so they remain usable as column names.
    "GROUP", "BY", "WITHIN", "ERROR", "AT", "CONFIDENCE",
}


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word.upper()

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of query>"
        return self.text


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<operator><=|>=|!=|<>|=|<|>)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<punct>[(),;*+\-/%])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize query text. Raises HiveSyntaxError on unrecognizable input."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise HiveSyntaxError(
                f"unrecognized character {text[pos]!r}", position=pos
            )
        if match.lastgroup != "ws":
            raw = match.group()
            if match.lastgroup == "ident":
                upper = raw.upper()
                if upper in KEYWORDS:
                    tokens.append(Token(TokenKind.KEYWORD, upper, pos))
                else:
                    tokens.append(Token(TokenKind.IDENTIFIER, raw, pos))
            elif match.lastgroup == "number":
                tokens.append(Token(TokenKind.NUMBER, raw, pos))
            elif match.lastgroup == "string":
                tokens.append(Token(TokenKind.STRING, raw, pos))
            elif match.lastgroup == "operator":
                # Normalize the SQL-92 inequality spelling.
                text_op = "!=" if raw == "<>" else raw
                tokens.append(Token(TokenKind.OPERATOR, text_op, pos))
            else:
                tokens.append(Token(TokenKind.PUNCT, raw, pos))
        pos = match.end()
    tokens.append(Token(TokenKind.EOF, "", len(text)))
    return tokens


def unquote_string(raw: str) -> str:
    """Strip quotes and resolve backslash escapes of a string literal."""
    body = raw[1:-1]
    return body.replace("\\'", "'").replace("\\\\", "\\")
