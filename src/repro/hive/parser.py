"""Recursive-descent parser for the query language.

Grammar (lowest to highest precedence within expressions)::

    statement  := select | set
    set        := SET key '=' value
    select     := [EXPLAIN] SELECT cols FROM ident [WHERE expr]
                  [GROUP BY ident] [WITHIN num '%' ERROR [AT num '%' CONFIDENCE]]
                  [LIMIT num] [';']
    cols       := '*' | aggregate | ident (',' ident)*
    aggregate  := COUNT '(' '*' ')' | (SUM | AVG) '(' ident ')'
    expr       := or
    or         := and (OR and)*
    and        := not (AND not)*
    not        := NOT not | predicate
    predicate  := additive (compare | between | in | like | isnull)?
    compare    := ('='|'!='|'<'|'<='|'>'|'>=') additive
    between    := [NOT] BETWEEN additive AND additive
    in         := [NOT] IN '(' expr (',' expr)* ')'
    like       := [NOT] LIKE string
    isnull     := IS [NOT] NULL
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := number | string | TRUE | FALSE | NULL | ident | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import HiveSyntaxError
from repro.hive.ast import (
    Aggregate,
    Arithmetic,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SelectStatement,
    SetStatement,
    Statement,
)
from repro.hive.lexer import Token, TokenKind, tokenize, unquote_string


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(text).parse()


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._next()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if not token.is_keyword(word):
            raise HiveSyntaxError(
                f"expected {word}, found {token}", position=token.position
            )

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text == text:
            self._next()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        token = self._next()
        if token.kind is not TokenKind.PUNCT or token.text != text:
            raise HiveSyntaxError(
                f"expected {text!r}, found {token}", position=token.position
            )

    def _expect_identifier(self) -> str:
        token = self._next()
        if token.kind is not TokenKind.IDENTIFIER:
            raise HiveSyntaxError(
                f"expected an identifier, found {token}", position=token.position
            )
        return token.text

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse(self) -> Statement:
        if self._peek().is_keyword("SET"):
            statement = self._parse_set()
        else:
            statement = self._parse_select()
        self._accept_punct(";")
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise HiveSyntaxError(
                f"unexpected trailing input: {trailing}", position=trailing.position
            )
        return statement

    def _parse_set(self) -> SetStatement:
        self._expect_keyword("SET")
        key = self._expect_identifier()
        token = self._next()
        if not (token.kind is TokenKind.OPERATOR and token.text == "="):
            raise HiveSyntaxError(
                f"expected '=' in SET, found {token}", position=token.position
            )
        value_token = self._next()
        if value_token.kind is TokenKind.EOF:
            raise HiveSyntaxError("missing value in SET", position=value_token.position)
        value = (
            unquote_string(value_token.text)
            if value_token.kind is TokenKind.STRING
            else value_token.text
        )
        return SetStatement(key=key, value=value)

    def _parse_select(self) -> SelectStatement:
        explain = self._accept_keyword("EXPLAIN")
        self._expect_keyword("SELECT")
        aggregate = self._parse_aggregate()
        columns = self._parse_columns() if aggregate is None else None
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by = None
        if self._peek().is_keyword("GROUP"):
            group_token = self._next()
            self._expect_keyword("BY")
            if aggregate is None:
                raise HiveSyntaxError(
                    "GROUP BY requires an aggregate select list "
                    "(COUNT(*)/SUM(col)/AVG(col))",
                    position=group_token.position,
                )
            group_by = self._expect_identifier()
        error_pct = None
        confidence_pct = None
        if self._peek().is_keyword("WITHIN"):
            within_token = self._next()
            if aggregate is None:
                raise HiveSyntaxError(
                    "WITHIN ... ERROR requires an aggregate select list",
                    position=within_token.position,
                )
            error_pct = self._parse_percent("WITHIN")
            self._expect_keyword("ERROR")
            if self._accept_keyword("AT"):
                confidence_pct = self._parse_percent("AT")
                self._expect_keyword("CONFIDENCE")
        limit = None
        if self._peek().is_keyword("LIMIT"):
            limit_keyword = self._next()
            if aggregate is not None:
                raise HiveSyntaxError(
                    "an aggregate query cannot take LIMIT; "
                    "bound it with WITHIN ... ERROR instead",
                    position=limit_keyword.position,
                )
            limit_token = self._next()
            if limit_token.kind is not TokenKind.NUMBER or "." in limit_token.text:
                raise HiveSyntaxError(
                    f"LIMIT needs an integer, found {limit_token}",
                    position=limit_token.position,
                )
            limit = int(limit_token.text)
            if limit <= 0:
                raise HiveSyntaxError(
                    f"LIMIT must be positive, got {limit}",
                    position=limit_token.position,
                )
        return SelectStatement(
            columns=columns, table=table, where=where, limit=limit, explain=explain,
            aggregate=aggregate, group_by=group_by,
            error_pct=error_pct, confidence_pct=confidence_pct,
        )

    def _parse_aggregate(self) -> Aggregate | None:
        """COUNT/SUM/AVG are contextual: aggregate only as ``name (``."""
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            return None
        func = token.text.upper()
        if func not in ("COUNT", "SUM", "AVG"):
            return None
        opener = self._peek(1)
        if opener.kind is not TokenKind.PUNCT or opener.text != "(":
            return None
        self._next()  # function name
        self._next()  # "("
        if func == "COUNT":
            if not self._accept_punct("*"):
                bad = self._peek()
                raise HiveSyntaxError(
                    f"COUNT supports only COUNT(*), found {bad}",
                    position=bad.position,
                )
            column = None
        else:
            column = self._expect_identifier()
        self._expect_punct(")")
        return Aggregate(func=func.lower(), column=column)

    def _parse_percent(self, context: str) -> float:
        """A ``<number> %`` pair, as in ``WITHIN 5% ERROR``."""
        token = self._next()
        if token.kind is not TokenKind.NUMBER:
            raise HiveSyntaxError(
                f"{context} needs a number, found {token}", position=token.position
            )
        value = float(token.text)
        if value <= 0:
            raise HiveSyntaxError(
                f"{context} percentage must be positive, got {token.text}",
                position=token.position,
            )
        self._expect_punct("%")
        return value

    def _parse_columns(self) -> tuple[str, ...] | None:
        if self._accept_punct("*"):
            return None
        columns = [self._expect_identifier()]
        while self._accept_punct(","):
            columns.append(self._expect_identifier())
        return tuple(columns)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        node = self._parse_and()
        while self._accept_keyword("OR"):
            node = LogicalOr(node, self._parse_and())
        return node

    def _parse_and(self) -> Expression:
        node = self._parse_not()
        while self._accept_keyword("AND"):
            node = LogicalAnd(node, self._parse_not())
        return node

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return LogicalNot(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        node = self._parse_additive()
        negated = self._accept_keyword("NOT")
        token = self._peek()
        if token.kind is TokenKind.OPERATOR:
            if negated:
                raise HiveSyntaxError(
                    "NOT cannot precede a comparison operator",
                    position=token.position,
                )
            op = self._next().text
            return Comparison(op=op, left=node, right=self._parse_additive())
        if token.is_keyword("BETWEEN"):
            self._next()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(operand=node, low=low, high=high, negated=negated)
        if token.is_keyword("IN"):
            self._next()
            self._expect_punct("(")
            options = [self._parse_expression()]
            while self._accept_punct(","):
                options.append(self._parse_expression())
            self._expect_punct(")")
            return InList(operand=node, options=tuple(options), negated=negated)
        if token.is_keyword("LIKE"):
            self._next()
            pattern_token = self._next()
            if pattern_token.kind is not TokenKind.STRING:
                raise HiveSyntaxError(
                    f"LIKE needs a string pattern, found {pattern_token}",
                    position=pattern_token.position,
                )
            return Like(
                operand=node,
                pattern=unquote_string(pattern_token.text),
                negated=negated,
            )
        if token.is_keyword("IS"):
            self._next()
            is_not = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(operand=node, negated=is_not)
        if negated:
            raise HiveSyntaxError(
                f"expected BETWEEN/IN/LIKE after NOT, found {token}",
                position=token.position,
            )
        return node

    def _parse_additive(self) -> Expression:
        node = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.PUNCT and token.text in ("+", "-"):
                self._next()
                node = Arithmetic(token.text, node, self._parse_multiplicative())
            else:
                return node

    def _parse_multiplicative(self) -> Expression:
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.PUNCT and token.text in ("*", "/", "%"):
                self._next()
                node = Arithmetic(token.text, node, self._parse_unary())
            else:
                return node

    def _parse_unary(self) -> Expression:
        if self._peek().kind is TokenKind.PUNCT and self._peek().text == "-":
            self._next()
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return Arithmetic("-", Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind is TokenKind.STRING:
            return Literal(unquote_string(token.text))
        if token.is_keyword("TRUE"):
            return Literal(True)
        if token.is_keyword("FALSE"):
            return Literal(False)
        if token.is_keyword("NULL"):
            return Literal(None)
        if token.kind is TokenKind.IDENTIFIER:
            return Column(token.text)
        if token.kind is TokenKind.PUNCT and token.text == "(":
            node = self._parse_expression()
            self._expect_punct(")")
            return node
        raise HiveSyntaxError(
            f"unexpected token {token} in expression", position=token.position
        )
