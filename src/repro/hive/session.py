"""HiveSession: the end-user entry point.

Mirrors the Hive CLI workflow the paper describes: register tables,
``SET`` configuration parameters (notably ``dynamic.job.policy``), and
execute queries. A session runs on either execution substrate:

* attached to a :class:`~repro.engine.cluster_engine.SimulatedCluster`,
  queries run on the discrete-event cluster and results report simulated
  response times;
* attached to a :class:`~repro.engine.runtime.LocalRunner` plus a DFS,
  queries execute for real over materialized data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import Schema
from repro.engine.cluster_engine import SimulatedCluster
from repro.engine.job import JobResult
from repro.engine.jobconf import JobConf
from repro.engine.runtime import LocalRunner
from repro.errors import HiveError
from repro.hive.ast import SelectStatement, SetStatement
from repro.hive.compiler import QueryCompiler, TableCatalog
from repro.hive.parser import parse_statement


@dataclass
class QueryResult:
    """Outcome of one executed query."""

    statement: str
    rows: list
    job: JobResult | None

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class HiveSession:
    """One user's query session."""

    def __init__(
        self,
        cluster: SimulatedCluster | None = None,
        *,
        runner: LocalRunner | None = None,
        dfs=None,
        user: str = "default",
    ) -> None:
        if cluster is None and runner is None:
            raise HiveError("a session needs a cluster or a (runner, dfs) pair")
        if cluster is not None and runner is not None:
            raise HiveError("attach a session to one substrate, not both")
        if runner is not None and dfs is None:
            raise HiveError("a LocalRunner session needs a dfs to read splits from")
        self._cluster = cluster
        self._runner = runner
        self._dfs = dfs if dfs is not None else (cluster.dfs if cluster else None)
        self.user = user
        self.catalog = TableCatalog()
        self._compiler = QueryCompiler(self.catalog)
        self.params: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_table(self, name: str, path: str, schema: Schema | None = None) -> None:
        """Expose a DFS file as a queryable table."""
        if self._dfs is not None and not self._dfs.exists(path):
            raise HiveError(f"cannot register {name!r}: no DFS file at {path}")
        self.catalog.register(name, path, schema)

    def set_param(self, key: str, value: str) -> None:
        self.params[key] = str(value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, text: str) -> QueryResult:
        """Parse and execute one statement (SELECT, EXPLAIN SELECT, or SET)."""
        statement = parse_statement(text)
        if isinstance(statement, SetStatement):
            self.set_param(statement.key, statement.value)
            return QueryResult(statement=str(statement), rows=[], job=None)
        if statement.explain:
            conf = self.compile(statement)
            return QueryResult(
                statement=str(statement), rows=[_explain(conf)], job=None
            )
        conf = self.compile(statement)
        result = self._run(conf)
        if result.approx is not None:
            from repro.approx.job import finalize_rows

            rows = finalize_rows(result.output_data, result.approx)
        else:
            rows = [value for _key, value in (result.output_data or [])]
        return QueryResult(statement=str(statement), rows=rows, job=result)

    def compile(self, statement: SelectStatement) -> JobConf:
        """Compile without executing (used by EXPLAIN and tests)."""
        return self._compiler.compile(statement, self.params, user=self.user)

    def _run(self, conf: JobConf) -> JobResult:
        if self._cluster is not None:
            return self._cluster.run_job(conf)
        splits = self._dfs.open_splits(conf.input_path)
        return self._runner.run(conf, splits)


def _explain(conf: JobConf) -> dict:
    """The execution-plan summary EXPLAIN returns."""
    plan = {
        "job": conf.name,
        "input": conf.input_path,
        "dynamic": conf.is_dynamic,
        "policy": conf.policy_name,
        "provider": conf.input_provider_name,
        "sample_size": conf.sample_size,
        "reduce_tasks": conf.num_reduce_tasks,
    }
    if conf.error_pct is not None:
        from repro.engine.jobconf import APPROX_AGGREGATE, APPROX_GROUP_BY

        plan["aggregate"] = conf.get(APPROX_AGGREGATE)
        plan["group_by"] = conf.get(APPROX_GROUP_BY)
        plan["error_pct"] = conf.error_pct
        plan["confidence_pct"] = conf.error_confidence
    return plan
