"""``repro top`` — a live terminal dashboard over the telemetry hub.

Connects to a process started with ``--metrics-port`` (any of
``repro sample/query/sweep``) and renders its hub snapshot in place:
one row per job with a progress bar, rows/s sparkline, grab-to-grant
percentiles and the accuracy-CI column, plus cluster slot utilization
and sweep progress up top.

The rendering is a pure function of a snapshot dict
(:func:`render_top`), so tests drive it with hub snapshots directly;
only :func:`fetch_snapshot`/:func:`run_top` touch the network. The wire
format is the exporter's ``/telemetry.json`` endpoint — the hub
snapshot, verbatim.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, TextIO

from repro.errors import ReproError
from repro.obs.render import (
    format_duration,
    percentile_row,
    progress_bar,
    sparkline,
)

#: ANSI: clear screen + home. ``repro top`` redraws the whole frame.
CLEAR = "\x1b[2J\x1b[H"

STATE_GLYPHS = {"running": ">", "succeeded": "+", "killed": "x"}

#: Attempts before the first successful fetch: ``repro top`` is usually
#: started right after (or concurrently with) the producer, which needs
#: a moment to import and bind its exporter — don't lose that race.
CONNECT_ATTEMPTS = 5


class TopError(ReproError):
    """``repro top`` could not reach or parse the telemetry endpoint."""


def fetch_snapshot(url: str, *, timeout: float = 2.0) -> dict:
    """GET the hub snapshot from an exporter's ``/telemetry.json``."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            payload = response.read()
    except (urllib.error.URLError, OSError) as exc:
        raise TopError(f"cannot reach telemetry endpoint {url}: {exc}") from exc
    try:
        snapshot = json.loads(payload)
    except ValueError as exc:
        raise TopError(f"telemetry endpoint {url} returned non-JSON") from exc
    if not isinstance(snapshot, dict):
        raise TopError(f"telemetry endpoint {url} returned {type(snapshot).__name__}")
    return snapshot


def _rates_from_points(points: list) -> list[float]:
    """Per-second rates from a cumulative ``[(t, value), ...]`` series.

    Mirrors ``TimeSeries.rates`` but over the JSON wire shape (lists).
    """
    rates: list[float] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        delta = v1 - v0
        rates.append(delta / dt if delta > 0 else 0.0)
    return rates


def _job_row(job: dict, *, name_width: int) -> str:
    glyph = STATE_GLYPHS.get(job.get("state") or "", "?")
    name = (job.get("name") or job.get("job_id") or "?")[:name_width]
    # A sampling job's goal is its sample size, not the full dataset —
    # it succeeds after a fraction of the splits, which would render as
    # a misleading half-empty bar. Fall back to splits for scan jobs.
    sample_size = job.get("sample_size")
    if sample_size:
        done: float = min(job.get("outputs_total") or 0, sample_size)
        total = sample_size
    else:
        done = job.get("splits_completed") or 0
        total = job.get("total_splits")
    if job.get("state") == "succeeded":
        done, total = 1, 1
    bar = progress_bar(done, total, width=16)
    rows = job.get("rows_total") or 0
    points = job.get("rows_series") or []
    rates = _rates_from_points(points)
    spark = sparkline(rates, width=16)
    current = f"{rates[-1]:,.0f}/s" if rates else "-"
    grab = percentile_row(job.get("grab_to_grant"))
    ci = job.get("ci")
    if isinstance(ci, dict) and ci.get("half_width") is not None:
        ci_cell = f"±{ci['half_width']:.4g}"
        if ci.get("met"):
            ci_cell += " ok"
    else:
        ci_cell = "-"
    worker = job.get("worker") or {}
    live = worker.get("live_rows") or 0
    live_cell = f"+{live:,}" if live else ""
    return (
        f"{glyph} {name:<{name_width}} {bar}  "
        f"{rows:>12,} {live_cell:<8} {spark} {current:>10}  "
        f"{grab:>26}  {ci_cell}"
    )


def render_top(snapshot: dict, *, name_width: int = 18) -> str:
    """One full dashboard frame from a hub snapshot (pure function)."""
    lines: list[str] = []
    uptime = snapshot.get("uptime_s")
    events = snapshot.get("events_seen")
    header = "repro top"
    if uptime is not None:
        header += f" — up {format_duration(uptime)}"
    if events is not None:
        header += f", {events} events"
    lines.append(header)

    # Watchdog alert banner. Older producers serve snapshots without an
    # "alerts" key at all — render nothing rather than guessing.
    alerts = snapshot.get("alerts")
    if alerts:
        for alert in alerts:
            lines.append(
                f"! ALERT [{alert.get('severity') or '?'}] "
                f"{alert.get('job_id') or '?'} "
                f"{alert.get('detector') or '?'}: {alert.get('message') or ''}"
            )

    slots = snapshot.get("slots") or {}
    utilization = slots.get("utilization")
    if utilization is not None:
        series = [v for _t, v in (slots.get("series") or [])]
        lines.append(
            f"slots: {slots.get('total')} total, "
            f"{slots.get('available')} free  "
            f"util {utilization * 100:5.1f}% {sparkline(series, width=24)}"
        )
    sweep = snapshot.get("sweep")
    if sweep:
        total = sweep.get("points")
        done = sweep.get("done") or 0
        cached = sweep.get("cached") or 0
        lines.append(
            f"sweep: {progress_bar(done, total)}  "
            f"{done}/{total if total is not None else '?'} points"
            f" ({cached} cached)"
        )

    jobs = snapshot.get("jobs") or {}
    lines.append("")
    lines.append(
        f"  {'job':<{name_width}} {'progress':<22}  "
        f"{'rows':>12} {'live':<8} {'rows/s':<16} {'now':>10}  "
        f"{'grab→grant p50/p95/p99':>26}  ci"
    )
    if not jobs:
        lines.append("  (no jobs yet)")
    for job in jobs.values():
        lines.append(_job_row(job, name_width=name_width))
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    *,
    interval: float = 1.0,
    iterations: int | None = None,
    out: TextIO,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The ``repro top`` loop: fetch, render, redraw until interrupted.

    ``iterations`` bounds the loop (None runs until Ctrl-C or the
    endpoint goes away after having been seen once). Returns an exit
    code. Tests pass ``iterations=1, clear=False`` and a no-op sleep.
    """
    seen_once = False
    failures = 0
    count = 0
    while iterations is None or count < iterations:
        try:
            snapshot = fetch_snapshot(url)
        except TopError as exc:
            if seen_once:
                # The producer exited; that's a clean end of the run.
                out.write("telemetry endpoint closed; exiting\n")
                return 0
            failures += 1
            if failures >= CONNECT_ATTEMPTS:
                out.write(f"{exc}\n")
                return 1
            # The producer may still be starting up; retry briefly.
            try:
                sleep(min(interval, 0.5))
            except KeyboardInterrupt:
                return 0
            continue
        seen_once = True
        frame = render_top(snapshot)
        if clear:
            out.write(CLEAR)
        out.write(frame)
        out.flush()
        count += 1
        if iterations is None or count < iterations:
            try:
                sleep(interval)
            except KeyboardInterrupt:
                return 0
    return 0
