"""Structured trace export: typed JSONL events for a whole run.

:class:`TraceRecorder` extends :class:`repro.engine.history.JobHistory`
— it accepts the same ``record(time, kind, job_id, ...)`` calls the
JobTracker already makes, so it can be attached anywhere a JobHistory
can — and adds:

* typed events beyond the job lifecycle: every Input Provider
  evaluation with its full inputs (``JobProgress``, ``ClusterStatus``,
  policy knobs) and response, per-split scan-engine spans, metrics
  snapshots, and sweep progress;
* JSONL export (one event per line) with a versioned schema, validated
  by :func:`validate_trace_event` and checked in CI against a golden
  trace file.

Event wire format — every line is a JSON object with::

    v      trace schema version (int)
    seq    monotonically increasing per-recorder sequence number
    time   simulated seconds (sim substrate) or 0.0 (LocalRunner)
    type   event type (see EVENT_FIELDS)

plus the per-type fields listed in :data:`EVENT_FIELDS`. Lifecycle
events mirror JobHistory kinds one-to-one; their free-form ``detail``
dict rides along unflattened so the schema stays stable as engines add
annotations.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.engine.history import JobHistory
from repro.errors import ReproError

TRACE_SCHEMA_VERSION = 1

#: JobHistory lifecycle kinds mirrored one-to-one as trace event types.
LIFECYCLE_EVENT_TYPES = (
    "job_submitted",
    "job_activated",
    "input_added",
    "input_complete",
    "map_started",
    "map_finished",
    "map_failed",
    "map_retried",
    "reduce_started",
    "reduce_finished",
    "job_succeeded",
    "job_killed",
)

#: Required fields per event type, beyond the common v/seq/time/type.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    **{kind: ("job_id",) for kind in LIFECYCLE_EVENT_TYPES},
    "provider_evaluation": (
        "job_id",
        "phase",
        "policy",
        "progress",
        "cluster",
        "response",
    ),
    "scan_span": ("task_id", "split_id", "mode", "rows", "outputs", "elapsed_s"),
    "metrics_snapshot": ("scope", "metrics"),
    "sweep_started": ("points",),
    "sweep_point": ("index", "kind", "params", "cached"),
    "sweep_finished": ("points",),
}


class TraceSchemaError(ReproError):
    """A trace event (or JSONL line) does not match the schema."""


def policy_knobs(policy) -> dict:
    """The policy parameters carried on every provider_evaluation event."""
    return {
        "work_threshold_pct": policy.work_threshold_pct,
        "grab_limit": policy.grab_limit.source,
        "evaluation_interval": policy.evaluation_interval,
    }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-safe structures."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class TraceRecorder(JobHistory):
    """JobHistory that also emits every event as a typed JSONL record.

    ``path`` (or an open ``stream``) receives one JSON line per event as
    it happens; either way the raw event dicts stay available on
    :attr:`raw_events` for in-process rendering and tests. The recorder
    is a context manager; :meth:`close` flushes and closes an owned file.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        stream: IO[str] | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(capacity=capacity)
        self.raw_events: list[dict] = []
        self._seq = 0
        self._listeners: list = []
        self._stream = stream
        self._owns_stream = False
        if path is not None:
            if stream is not None:
                raise ValueError("pass either path or stream, not both")
            self._stream = open(path, "w", encoding="utf-8")
            self._owns_stream = True

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def emit(self, type_: str, time: float, **fields) -> dict:
        """Append one typed event; returns the event dict."""
        event = {
            "v": TRACE_SCHEMA_VERSION,
            "seq": self._seq,
            "time": time,
            "type": type_,
        }
        self._seq += 1
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self.raw_events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event, sort_keys=False) + "\n")
        if self._listeners:
            self._notify(event)
        return event

    def _notify(self, event: dict) -> None:
        """Fan the event out to listeners, isolating their failures.

        Listeners are read-side observers (progress lines, the telemetry
        hub); a bug in one must never kill the observed job. A listener
        that raises is detached after a single stderr notice — letting it
        keep raising would both spam and keep re-entering broken code on
        the job's hot path.
        """
        broken: list = []
        for listener in self._listeners:
            try:
                listener(event)
            except Exception as exc:
                broken.append(listener)
                print(
                    f"repro: trace listener {listener!r} raised "
                    f"{type(exc).__name__}: {exc}; detaching it",
                    file=sys.stderr,
                )
        for listener in broken:
            self._listeners.remove(listener)

    def add_listener(self, listener) -> None:
        """Register a callable invoked with every emitted event dict.

        Listeners are strictly read-side consumers (live progress
        reporting); they must not mutate the event. A listener that
        raises is detached (with one stderr notice) instead of
        propagating into — and killing — the traced job.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Detach a listener added with :meth:`add_listener` (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # JobHistory contract — lifecycle events from the JobTracker
    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: str,
        job_id: str,
        *,
        task_id: str | None = None,
        **detail,
    ) -> None:
        fields: dict[str, Any] = {"job_id": job_id}
        if task_id is not None:
            fields["task_id"] = task_id
        if detail:
            fields["detail"] = detail
        self.emit(kind, time, **fields)
        super().record(time, kind, job_id, task_id=task_id, **detail)

    # ------------------------------------------------------------------
    # Typed events beyond the lifecycle
    # ------------------------------------------------------------------
    def provider_evaluation(
        self,
        time: float,
        *,
        job_id: str,
        phase: str,
        policy: str | None,
        knobs: dict | None,
        progress,
        cluster,
        response_kind: str,
        splits: int,
        pruned: int = 0,
        ci: dict | None = None,
    ) -> None:
        """One Input Provider invocation (paper §III-A evaluation loop).

        ``phase`` is ``"initial"`` for ``initial_input`` (where the
        provider sees only cluster state, so ``progress`` is None) or
        ``"evaluate"`` for the periodic loop. ``pruned`` is the
        provider's *cumulative* count of splits retired via split
        statistics without dispatch; the audit folds it into the
        splits-accounting invariant. Older traces (and providers without
        statistics) simply omit/zero it. ``ci`` is the accuracy
        provider's interval snapshot (estimate, half_width, n, met);
        attached only when the provider exposes one, so traces from
        other providers are byte-identical to before.
        """
        response: dict[str, Any] = {
            "kind": response_kind,
            "splits": splits,
            "pruned": pruned,
        }
        if ci is not None:
            response["ci"] = ci
        self.emit(
            "provider_evaluation",
            time,
            job_id=job_id,
            phase=phase,
            policy=policy,
            knobs=knobs,
            progress=progress,
            cluster=cluster,
            response=response,
        )

    def scan_span(
        self,
        time: float,
        *,
        task_id: str,
        split_id: str,
        mode: str,
        batch_size: int,
        rows: int,
        outputs: int,
        elapsed_s: float,
        job_id: str | None = None,
    ) -> None:
        """One map-task scan execution (wall-clock timed)."""
        rows_per_sec = rows / elapsed_s if elapsed_s > 0 else None
        self.emit(
            "scan_span",
            time,
            job_id=job_id,
            task_id=task_id,
            split_id=split_id,
            mode=mode,
            batch_size=batch_size,
            rows=rows,
            outputs=outputs,
            elapsed_s=elapsed_s,
            rows_per_sec=rows_per_sec,
        )

    def metrics_snapshot(
        self, time: float, *, scope: str, metrics: dict, job_id: str | None = None
    ) -> None:
        """A registry ``snapshot()`` at a point in time (job end, run end)."""
        self.emit(
            "metrics_snapshot", time, scope=scope, job_id=job_id, metrics=metrics
        )

    def sweep_started(self, *, points: int, jobs: int) -> None:
        self.emit("sweep_started", 0.0, points=points, jobs=jobs)

    def sweep_point(
        self, *, index: int, kind: str, params: dict, cached: bool
    ) -> None:
        self.emit("sweep_point", 0.0, index=index, kind=kind, params=params, cached=cached)

    def sweep_finished(self, *, points: int) -> None:
        self.emit("sweep_finished", 0.0, points=points)

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
            self._stream = None
            self._owns_stream = False

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Schema validation / loading
# ----------------------------------------------------------------------
def validate_trace_event(event: Any) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` matches the schema."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"trace event must be an object, got {type(event).__name__}")
    for field in ("v", "seq", "time", "type"):
        if field not in event:
            raise TraceSchemaError(f"trace event missing required field {field!r}")
    if event["v"] != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema version {event['v']!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        raise TraceSchemaError(f"seq must be a non-negative int, got {event['seq']!r}")
    if not isinstance(event["time"], (int, float)) or isinstance(event["time"], bool):
        raise TraceSchemaError(f"time must be a number, got {event['time']!r}")
    type_ = event["type"]
    required = EVENT_FIELDS.get(type_)
    if required is None:
        raise TraceSchemaError(f"unknown trace event type {type_!r}")
    for field in required:
        if field not in event:
            raise TraceSchemaError(f"{type_} event missing required field {field!r}")
    if type_ == "provider_evaluation":
        response = event["response"]
        if not isinstance(response, dict) or "kind" not in response or "splits" not in response:
            raise TraceSchemaError(
                "provider_evaluation response must carry 'kind' and 'splits'"
            )


def validate_trace(events: Iterable[Any]) -> int:
    """Validate a sequence of events; returns how many were checked."""
    count = 0
    last_seq = -1
    for event in events:
        validate_trace_event(event)
        if event["seq"] <= last_seq:
            raise TraceSchemaError(
                f"seq not strictly increasing: {event['seq']} after {last_seq}"
            )
        last_seq = event["seq"]
        count += 1
    return count


def load_trace(path: str | Path, *, validate: bool = True) -> list[dict]:
    """Read a JSONL trace file; validates each line unless told not to."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
            events.append(event)
    if validate:
        try:
            validate_trace(events)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"{path}: {exc}") from exc
    return events
