"""Causal span graph: why did this job take as long as it did?

:mod:`repro.obs.analyze` rebuilds *what* happened — attempts, waves,
evaluations. This module rebuilds *why the clock advanced*: a directed
graph of causal spans per job

* the **job** span (submission to completion),
* one **grant** span per input increment (the provider's initial grab
  plus every INPUT_AVAILABLE answer — the paper's waves, §III-A),
* one **attempt** span per map-task attempt, linked to the grant that
  made its split available, to the failed attempt it retries, and to
  the attempt whose slot it inherited,
* the **reduce** span.

On top of the graph sits the **critical path**: the single chain of
spans whose waits and durations sum exactly to the job's recorded
response time (time-to-k). Every path segment carries the wait it
inflicted, so ``repro doctor`` can say "8.0 s of this run is one retry
chain" instead of pointing at a timeline. Edges that are *not* on the
path carry slack — how much later that dependency could have finished
without moving the job's completion.

Everything is a pure function of the analyzed :class:`JobModel`;
rebuilding the graph twice yields identical structures (the doctor's
byte-determinism rests on this). LocalRunner traces record no task
lifecycle and stamp every event 0.0 — their graphs have no attempt
spans and an empty critical path, which downstream renderers treat as
"no latency structure recorded".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analyze import JobModel, RunModel

#: Edge kinds, in binding-priority order (used to break exact ties when
#: two predecessors end at the same instant).
_EDGE_PRIORITY = {"retry": 0, "dispatch": 1, "threshold": 2, "slot": 3, "submit": 4}


@dataclass
class Span:
    """One node of the causal graph."""

    span_id: str  # "job" | "grant:<wave>" | "attempt:<task_id>" | "reduce"
    kind: str  # "job" | "grant" | "attempt" | "reduce"
    label: str
    start: float
    end: float
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Edge:
    """A causal dependency: ``dst`` could not start before ``src`` ended.

    ``slack`` is ``dst.start - src.end`` — how long the dependent span
    waited after this prerequisite was satisfied. The *binding*
    predecessor of a span is the incoming edge with the smallest slack;
    the critical path is the chain of binding edges from job completion
    back to submission.
    """

    src: str
    dst: str
    kind: str  # "grant" | "dispatch" | "retry" | "slot" | "threshold" | "reduce"
    slack: float


@dataclass
class PathSegment:
    """One span on the critical path, with the wait that preceded it."""

    span: Span
    wait: float  # gap after the previous path span ended (or job submit)
    edge_kind: str  # how this span depended on its predecessor


@dataclass
class SpanGraph:
    """The causal graph and critical path for one job."""

    job_id: str
    spans: dict[str, Span] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    critical_path: list[PathSegment] = field(default_factory=list)
    tail: float = 0.0
    """Time between the last critical-path span ending and the job
    finishing (completion bookkeeping after the reduce)."""
    attempt_waves: dict[str, int] = field(default_factory=dict)
    """task_id -> wave index, as assigned by :func:`build_span_graph`."""

    @property
    def critical_path_length(self) -> float:
        """Sum of waits + durations along the path, plus the tail.

        Reconciles exactly with the job's recorded response time when a
        path exists (asserted by the test suite, relied on by doctor).
        """
        return sum(s.wait + s.span.duration for s in self.critical_path) + self.tail


def build_graphs(model: RunModel) -> dict[str, SpanGraph]:
    """One :class:`SpanGraph` per job, in trace first-appearance order."""
    return {job_id: build_span_graph(job) for job_id, job in model.jobs.items()}


def build_span_graph(job: JobModel) -> SpanGraph:
    """Assemble the causal span graph for one analyzed job."""
    graph = SpanGraph(job_id=job.job_id)
    submit = job.submit_time if job.submit_time is not None else 0.0
    finish = job.finish_time if job.finish_time is not None else submit
    graph.spans["job"] = Span(
        span_id="job",
        kind="job",
        label=f"{job.job_id} ({job.state or 'open'})",
        start=submit,
        end=finish,
        meta={"policy": job.policy, "name": job.name},
    )

    # Grant spans: instantaneous nodes at each input increment.
    for wave in job.waves:
        span_id = f"grant:{wave.index}"
        graph.spans[span_id] = Span(
            span_id=span_id,
            kind="grant",
            label=f"wave {wave.index} (+{wave.splits} splits, {wave.source})",
            start=wave.time,
            end=wave.time,
            meta={"splits": wave.splits, "source": wave.source},
        )

    # Attempt spans, for attempts the trace actually timed.
    timed: list = []
    for task_id in job.attempt_order:
        attempt = job.attempts[task_id]
        if attempt.start is None or attempt.end is None:
            continue
        timed.append(attempt)
        span_id = f"attempt:{task_id}"
        graph.spans[span_id] = Span(
            span_id=span_id,
            kind="attempt",
            label=f"{task_id} [{attempt.outcome or 'open'}]",
            start=attempt.start,
            end=attempt.end,
            meta={
                "node": attempt.node,
                "outcome": attempt.outcome,
                "records": attempt.records,
                "outputs": attempt.outputs,
            },
        )

    graph.attempt_waves = _assign_waves(job, timed)
    for task_id, wave_index in graph.attempt_waves.items():
        span = graph.spans.get(f"attempt:{task_id}")
        if span is not None:
            span.meta["wave"] = wave_index

    if job.reduce_start is not None and job.reduce_end is not None:
        graph.spans["reduce"] = Span(
            span_id="reduce",
            kind="reduce",
            label="reduce",
            start=job.reduce_start,
            end=job.reduce_end,
            meta={"outputs": job.reduce_outputs},
        )

    _build_edges(job, graph, timed, submit)
    _walk_critical_path(job, graph, timed, submit, finish)
    return graph


def _assign_waves(job: JobModel, timed: list) -> dict[str, int]:
    """Map each attempt to the wave whose grant made its split runnable.

    The trace does not record which grant a split came from, but the
    scheduler dispatches grants in order: first attempts, sorted by
    start time, chunk into waves by each wave's split count. Retries
    inherit the wave of the attempt they re-execute.
    """
    retry_ids = {
        a.retried_as for a in job.attempts.values() if a.retried_as is not None
    }
    firsts = sorted(
        (a for a in timed if a.task_id not in retry_ids),
        key=lambda a: (a.start, a.task_id),
    )
    assignment: dict[str, int] = {}
    cursor = 0
    for wave in job.waves:
        for attempt in firsts[cursor : cursor + wave.splits]:
            assignment[attempt.task_id] = wave.index
        cursor += wave.splits
    # Attempts beyond the recorded grants (shouldn't happen on a clean
    # trace) fall into the last wave rather than vanishing.
    last_wave = job.waves[-1].index if job.waves else 0
    for attempt in firsts[cursor:]:
        assignment[attempt.task_id] = last_wave
    # Retries inherit their original's wave (transitively).
    retry_of = {
        a.retried_as: a.task_id
        for a in job.attempts.values()
        if a.retried_as is not None
    }
    for attempt in timed:
        if attempt.task_id in assignment:
            continue
        origin = attempt.task_id
        seen = set()
        while origin in retry_of and origin not in seen:
            seen.add(origin)
            origin = retry_of[origin]
        assignment[attempt.task_id] = assignment.get(origin, last_wave)
    return assignment


def _build_edges(job: JobModel, graph: SpanGraph, timed: list, submit: float) -> None:
    edges = graph.edges
    for wave in job.waves:
        edges.append(
            Edge("job", f"grant:{wave.index}", "grant", wave.time - submit)
        )
    retry_of = {
        a.retried_as: a.task_id
        for a in job.attempts.values()
        if a.retried_as is not None
    }
    for attempt in timed:
        dst = f"attempt:{attempt.task_id}"
        origin = retry_of.get(attempt.task_id)
        if origin is not None and f"attempt:{origin}" in graph.spans:
            src_span = graph.spans[f"attempt:{origin}"]
            edges.append(
                Edge(src_span.span_id, dst, "retry", attempt.start - src_span.end)
            )
        wave_index = graph.attempt_waves.get(attempt.task_id)
        grant_id = f"grant:{wave_index}"
        if wave_index is not None and grant_id in graph.spans:
            grant = graph.spans[grant_id]
            edges.append(Edge(grant_id, dst, "dispatch", attempt.start - grant.start))
    # Threshold edges: each periodic grant waited on map progress — the
    # binding completion is the latest attempt ending at or before it.
    for wave in job.waves:
        if wave.source == "initial":
            continue
        binding = _latest_ending(timed, wave.time)
        if binding is not None:
            edges.append(
                Edge(
                    f"attempt:{binding.task_id}",
                    f"grant:{wave.index}",
                    "threshold",
                    wave.time - binding.end,
                )
            )
    if "reduce" in graph.spans:
        reduce_span = graph.spans["reduce"]
        binding = _latest_ending(timed, reduce_span.start)
        if binding is not None:
            edges.append(
                Edge(
                    f"attempt:{binding.task_id}",
                    "reduce",
                    "reduce",
                    reduce_span.start - binding.end,
                )
            )


def _latest_ending(timed: list, cutoff: float):
    """The attempt with the greatest end time ≤ cutoff (ties: task_id)."""
    best = None
    for attempt in timed:
        if attempt.end > cutoff:
            continue
        if (
            best is None
            or attempt.end > best.end
            or (attempt.end == best.end and attempt.task_id < best.task_id)
        ):
            best = attempt
    return best


def _walk_critical_path(
    job: JobModel, graph: SpanGraph, timed: list, submit: float, finish: float
) -> None:
    """Backward walk from job completion along binding predecessors."""
    if not timed:
        return  # LocalRunner trace: no latency structure recorded.

    retry_of = {
        a.retried_as: a.task_id
        for a in job.attempts.values()
        if a.retried_as is not None
    }

    # Terminal span: the reduce, else the last-finishing attempt.
    if "reduce" in graph.spans:
        current = graph.spans["reduce"]
    else:
        last = max(timed, key=lambda a: (a.end, a.task_id))
        current = graph.spans[f"attempt:{last.task_id}"]

    # chain[i] depends on chain[i+1] via kinds[i]; the chronologically
    # first span depends on the submission itself ("submit").
    chain: list[Span] = [current]
    kinds: list[str] = []
    visited = {current.span_id}
    while True:
        predecessor, edge_kind = _binding_predecessor(
            graph, timed, retry_of, current, submit
        )
        if predecessor is None or predecessor.span_id in visited:
            kinds.append("submit")
            break
        kinds.append(edge_kind)
        chain.append(predecessor)
        visited.add(predecessor.span_id)
        current = predecessor

    chain.reverse()
    kinds.reverse()
    previous_end = submit
    for span, edge_kind in zip(chain, kinds):
        wait = span.start - previous_end
        graph.critical_path.append(
            PathSegment(span=span, wait=wait, edge_kind=edge_kind)
        )
        previous_end = span.end
    graph.tail = finish - previous_end


def _binding_predecessor(
    graph: SpanGraph, timed: list, retry_of: dict, span: Span, submit: float
):
    """The latest-ending prerequisite of ``span`` (its binding wait).

    Candidates depend on span kind:

    * attempt — the failed attempt it retries, the grant that made its
      split available, or the same-job attempt whose slot it took over;
    * reduce — the last map attempt finishing before it;
    * grant — for periodic grants, the completion that satisfied the
      WorkThreshold (latest attempt ending ≤ grant time). The initial
      grant (and anything reaching the submission time) terminates the
      walk.
    """
    candidates: list[tuple[float, int, str, Span, str]] = []

    def consider(candidate: Span, kind: str) -> None:
        if candidate.end > span.start + 1e-12:
            return
        candidates.append(
            (
                candidate.end,
                -_EDGE_PRIORITY.get(kind, 9),
                candidate.span_id,
                candidate,
                kind,
            )
        )

    if span.kind == "attempt":
        task_id = span.span_id.split(":", 1)[1]
        origin = retry_of.get(task_id)
        if origin is not None and f"attempt:{origin}" in graph.spans:
            consider(graph.spans[f"attempt:{origin}"], "retry")
        wave_index = graph.attempt_waves.get(task_id)
        if wave_index is not None and f"grant:{wave_index}" in graph.spans:
            consider(graph.spans[f"grant:{wave_index}"], "dispatch")
        slot = _latest_ending(
            [a for a in timed if f"attempt:{a.task_id}" != span.span_id], span.start
        )
        if slot is not None:
            consider(graph.spans[f"attempt:{slot.task_id}"], "slot")
    elif span.kind == "reduce":
        binding = _latest_ending(timed, span.start)
        if binding is not None:
            consider(graph.spans[f"attempt:{binding.task_id}"], "reduce")
    elif span.kind == "grant":
        meta_source = span.meta.get("source")
        if meta_source == "initial" or span.start <= submit + 1e-12:
            return None, ""
        binding = _latest_ending(timed, span.start)
        if binding is not None:
            consider(graph.spans[f"attempt:{binding.task_id}"], "threshold")

    if not candidates:
        return None, ""
    # Binding = latest end; ties prefer retry > dispatch > threshold >
    # slot, then the lexicographically-smallest span id — deterministic.
    candidates.sort(key=lambda c: (-c[0], -c[1], c[2]))
    best = candidates[0]
    return best[3], best[4]
