"""Deterministic anomaly detectors over the causal span graph.

Each detector is a pure function ``(job: JobModel, graph: SpanGraph)
-> list[Finding]`` registered under a stable name. Detectors look for
the failure modes the paper's §V experiments (and the related work in
PAPERS.md) identify as the reasons a predicate-sampling run misses its
latency target:

=====================  ==================================================
straggler              attempt duration far above its wave's median
                       (MAD-scaled, so one slow disk doesn't hide twins)
slot_starvation        map slots idle between waves — the WorkThreshold
                       held grants back longer than the cluster needed
scheduler_stall        a wave's first dispatch lagged its grant by more
                       than the EvaluationInterval budget
split_skew             one split carries far more rows than its peers
                       ("Assignment Problems of Different-Sized Inputs")
selectivity_drift      the predicate's hit rate shifted mid-job, so
                       early-wave grab sizing no longer fits (LA §IV-B)
pruning_regression     a statistics-mode run still scanned splits that
                       produced nothing — zone maps/blooms missed them
ci_stall               a WITHIN…ERROR job's interval stopped shrinking
                       (EARL-style estimator convergence watch)
=====================  ==================================================

Thresholds are deliberately conservative and MAD-based: the golden
trace — a clean, deterministic simulated run with seeded retries — must
yield **zero** findings (a CI gate), while each class has a seeded
mutant trace that must trip exactly its detector. Detectors never
mutate the model and consume no randomness: the same trace always
produces byte-identical findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.analyze import JobModel, RunModel
from repro.obs.spans import SpanGraph, build_graphs

#: Consistency constant: 1 MAD ≈ 1.4826 σ for normal data.
MAD_SCALE = 1.4826

#: Straggler: flag attempts beyond median + max(K·scaled-MAD, RELATIVE·median).
STRAGGLER_MAD_K = 5.0
STRAGGLER_RELATIVE_FLOOR = 0.5
#: Minimum finished attempts in a wave before judging stragglers.
STRAGGLER_MIN_ATTEMPTS = 4

#: Starvation: idle fraction of the map phase (no attempt running) above
#: this, across at least MIN_GAPS distinct gaps, is a mis-tuned threshold.
STARVATION_IDLE_FRACTION = 0.30
STARVATION_MIN_GAPS = 3

#: Stall: a wave's first dispatch more than this many EvaluationIntervals
#: after its grant, and stretched vs the job's own median dispatch gap.
STALL_INTERVAL_MULTIPLE = 2.0
STALL_MEDIAN_MULTIPLE = 2.0

#: Skew: largest split above max(2·median, median + K·scaled-MAD) rows.
SKEW_RATIO = 2.0
SKEW_MAD_K = 5.0
SKEW_MIN_SPLITS = 4

#: Drift: late-run selectivity vs early-run outside [1/RATIO, RATIO].
DRIFT_RATIO = 4.0
DRIFT_MIN_WAVES = 4

#: Pruning regression: zero-output fraction of scanned splits in a
#: stats-mode run (pruned > 0 proves statistics were consulted).
PRUNING_ZERO_FRACTION = 0.25
PRUNING_MIN_ZERO = 2

#: CI stall: over the trailing WINDOW ci-carrying evaluations, the half
#: width must shrink by at least MIN_SHRINK (relative) unless met.
CI_WINDOW = 4
CI_MIN_SHRINK = 0.01


@dataclass(frozen=True)
class Finding:
    """One typed diagnosis: what, how bad, where, and what to turn."""

    detector: str
    severity: str  # "info" | "warning" | "critical"
    job_id: str
    message: str
    evidence: tuple[str, ...] = ()
    """Span ids (``attempt:…``, ``grant:…``) or ``eval:seq=…`` refs."""
    suggestion: str | None = None

    def as_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "job_id": self.job_id,
            "message": self.message,
            "evidence": list(self.evidence),
            "suggestion": self.suggestion,
        }


Detector = Callable[[JobModel, SpanGraph], list]

#: Registry, name -> detector. Iterated in sorted-name order.
DETECTORS: dict[str, Detector] = {}


def detector(name: str) -> Callable[[Detector], Detector]:
    def register(fn: Detector) -> Detector:
        DETECTORS[name] = fn
        return fn

    return register


def run_detectors(
    model: RunModel,
    graphs: dict[str, SpanGraph] | None = None,
    *,
    names: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Run every (selected) detector over every job, deterministically.

    Jobs iterate in sorted id order, detectors in sorted name order;
    the same trace therefore always yields the same finding list.
    """
    if graphs is None:
        graphs = build_graphs(model)
    selected = sorted(names) if names is not None else sorted(DETECTORS)
    findings: list[Finding] = []
    for job_id in sorted(model.jobs):
        job = model.jobs[job_id]
        graph = graphs.get(job_id) or SpanGraph(job_id=job_id)
        for name in selected:
            findings.extend(DETECTORS[name](job, graph))
    return findings


# ---------------------------------------------------------------------------
# Shared statistics helpers
# ---------------------------------------------------------------------------
def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: list[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def _finished_attempts(job: JobModel) -> list:
    return [
        job.attempts[task_id]
        for task_id in job.attempt_order
        if job.attempts[task_id].outcome == "finished"
        and job.attempts[task_id].duration is not None
    ]


def _knob(job: JobModel, name: str) -> float | None:
    knobs = job.knobs or {}
    value = knobs.get(name)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Detectors
# ---------------------------------------------------------------------------
@detector("straggler")
def detect_stragglers(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """Attempts far slower than their wave's median duration."""
    findings: list[Finding] = []
    by_wave: dict[int, list] = {}
    for attempt in _finished_attempts(job):
        wave = graph.attempt_waves.get(attempt.task_id)
        if wave is not None:
            by_wave.setdefault(wave, []).append(attempt)
    for wave in sorted(by_wave):
        attempts = by_wave[wave]
        if len(attempts) < STRAGGLER_MIN_ATTEMPTS:
            continue
        durations = [a.duration for a in attempts]
        median = _median(durations)
        if median <= 0:
            continue
        spread = MAD_SCALE * _mad(durations, median)
        threshold = median + max(
            STRAGGLER_MAD_K * spread, STRAGGLER_RELATIVE_FLOOR * median
        )
        for attempt in attempts:
            if attempt.duration <= threshold:
                continue
            on_path = any(
                seg.span.span_id == f"attempt:{attempt.task_id}"
                for seg in graph.critical_path
            )
            findings.append(
                Finding(
                    detector="straggler",
                    severity="critical" if on_path else "warning",
                    job_id=job.job_id,
                    message=(
                        f"straggler attempt {attempt.task_id} in wave {wave}: "
                        f"{attempt.duration:.3f}s vs wave median {median:.3f}s"
                        + (" (on the critical path)" if on_path else "")
                    ),
                    evidence=(f"attempt:{attempt.task_id}", f"grant:{wave}"),
                    suggestion=(
                        "enable speculative re-execution or shrink split "
                        "size so one slow node cannot hold the wave"
                    ),
                )
            )
    return findings


@detector("slot_starvation")
def detect_slot_starvation(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """Map slots idle between waves: the WorkThreshold over-delayed grants."""
    series = job.utilization()
    if len(series) < 2:
        return []
    start, end = series[0][0], series[-1][0]
    span = end - start
    if span <= 0:
        return []
    idle = 0.0
    gaps = 0
    for (t0, running), (t1, _next) in zip(series, series[1:]):
        if running == 0 and t1 > t0:
            idle += t1 - t0
            gaps += 1
    fraction = idle / span
    if fraction <= STARVATION_IDLE_FRACTION or gaps < STARVATION_MIN_GAPS:
        return []
    threshold = _knob(job, "work_threshold_pct")
    suggestion = "lower WorkThreshold so the provider grants the next wave sooner"
    if threshold is not None:
        suggestion = (
            f"WorkThreshold too high ({threshold:g}%): lower it so the "
            "provider grants the next wave before the cluster drains"
        )
    return [
        Finding(
            detector="slot_starvation",
            severity="warning",
            job_id=job.job_id,
            message=(
                f"WorkThreshold too high: {fraction * 100.0:.0f}% slot idle "
                f"between waves ({idle:.1f}s of {span:.1f}s map phase across "
                f"{gaps} gaps)"
            ),
            evidence=tuple(f"grant:{wave.index}" for wave in job.waves),
            suggestion=suggestion,
        )
    ]


@detector("scheduler_stall")
def detect_scheduler_stalls(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """Dispatch gaps: a granted wave sat undispatched past its interval."""
    interval = _knob(job, "evaluation_interval")
    if interval is None or interval <= 0:
        return []
    first_start: dict[int, float] = {}
    for attempt in job.attempts.values():
        if attempt.start is None:
            continue
        wave = graph.attempt_waves.get(attempt.task_id)
        if wave is None:
            continue
        if wave not in first_start or attempt.start < first_start[wave]:
            first_start[wave] = attempt.start
    gaps: list[tuple[int, float]] = []
    for wave in job.waves:
        if wave.index not in first_start:
            continue
        ready = wave.time
        if job.activate_time is not None:
            ready = max(ready, job.activate_time)
        gaps.append((wave.index, first_start[wave.index] - ready))
    if not gaps:
        return []
    median_gap = _median([gap for _w, gap in gaps])
    findings: list[Finding] = []
    for wave_index, gap in gaps:
        if gap <= STALL_INTERVAL_MULTIPLE * interval:
            continue
        if gap <= STALL_MEDIAN_MULTIPLE * median_gap:
            continue
        findings.append(
            Finding(
                detector="scheduler_stall",
                severity="critical",
                job_id=job.job_id,
                message=(
                    f"scheduler stall: wave {wave_index} waited {gap:.1f}s "
                    f"from grant to first dispatch "
                    f"(EvaluationInterval {interval:g}s, median gap "
                    f"{median_gap:.1f}s)"
                ),
                evidence=(f"grant:{wave_index}",),
                suggestion=(
                    "check JobTracker heartbeat pressure; dispatch should "
                    "follow a grant within one EvaluationInterval"
                ),
            )
        )
    return findings


@detector("split_skew")
def detect_split_skew(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """One split much larger than its peers (different-sized inputs)."""
    sized: list[tuple[str, float]] = [
        (f"attempt:{a.task_id}", float(a.records))
        for a in _finished_attempts(job)
        if a.records > 0
    ]
    if not sized:
        sized = [
            (f"scan:{span['split_id']}", float(span["rows"]))
            for span in job.scan_spans
            if span.get("rows")
        ]
    if len(sized) < SKEW_MIN_SPLITS:
        return []
    rows = [r for _ref, r in sized]
    median = _median(rows)
    if median <= 0:
        return []
    spread = MAD_SCALE * _mad(rows, median)
    threshold = max(SKEW_RATIO * median, median + SKEW_MAD_K * spread)
    ref, largest = max(sized, key=lambda item: (item[1], item[0]))
    if largest <= threshold:
        return []
    return [
        Finding(
            detector="split_skew",
            severity="warning",
            job_id=job.job_id,
            message=(
                f"split-size skew: largest split scanned {largest:,.0f} rows "
                f"vs median {median:,.0f} ({largest / median:.1f}x)"
            ),
            evidence=(ref,),
            suggestion=(
                "rebalance the input layout (equal-row splits) or enable "
                "size-aware assignment so big splits start first"
            ),
        )
    ]


@detector("selectivity_drift")
def detect_selectivity_drift(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """The predicate hit rate moved between early and late waves."""
    per_wave: dict[int, tuple[int, int]] = {}
    for attempt in _finished_attempts(job):
        wave = graph.attempt_waves.get(attempt.task_id)
        if wave is None or attempt.records <= 0:
            continue
        records, outputs = per_wave.get(wave, (0, 0))
        per_wave[wave] = (records + attempt.records, outputs + attempt.outputs)
    waves = sorted(per_wave)
    if len(waves) < DRIFT_MIN_WAVES:
        return []
    selectivity = {
        w: per_wave[w][1] / per_wave[w][0] for w in waves if per_wave[w][0] > 0
    }
    waves = [w for w in waves if w in selectivity]
    if len(waves) < DRIFT_MIN_WAVES:
        return []
    half = len(waves) // 2
    early = sum(selectivity[w] for w in waves[:half]) / half
    late = sum(selectivity[w] for w in waves[half:]) / (len(waves) - half)
    if early <= 0:
        return []
    ratio = late / early
    if 1.0 / DRIFT_RATIO <= ratio <= DRIFT_RATIO:
        return []
    direction = "rose" if ratio > 1 else "fell"
    return [
        Finding(
            detector="selectivity_drift",
            severity="warning",
            job_id=job.job_id,
            message=(
                f"selectivity drift: predicate hit rate {direction} from "
                f"{early:.2e} (early waves) to {late:.2e} (late waves), "
                f"ratio {ratio:.2f}"
            ),
            evidence=tuple(f"grant:{w}" for w in waves),
            suggestion=(
                "grab sizing keyed to early selectivity no longer fits; "
                "re-estimate selectivity per wave (List/adaptive policy) "
                "or widen GrabLimit for the late waves"
            ),
        )
    ]


@detector("pruning_regression")
def detect_pruning_regression(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """A stats-mode run still scanned splits that produced nothing."""
    if job.splits_pruned <= 0:
        return []  # Statistics never engaged; nothing to regress.
    scanned: list[tuple[str, int, int]] = [
        (f"attempt:{a.task_id}", a.records, a.outputs)
        for a in _finished_attempts(job)
    ]
    if not scanned:
        scanned = [
            (f"scan:{span['split_id']}", span.get("rows", 0), span.get("outputs", 0))
            for span in job.scan_spans
        ]
    if not scanned:
        return []
    zero = [(ref, rows) for ref, rows, outputs in scanned if rows > 0 and outputs == 0]
    if len(zero) < max(
        PRUNING_MIN_ZERO, int(PRUNING_ZERO_FRACTION * len(scanned))
    ):
        return []
    wasted = sum(rows for _ref, rows in zero)
    return [
        Finding(
            detector="pruning_regression",
            severity="warning",
            job_id=job.job_id,
            message=(
                f"pruning regression: {len(zero)} of {len(scanned)} scanned "
                f"splits produced no outputs ({wasted:,} rows read) despite "
                f"split statistics pruning {job.splits_pruned} splits"
            ),
            evidence=tuple(ref for ref, _rows in zero[:8]),
            suggestion=(
                "rebuild split statistics (zone maps / bloom filters) — "
                "they no longer cover the predicate's column or the data "
                "moved since the stats were collected"
            ),
        )
    ]


@detector("ci_stall")
def detect_ci_stall(job: JobModel, graph: SpanGraph) -> list[Finding]:
    """A WITHIN…ERROR job's confidence interval stopped converging."""
    widths: list[tuple[int, float, bool]] = []
    for evaluation in job.evaluations:
        ci = evaluation.response_ci
        if not isinstance(ci, dict):
            continue
        half = ci.get("half_width")
        if half is None:
            continue
        widths.append((evaluation.seq, float(half), bool(ci.get("met"))))
    if len(widths) < CI_WINDOW + 1:
        return []
    if widths[-1][2]:
        return []  # Converged; a long tail before `met` is fine.
    window = widths[-(CI_WINDOW + 1) :]
    first, last = window[0][1], window[-1][1]
    if first <= 0:
        return []
    shrink = (first - last) / first
    if shrink >= CI_MIN_SHRINK:
        return []
    return [
        Finding(
            detector="ci_stall",
            severity="warning",
            job_id=job.job_id,
            message=(
                f"CI convergence stalled: half-width ±{last:.4g} shrank "
                f"only {shrink * 100.0:.2f}% over the last {CI_WINDOW} "
                f"evaluations without meeting the target"
            ),
            evidence=tuple(f"eval:seq={seq}" for seq, _h, _m in window),
            suggestion=(
                "raise GrabLimit (more splits per round shrink the "
                "interval faster) or loosen the WITHIN…ERROR target"
            ),
        )
    ]
