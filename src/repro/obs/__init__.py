"""Observability layer: metrics registry + structured trace export.

The paper's Input Provider (§III-A) decides END_OF_INPUT /
INPUT_AVAILABLE / NO_INPUT_AVAILABLE purely from job progress and
cluster load; this package makes every one of those decisions — and the
task lifecycle around them — inspectable after the fact.

Two halves:

* :mod:`repro.obs.metrics` — a picklable :class:`MetricsRegistry` of
  named counters, gauges, and histograms. Jobs, the cluster, and the
  benchmarks all hang their accounting off one of these instead of
  ad-hoc integer fields.
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` emitting typed
  JSONL events (job lifecycle, task attempts, provider evaluations with
  their full inputs, scan-engine spans). It extends
  :class:`repro.engine.history.JobHistory` — same ``record()`` contract,
  so the JobTracker treats either interchangeably — rather than
  duplicating it.

On top of the stream sit pure read-side consumers:

* :mod:`repro.obs.analyze` — rebuilds a run model (span trees, waves,
  utilization series, per-policy Figure 5–8 summaries) from events;
* :mod:`repro.obs.audit` — replays every provider evaluation against
  the paper's Table I contract and the task-accounting invariants;
* :mod:`repro.obs.report` — deterministic markdown/HTML comparative
  reports, including a two-trace diff mode;
* :mod:`repro.obs.progress` — an opt-in live stderr reporter attached
  as a recorder listener;
* :mod:`repro.obs.hub` + :mod:`repro.obs.timeseries` — the live
  telemetry hub: windowed ring-buffer series and streaming quantile
  sketches maintained *while* jobs run, multiplexed across concurrent
  jobs, fed by trace events and cross-process worker deltas;
* :mod:`repro.obs.export` — Prometheus text exposition plus the
  background HTTP exporter (``--metrics-port``);
* :mod:`repro.obs.top` — the ``repro top`` live terminal dashboard;
* :mod:`repro.obs.spans` — the causal span graph: job → grant →
  attempt → reduce dependencies with retry linkage, the critical path
  that bounded job latency, and per-edge slack;
* :mod:`repro.obs.detect` — deterministic anomaly detectors over the
  span graph (stragglers, starvation, stalls, skew, drift, pruning
  regressions, CI stalls), each with a suggested knob change;
* :mod:`repro.obs.doctor` — ``repro doctor``: the byte-deterministic
  findings report with the critical path rendered, a two-trace diff,
  and the live :class:`Watchdog` behind the hub's alert gauges;
* :mod:`repro.obs.slo` — ``repro slo check``: YAML run-quality
  objectives evaluated against traces or bench records for CI gating.

Everything here is pure read-side: attaching a registry or recorder
consumes no randomness and changes no job output bytes.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

# trace/render are loaded lazily (PEP 562): obs.metrics must stay
# importable from low layers (cluster, engine) without dragging in
# obs.trace, whose JobHistory base lives above them in the import graph.
_LAZY = {
    "TRACE_SCHEMA_VERSION": "repro.obs.trace",
    "TraceRecorder": "repro.obs.trace",
    "TraceSchemaError": "repro.obs.trace",
    "load_trace": "repro.obs.trace",
    "validate_trace_event": "repro.obs.trace",
    "render_metrics": "repro.obs.render",
    "render_timeline": "repro.obs.render",
    "analyze_trace": "repro.obs.analyze",
    "policy_summaries": "repro.obs.analyze",
    "RunModel": "repro.obs.analyze",
    "JobModel": "repro.obs.analyze",
    "audit_events": "repro.obs.audit",
    "render_audit": "repro.obs.audit",
    "audit_json": "repro.obs.audit",
    "AuditReport": "repro.obs.audit",
    "Violation": "repro.obs.audit",
    "SpanGraph": "repro.obs.spans",
    "build_span_graph": "repro.obs.spans",
    "build_graphs": "repro.obs.spans",
    "Finding": "repro.obs.detect",
    "run_detectors": "repro.obs.detect",
    "Diagnosis": "repro.obs.doctor",
    "diagnose": "repro.obs.doctor",
    "render_doctor": "repro.obs.doctor",
    "doctor_json": "repro.obs.doctor",
    "render_doctor_diff": "repro.obs.doctor",
    "Watchdog": "repro.obs.doctor",
    "parse_slo_spec": "repro.obs.slo",
    "evaluate_trace_slo": "repro.obs.slo",
    "evaluate_bench_slo": "repro.obs.slo",
    "render_slo": "repro.obs.slo",
    "build_report": "repro.obs.report",
    "render_report": "repro.obs.report",
    "ProgressReporter": "repro.obs.progress",
    "PhaseProfiler": "repro.obs.profile",
    "active_profiler": "repro.obs.profile",
    "profiled_span": "repro.obs.profile",
    "render_profile": "repro.obs.profile",
    "TelemetryHub": "repro.obs.hub",
    "active_hub": "repro.obs.hub",
    "TimeSeries": "repro.obs.timeseries",
    "QuantileSketch": "repro.obs.timeseries",
    "TelemetryExporter": "repro.obs.export",
    "render_hub_prometheus": "repro.obs.export",
    "render_registry_prometheus": "repro.obs.export",
    "parse_exposition": "repro.obs.export",
    "render_top": "repro.obs.top",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "TraceSchemaError",
    "load_trace",
    "validate_trace_event",
    "render_metrics",
    "render_timeline",
    "analyze_trace",
    "policy_summaries",
    "RunModel",
    "JobModel",
    "audit_events",
    "render_audit",
    "audit_json",
    "AuditReport",
    "Violation",
    "SpanGraph",
    "build_span_graph",
    "build_graphs",
    "Finding",
    "run_detectors",
    "Diagnosis",
    "diagnose",
    "render_doctor",
    "doctor_json",
    "render_doctor_diff",
    "Watchdog",
    "parse_slo_spec",
    "evaluate_trace_slo",
    "evaluate_bench_slo",
    "render_slo",
    "build_report",
    "render_report",
    "ProgressReporter",
    "PhaseProfiler",
    "active_profiler",
    "profiled_span",
    "render_profile",
    "TelemetryHub",
    "active_hub",
    "TimeSeries",
    "QuantileSketch",
    "TelemetryExporter",
    "render_hub_prometheus",
    "render_registry_prometheus",
    "parse_exposition",
    "render_top",
]
