"""SLO gates: declare run-quality objectives in YAML, check in CI.

``repro slo check --spec slo.yml trace.jsonl`` evaluates a small spec
against a recorded trace (and/or a ``repro bench run`` record) and
exits non-zero when any objective is missed — the same contract as
``repro audit`` and ``repro bench compare``, so a pipeline can gate a
merge on "the nightly run still meets its latency and accuracy SLOs".

Spec shape (all sections optional; every leaf is one objective)::

    latency:                  # ceilings on per-job wall time (seconds)
      p50_s: 60.0             # nearest-rank percentile over all jobs
      p95_s: 120.0
      max_s: 300.0
      mean_s: 90.0
    throughput:
      rows_per_sec_floor: 50000     # scanned rows per wall-clock second
    stragglers:
      max_ratio: 0.05         # flagged straggler attempts / finished
    accuracy:
      ci_coverage_floor: 1.0  # accuracy jobs that met their CI target
    findings:                 # caps on `repro doctor` findings
      max_critical: 0
      max_warning: 2
      max_total: 5
    bench:                    # against a bench run record (--bench)
      floors:
        kernel.rows_per_sec: 1.0e6  # median must be >= this
      ceilings:
        e2e.seconds: 30.0           # median must be <= this

Parsing prefers PyYAML when the interpreter has it, but CI images only
carry numpy+pytest, so a built-in parser handles the subset the spec
actually needs: nested mappings with scalar leaves, ``#`` comments,
spaces for indentation. Evaluation reuses :func:`repro.obs.doctor.
diagnose`, so the straggler and findings objectives see exactly what
``repro doctor`` reports — one diagnosis, two consumers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ReproError
from repro.obs.doctor import Diagnosis, diagnose

try:  # pragma: no cover - exercised only where PyYAML is installed
    import yaml as _yaml
except Exception:  # pragma: no cover - the CI path
    _yaml = None

#: Recognized latency keys -> percentile (None = mean).
_LATENCY_KEYS = {
    "p50_s": 50.0,
    "p90_s": 90.0,
    "p95_s": 95.0,
    "p99_s": 99.0,
    "max_s": 100.0,
    "mean_s": None,
}

_SECTIONS = ("latency", "throughput", "stragglers", "accuracy", "findings", "bench")


class SloSpecError(ReproError):
    """The SLO spec file cannot be parsed or references unknown keys."""


@dataclass(frozen=True)
class SloCheck:
    """One evaluated objective."""

    objective: str  # e.g. "latency.p95_s"
    target: float
    actual: float | None
    ok: bool
    detail: str = ""


@dataclass
class SloReport:
    """All objectives evaluated against one source."""

    source: str
    checks: list[SloCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------
def parse_slo_spec(text: str) -> dict:
    """Parse and validate a spec document into a plain nested dict."""
    if _yaml is not None:
        try:
            spec = _yaml.safe_load(text)
        except Exception as exc:
            raise SloSpecError(f"cannot parse SLO spec: {exc}") from exc
    else:
        spec = _mini_yaml(text)
    if spec is None:
        spec = {}
    if not isinstance(spec, dict):
        raise SloSpecError(f"SLO spec must be a mapping, got {type(spec).__name__}")
    for section in spec:
        if section not in _SECTIONS:
            raise SloSpecError(
                f"unknown SLO section {section!r} (expected one of "
                f"{', '.join(_SECTIONS)})"
            )
    latency = spec.get("latency") or {}
    for key in latency:
        if key not in _LATENCY_KEYS:
            raise SloSpecError(
                f"unknown latency objective {key!r} (expected one of "
                f"{', '.join(sorted(_LATENCY_KEYS))})"
            )
    return spec


def _mini_yaml(text: str) -> dict:
    """The spec subset without PyYAML: nested maps, scalar leaves.

    Supports ``#`` comments, blank lines, and space indentation. Enough
    for every spec this module documents; anything fancier (lists,
    anchors, multi-line strings) raises.
    """
    root: dict = {}
    stack: list[tuple[int, dict]] = [(-1, root)]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise SloSpecError(f"line {lineno}: indent with spaces, not tabs")
        indent = len(line) - len(line.lstrip(" "))
        body = line.strip()
        if body.startswith("- "):
            raise SloSpecError(f"line {lineno}: lists are not supported in SLO specs")
        key, sep, value = body.partition(":")
        if not sep:
            raise SloSpecError(f"line {lineno}: expected 'key: value', got {body!r}")
        while stack and indent <= stack[-1][0]:
            stack.pop()
        if not stack:
            raise SloSpecError(f"line {lineno}: bad indentation")
        container = stack[-1][1]
        key = key.strip().strip("'\"")
        value = value.strip()
        if not value:
            child: dict = {}
            container[key] = child
            stack.append((indent, child))
        else:
            container[key] = _scalar(value)
    return root


def _scalar(token: str):
    lowered = token.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "~", "none"):
        return None
    if token[:1] in "'\"" and token[-1:] == token[:1] and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _target(section: dict, key: str, objective: str) -> float:
    value = section[key]
    if isinstance(value, str):
        # PyYAML follows YAML 1.1 and reads "1.0e6" (no signed
        # exponent) as a string; the documented spec shape uses that
        # form, so coerce numeric-looking strings on both parser paths.
        try:
            value = float(value)
        except ValueError:
            pass
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SloSpecError(f"{objective} must be a number, got {value!r}")
    return float(value)


# ---------------------------------------------------------------------------
# Trace evaluation
# ---------------------------------------------------------------------------
def evaluate_trace_slo(
    spec: dict,
    events: Iterable[dict],
    *,
    source: str = "trace",
    diagnosis: Diagnosis | None = None,
) -> SloReport:
    """Evaluate every trace-facing objective against one event stream."""
    if diagnosis is None:
        diagnosis = diagnose(events)
    report = SloReport(source=source)
    model = diagnosis.model

    times = sorted(
        job.response_time
        for job in model.jobs.values()
        if job.response_time is not None
    )
    latency = spec.get("latency") or {}
    for key in sorted(latency):
        objective = f"latency.{key}"
        target = _target(latency, key, objective)
        if not times:
            report.checks.append(
                SloCheck(objective, target, None, False, "no recorded wall times")
            )
            continue
        quantile = _LATENCY_KEYS[key]
        if quantile is None:
            actual = sum(times) / len(times)
        else:
            actual = _nearest_rank(times, quantile)
        report.checks.append(
            SloCheck(
                objective,
                target,
                actual,
                actual <= target,
                f"over {len(times)} job(s)",
            )
        )

    throughput = spec.get("throughput") or {}
    if "rows_per_sec_floor" in throughput:
        objective = "throughput.rows_per_sec_floor"
        target = _target(throughput, "rows_per_sec_floor", objective)
        actual, detail = _rows_per_sec(model)
        ok = actual is not None and actual >= target
        report.checks.append(SloCheck(objective, target, actual, ok, detail))

    stragglers = spec.get("stragglers") or {}
    if "max_ratio" in stragglers:
        objective = "stragglers.max_ratio"
        target = _target(stragglers, "max_ratio", objective)
        finished = sum(
            1
            for job in model.jobs.values()
            for attempt in job.attempts.values()
            if attempt.outcome == "finished"
        )
        flagged = {
            ref
            for finding in diagnosis.findings
            if finding.detector == "straggler"
            for ref in finding.evidence
            if ref.startswith("attempt:")
        }
        if finished:
            actual = len(flagged) / finished
            detail = f"{len(flagged)} of {finished} finished attempts"
        else:
            actual, detail = 0.0, "no finished attempts recorded"
        report.checks.append(
            SloCheck(objective, target, actual, actual <= target, detail)
        )

    accuracy = spec.get("accuracy") or {}
    if "ci_coverage_floor" in accuracy:
        objective = "accuracy.ci_coverage_floor"
        target = _target(accuracy, "ci_coverage_floor", objective)
        accuracy_jobs = [
            job
            for job in model.jobs.values()
            if any(e.response_ci is not None for e in job.evaluations)
        ]
        if accuracy_jobs:
            met = sum(
                1
                for job in accuracy_jobs
                if any(
                    (e.response_ci or {}).get("met")
                    for e in job.evaluations
                    if e.response_ci is not None
                )
            )
            actual = met / len(accuracy_jobs)
            ok = actual >= target
            detail = f"{met} of {len(accuracy_jobs)} accuracy job(s) met their CI"
        else:
            actual, ok, detail = None, True, "no accuracy jobs in trace"
        report.checks.append(SloCheck(objective, target, actual, ok, detail))

    findings = spec.get("findings") or {}
    caps = {
        "max_critical": ("critical",),
        "max_warning": ("warning",),
        "max_total": ("critical", "warning", "info"),
    }
    for key in sorted(findings):
        if key not in caps:
            raise SloSpecError(f"unknown findings objective {key!r}")
        objective = f"findings.{key}"
        target = _target(findings, key, objective)
        count = sum(
            1 for f in diagnosis.findings if f.severity in caps[key]
        )
        report.checks.append(
            SloCheck(objective, target, float(count), count <= target, "")
        )
    return report


def _nearest_rank(ordered: list[float], quantile: float) -> float:
    rank = max(1, math.ceil(quantile / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _rows_per_sec(model) -> tuple[float | None, str]:
    """Run-level scan throughput: event-time when present, else scan
    spans' own wall-clock elapsed (LocalRunner traces)."""
    rows = sum(job.records_processed for job in model.jobs.values())
    wall = sum(
        job.response_time
        for job in model.jobs.values()
        if job.response_time
    )
    if wall > 0:
        return rows / wall, f"{rows:,} rows over {wall:.3f}s of job wall time"
    elapsed = sum(
        span.get("elapsed_s") or 0.0
        for job in model.jobs.values()
        for span in job.scan_spans
    )
    if elapsed > 0:
        return rows / elapsed, f"{rows:,} rows over {elapsed:.3f}s of scan time"
    return None, "trace records no usable time axis"


# ---------------------------------------------------------------------------
# Bench-record evaluation
# ---------------------------------------------------------------------------
def evaluate_bench_slo(spec: dict, record: dict, *, source: str = "bench") -> SloReport:
    """Evaluate ``bench.floors``/``bench.ceilings`` against a run record
    (the ``repro bench run --out`` JSON: median per metric per suite)."""
    report = SloReport(source=source)
    bench = spec.get("bench") or {}
    medians: dict[str, float] = {}
    for data in (record.get("suites") or {}).values():
        for name, metric in (data.get("metrics") or {}).items():
            medians[name] = metric.get("median")
    for kind, passes in (("floors", lambda a, t: a >= t), ("ceilings", lambda a, t: a <= t)):
        section = bench.get(kind) or {}
        for name in sorted(section):
            objective = f"bench.{kind}.{name}"
            target = _target(section, name, objective)
            actual = medians.get(name)
            if actual is None:
                report.checks.append(
                    SloCheck(
                        objective,
                        target,
                        None,
                        False,
                        f"metric {name!r} not in bench record "
                        f"(has: {', '.join(sorted(medians)) or 'none'})",
                    )
                )
                continue
            report.checks.append(
                SloCheck(objective, target, actual, passes(actual, target), "median")
            )
    return report


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_slo(reports: list[SloReport]) -> str:
    """Deterministic text summary, one line per objective."""
    lines: list[str] = []
    total = failed = 0
    for report in reports:
        lines.append(f"slo check — {report.source}")
        if not report.checks:
            lines.append("  (no objectives apply)")
        for check in report.checks:
            total += 1
            mark = "PASS" if check.ok else "FAIL"
            if not check.ok:
                failed += 1
            actual = f"{check.actual:g}" if check.actual is not None else "n/a"
            line = f"  [{mark}] {check.objective}: {actual} vs target {check.target:g}"
            if check.detail:
                line += f"  ({check.detail})"
            lines.append(line)
    verdict = "ok" if failed == 0 else f"{failed} objective(s) missed"
    lines.append(f"slo: {total} objective(s) checked, {verdict}")
    return "\n".join(lines) + "\n"


def slo_json(reports: list[SloReport]) -> str:
    """Machine-readable verdicts with stable key order."""
    payload = {
        "ok": all(report.ok for report in reports),
        "reports": [
            {
                "source": report.source,
                "ok": report.ok,
                "checks": [
                    {
                        "objective": check.objective,
                        "target": check.target,
                        "actual": check.actual,
                        "ok": check.ok,
                        "detail": check.detail,
                    }
                    for check in report.checks
                ],
            }
            for report in reports
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
