"""Trace analytics: reconstruct a run model from a recorded event stream.

The write side (:mod:`repro.obs.trace`) emits a typed JSONL event per
job-lifecycle transition, task attempt, Input Provider invocation, scan
execution, and sweep step. This module is the read side: given those
events it rebuilds

* a per-job model — task-attempt span tree, wave structure (one wave per
  input increment, paper §III-A), the full provider evaluation history,
  and the job's embedded metrics snapshot;
* a map-slot **utilization time series** (running map tasks over
  simulated time, per job and run-wide), the quantity behind the paper's
  §V-D throughput discussion;
* per-policy **summaries** — time-to-k, splits consumed, records
  scanned, evaluations — the rows of the paper's Figures 5–8 recomputed
  from a trace instead of from fresh simulation.

Everything here is a pure function of the event list: analyzing a trace
twice (or a trace of a re-run on the sim substrate) yields identical
models, which is what makes ``repro report`` byte-deterministic.

Both substrates are handled: the simulated cluster emits the full task
lifecycle (``map_started``/``map_finished``/…), while the LocalRunner
emits provider evaluations and ``scan_span`` events with no per-task
lifecycle and all times 0.0 — span trees and utilization series are
simply empty there, and split accounting falls back to scan spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ReproError


class TraceAnalysisError(ReproError):
    """The event stream cannot be assembled into a run model."""


# ---------------------------------------------------------------------------
# Model dataclasses
# ---------------------------------------------------------------------------
@dataclass
class TaskAttemptSpan:
    """One map-task attempt, from ``map_started`` to its terminal event."""

    task_id: str
    attempt: int | None = None
    node: str | None = None
    local: bool | None = None
    start: float | None = None
    end: float | None = None
    outcome: str | None = None  # "finished" | "failed" | None (no terminal)
    records: int = 0
    outputs: int = 0
    retried_as: str | None = None

    @property
    def duration(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass
class Evaluation:
    """One Input Provider invocation, as recorded in the trace."""

    seq: int
    time: float
    phase: str  # "initial" | "evaluate"
    policy: str | None
    knobs: dict | None
    progress: dict | None
    cluster: dict | None
    response_kind: str
    response_splits: int
    response_pruned: int = 0
    """Cumulative splits the provider retired via split statistics (zone
    maps / bloom filters) up to this evaluation; 0 for older traces."""
    response_ci: dict | None = None
    """Confidence-interval state an accuracy provider attached to this
    evaluation (estimate, half_width, met, …); None for other providers
    and for older traces."""


@dataclass
class Wave:
    """One input increment: the initial grab or one ``input_added``."""

    index: int
    time: float
    splits: int
    source: str  # "initial" | "input_added"


@dataclass
class JobModel:
    """Everything the trace records about one job."""

    job_id: str
    name: str | None = None
    policy: str | None = None
    knobs: dict | None = None
    dynamic: bool | None = None
    sample_size: int | None = None
    total_splits: int | None = None
    submit_time: float | None = None
    activate_time: float | None = None
    finish_time: float | None = None
    state: str | None = None  # "succeeded" | "killed" | None (still open)
    input_complete_time: float | None = None
    submitted_splits: int = 0
    input_added_events: list[tuple[float, int]] = field(default_factory=list)
    attempts: dict[str, TaskAttemptSpan] = field(default_factory=dict)
    attempt_order: list[str] = field(default_factory=list)
    evaluations: list[Evaluation] = field(default_factory=list)
    waves: list[Wave] = field(default_factory=list)
    reduce_start: float | None = None
    reduce_end: float | None = None
    reduce_outputs: int = 0
    scan_spans: list[dict] = field(default_factory=list)
    metrics: dict | None = None

    # -- derived ---------------------------------------------------------
    @property
    def response_time(self) -> float | None:
        """The paper's time-to-k: submission to completion."""
        if self.submit_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def splits_added(self) -> int:
        return sum(wave.splits for wave in self.waves)

    @property
    def splits_completed(self) -> int:
        """Map tasks that finished — the paper's "splits consumed".

        Prefers the task lifecycle (sim substrate); falls back to scan
        spans (LocalRunner) and then to the metrics snapshot.
        """
        finished = sum(1 for a in self.attempts.values() if a.outcome == "finished")
        if finished:
            return finished
        if self.scan_spans:
            return len(self.scan_spans)
        if self.metrics is not None:
            per_task = self.metrics.get("map_records_per_task")
            if per_task is not None:
                return per_task["value"]["count"] or 0
        return 0

    @property
    def records_processed(self) -> int:
        finished = sum(
            a.records for a in self.attempts.values() if a.outcome == "finished"
        )
        if finished:
            return finished
        if self.scan_spans:
            return sum(span["rows"] for span in self.scan_spans)
        if self.metrics is not None:
            entry = self.metrics.get("records_processed")
            if entry is not None:
                return entry["value"]
        return 0

    @property
    def map_outputs(self) -> int:
        produced = sum(
            a.outputs for a in self.attempts.values() if a.outcome == "finished"
        )
        if produced:
            return produced
        if self.metrics is not None:
            entry = self.metrics.get("outputs_produced")
            if entry is not None:
                return entry["value"]
        return 0

    @property
    def failed_attempts(self) -> int:
        return sum(1 for a in self.attempts.values() if a.outcome == "failed")

    @property
    def splits_pruned(self) -> int:
        """Splits retired via split statistics without dispatch.

        The trace carries the provider's *cumulative* count on each
        evaluation, so the job-level total is the last one seen.
        """
        for evaluation in reversed(self.evaluations):
            if evaluation.response_pruned:
                return evaluation.response_pruned
        return 0

    @property
    def end_of_input_time(self) -> float | None:
        """When the provider declared END_OF_INPUT (or input completed)."""
        for evaluation in self.evaluations:
            if evaluation.response_kind == "END_OF_INPUT":
                return evaluation.time
        return self.input_complete_time

    def utilization(self) -> list[tuple[float, int]]:
        """Step series of this job's running map tasks over time.

        Each entry is ``(time, running_after_time)``; the series is empty
        when the trace carries no task lifecycle (LocalRunner).
        """
        deltas: list[tuple[float, int]] = []
        for attempt in self.attempts.values():
            if attempt.start is not None:
                deltas.append((attempt.start, +1))
            if attempt.end is not None:
                deltas.append((attempt.end, -1))
        if not deltas:
            return []
        deltas.sort()
        series: list[tuple[float, int]] = []
        running = 0
        for time, delta in deltas:
            running += delta
            if series and series[-1][0] == time:
                series[-1] = (time, running)
            else:
                series.append((time, running))
        return series

    def mean_running_maps(self) -> float | None:
        """Time-weighted mean of running map tasks over the map phase."""
        series = self.utilization()
        if not series or series[-1][0] <= series[0][0]:
            return None
        start, end = series[0][0], series[-1][0]
        area = 0.0
        for (t0, running), (t1, _next) in zip(series, series[1:]):
            area += running * (t1 - t0)
        return area / (end - start)

    def span_tree(self) -> dict:
        """Nested span view: job → waves → attempts, plus the reduce span."""
        children: list[dict] = []
        attempts = [self.attempts[task_id] for task_id in self.attempt_order]
        for wave in self.waves:
            children.append(
                {
                    "label": f"wave {wave.index} (+{wave.splits} splits, {wave.source})",
                    "start": wave.time,
                    "end": wave.time,
                    "children": [],
                }
            )
        for attempt in attempts:
            children.append(
                {
                    "label": (
                        f"{attempt.task_id} attempt={attempt.attempt} "
                        f"[{attempt.outcome or 'open'}]"
                    ),
                    "start": attempt.start,
                    "end": attempt.end,
                    "children": [],
                }
            )
        if self.reduce_start is not None:
            children.append(
                {
                    "label": "reduce",
                    "start": self.reduce_start,
                    "end": self.reduce_end,
                    "children": [],
                }
            )
        children.sort(key=lambda c: (c["start"] is None, c["start"] or 0.0))
        return {
            "label": f"{self.job_id} ({self.state or 'open'})",
            "start": self.submit_time,
            "end": self.finish_time,
            "children": children,
        }


@dataclass
class RunModel:
    """One analyzed trace: jobs in first-appearance order plus run scope."""

    jobs: dict[str, JobModel] = field(default_factory=dict)
    cluster_metrics: list[dict] = field(default_factory=list)
    sweep_events: list[dict] = field(default_factory=list)
    total_map_slots: int | None = None
    events: int = 0

    def jobs_by_policy(self) -> dict[str, list[JobModel]]:
        grouped: dict[str, list[JobModel]] = {}
        for job in self.jobs.values():
            grouped.setdefault(job.policy or "(static)", []).append(job)
        return grouped


@dataclass
class PolicySummary:
    """Figure 5–8 style per-policy aggregates recomputed from a trace."""

    policy: str
    jobs: int
    time_to_k: float | None  # mean response time, seconds
    splits_consumed: float  # mean completed splits per job
    splits_added: float
    splits_total: float | None
    records_processed: float
    splits_pruned: float  # mean splits retired via split statistics
    evaluations: float
    increments: float
    failed_attempts: float
    mean_running_maps: float | None
    utilization_pct: float | None  # vs total map slots, when known


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------
_TERMINAL_OUTCOME = {"map_finished": "finished", "map_failed": "failed"}


def analyze_trace(events: Iterable[dict]) -> RunModel:
    """Fold an event stream (``load_trace`` output) into a :class:`RunModel`."""
    model = RunModel()

    def job_for(job_id: str) -> JobModel:
        job = model.jobs.get(job_id)
        if job is None:
            job = JobModel(job_id=job_id)
            model.jobs[job_id] = job
        return job

    for event in events:
        model.events += 1
        type_ = event["type"]
        time = event["time"]
        if type_ == "job_submitted":
            job = job_for(event["job_id"])
            job.submit_time = time
            detail = event.get("detail") or {}
            job.name = detail.get("name")
            job.dynamic = detail.get("dynamic")
            job.sample_size = detail.get("sample_size")
            job.total_splits = detail.get("total_splits")
            job.submitted_splits = detail.get("splits", 0)
        elif type_ == "job_activated":
            job_for(event["job_id"]).activate_time = time
        elif type_ == "input_added":
            job = job_for(event["job_id"])
            detail = event.get("detail") or {}
            job.input_added_events.append((time, detail.get("splits", 0)))
        elif type_ == "input_complete":
            job_for(event["job_id"]).input_complete_time = time
        elif type_ == "map_started":
            job = job_for(event["job_id"])
            task_id = event["task_id"]
            detail = event.get("detail") or {}
            attempt = job.attempts.get(task_id)
            if attempt is None:
                attempt = TaskAttemptSpan(task_id=task_id)
                job.attempts[task_id] = attempt
                job.attempt_order.append(task_id)
            attempt.start = time
            attempt.attempt = detail.get("attempt")
            attempt.node = detail.get("node")
            attempt.local = detail.get("local")
        elif type_ in _TERMINAL_OUTCOME:
            job = job_for(event["job_id"])
            task_id = event["task_id"]
            attempt = job.attempts.get(task_id)
            if attempt is None:
                attempt = TaskAttemptSpan(task_id=task_id)
                job.attempts[task_id] = attempt
                job.attempt_order.append(task_id)
            attempt.end = time
            attempt.outcome = _TERMINAL_OUTCOME[type_]
            detail = event.get("detail") or {}
            attempt.records = detail.get("records", 0)
            attempt.outputs = detail.get("outputs", 0)
        elif type_ == "map_retried":
            job = job_for(event["job_id"])
            detail = event.get("detail") or {}
            retry_id = event["task_id"]
            # Link the most recent failed attempt without a retry pointer.
            for task_id in reversed(job.attempt_order):
                previous = job.attempts[task_id]
                if previous.outcome == "failed" and previous.retried_as is None:
                    previous.retried_as = retry_id
                    break
            if retry_id not in job.attempts:
                job.attempts[retry_id] = TaskAttemptSpan(
                    task_id=retry_id, attempt=detail.get("attempt")
                )
                job.attempt_order.append(retry_id)
        elif type_ == "reduce_started":
            job_for(event["job_id"]).reduce_start = time
        elif type_ == "reduce_finished":
            job = job_for(event["job_id"])
            job.reduce_end = time
            detail = event.get("detail") or {}
            job.reduce_outputs = detail.get("outputs", 0)
        elif type_ in ("job_succeeded", "job_killed"):
            job = job_for(event["job_id"])
            job.finish_time = time
            job.state = "succeeded" if type_ == "job_succeeded" else "killed"
        elif type_ == "provider_evaluation":
            job = job_for(event["job_id"])
            response = event["response"]
            job.evaluations.append(
                Evaluation(
                    seq=event["seq"],
                    time=time,
                    phase=event["phase"],
                    policy=event.get("policy"),
                    knobs=event.get("knobs"),
                    progress=event.get("progress"),
                    cluster=event.get("cluster"),
                    response_kind=response["kind"],
                    response_splits=response["splits"],
                    response_pruned=response.get("pruned", 0),
                    response_ci=response.get("ci"),
                )
            )
            if job.policy is None:
                job.policy = event.get("policy")
            if job.knobs is None:
                job.knobs = event.get("knobs")
            cluster = event.get("cluster")
            if cluster and model.total_map_slots is None:
                model.total_map_slots = cluster.get("total_map_slots")
        elif type_ == "scan_span":
            owner = event.get("job_id")
            if owner:
                job_for(owner).scan_spans.append(event)
        elif type_ == "metrics_snapshot":
            if event["scope"] == "job" and event.get("job_id"):
                job_for(event["job_id"]).metrics = event["metrics"]
            else:
                model.cluster_metrics.append(event)
        elif type_.startswith("sweep_"):
            model.sweep_events.append(event)

    for job in model.jobs.values():
        job.waves = _build_waves(job)
    return model


def _build_waves(job: JobModel) -> list[Wave]:
    """Input increments: provider responses are the source of truth.

    The two substrates record ``job_submitted.splits`` differently (the
    sim attaches the initial grab at submission; the LocalRunner is
    handed the whole input up front), so for dynamic jobs — any job with
    provider evaluations — waves come from the provider's own grab
    history: the ``initial`` response plus every ``INPUT_AVAILABLE``
    answer. Static jobs get one wave from submission.
    """
    waves: list[Wave] = []
    if job.evaluations:
        for evaluation in job.evaluations:
            if evaluation.response_splits <= 0:
                continue
            source = (
                "initial" if evaluation.phase == "initial" else "input_added"
            )
            waves.append(
                Wave(
                    index=len(waves),
                    time=evaluation.time,
                    splits=evaluation.response_splits,
                    source=source,
                )
            )
        return waves
    if job.submitted_splits:
        waves.append(
            Wave(
                index=0,
                time=job.submit_time or 0.0,
                splits=job.submitted_splits,
                source="initial",
            )
        )
    for time, splits in job.input_added_events:
        waves.append(
            Wave(index=len(waves), time=time, splits=splits, source="input_added")
        )
    return waves


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def policy_summaries(model: RunModel) -> dict[str, PolicySummary]:
    """Per-policy aggregates over every job in the trace, name-sorted."""
    summaries: dict[str, PolicySummary] = {}
    for policy, jobs in sorted(model.jobs_by_policy().items()):
        times = [j.response_time for j in jobs if j.response_time is not None]
        running = [
            mean for mean in (j.mean_running_maps() for j in jobs) if mean is not None
        ]
        mean_running = _mean(running) if running else None
        utilization = None
        if mean_running is not None and model.total_map_slots:
            utilization = 100.0 * mean_running / model.total_map_slots
        totals = [float(j.total_splits) for j in jobs if j.total_splits is not None]
        summaries[policy] = PolicySummary(
            policy=policy,
            jobs=len(jobs),
            time_to_k=_mean(times) if times else None,
            splits_consumed=_mean([float(j.splits_completed) for j in jobs]),
            splits_added=_mean([float(j.splits_added) for j in jobs]),
            splits_total=_mean(totals) if totals else None,
            records_processed=_mean([float(j.records_processed) for j in jobs]),
            splits_pruned=_mean([float(j.splits_pruned) for j in jobs]),
            # Periodic evaluations only, matching JobResult.evaluations.
            evaluations=_mean(
                [
                    float(sum(1 for e in j.evaluations if e.phase == "evaluate"))
                    for j in jobs
                ]
            ),
            increments=_mean([float(len(j.waves)) for j in jobs]),
            failed_attempts=_mean([float(j.failed_attempts) for j in jobs]),
            mean_running_maps=mean_running,
            utilization_pct=utilization,
        )
    return summaries
