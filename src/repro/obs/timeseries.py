"""Windowed time series and streaming quantile sketches for live telemetry.

The post-hoc observability layers (trace, analyze, report) see a run
only after it finishes; the :class:`~repro.obs.hub.TelemetryHub` needs
bounded-memory structures it can update on every event *while* jobs run
and read from other threads (the HTTP exporter, ``repro top``). Two
primitives cover it:

* :class:`TimeSeries` — a fixed-capacity ring buffer of ``(t, value)``
  points. Appends are O(1), memory is bounded by ``capacity`` no matter
  how long the run, and readers get a consistent chronological copy.
  :meth:`rates` turns a cumulative-counter series into per-second
  deltas (the rows/s sparkline input).
* :class:`QuantileSketch` — the log-bucket
  :class:`~repro.obs.metrics.Histogram` re-exported under its streaming
  role. The histogram's bucket layout (20 buckets per decade, clamped)
  is already a bounded mergeable sketch: merging two sketches by adding
  bucket counts answers every quantile exactly as one sketch observing
  both streams would. p50/p95/p99 therefore come out of live series at
  any instant with ~6% relative rank error, and worker-side sketches
  fold into the hub's without loss.

Everything here is plain data plus arithmetic — no locks (the hub
serializes access), no wall-clock reads (callers stamp points), and no
imports above :mod:`repro.obs.metrics` in the layer graph.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.metrics import Histogram, SNAPSHOT_QUANTILES


class QuantileSketch(Histogram):
    """A mergeable streaming quantile sketch (log-bucket histogram).

    Inherits everything from :class:`~repro.obs.metrics.Histogram` —
    ``observe``, ``quantile``, ``merge``, ``snapshot`` — and exists as a
    named type so telemetry code reads as what it is: the hub keeps one
    sketch per (job, latency kind), not a registry metric.
    """

    __slots__ = ()

    @classmethod
    def merged(cls, sketches: Iterable["Histogram"], name: str = "merged") -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``' observations."""
        result = cls(name)
        for sketch in sketches:
            result.merge(sketch)
        return result

    def quantiles(self) -> dict[str, float | None]:
        """The standard snapshot quantiles (p50/p95/p99), None when empty."""
        if not self.count:
            return {key: None for key, _q in SNAPSHOT_QUANTILES}
        return {key: self.quantile(q) for key, q in SNAPSHOT_QUANTILES}


class TimeSeries:
    """Fixed-capacity ring buffer of chronological ``(t, value)`` points.

    ``append`` keeps the newest ``capacity`` points; times must be
    non-decreasing (the hub stamps them from one clock, so out-of-order
    points indicate a caller bug and raise). ``window(seconds)`` and
    ``rates()`` are the read-side helpers the renderers use.
    """

    __slots__ = ("capacity", "_times", "_values", "_start", "_size", "total_points")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._times: list[float] = [0.0] * capacity
        self._values: list[float] = [0.0] * capacity
        self._start = 0
        self._size = 0
        self.total_points = 0
        """How many points were ever appended (ring overwrites included)."""

    def __len__(self) -> int:
        return self._size

    def append(self, t: float, value: float) -> None:
        if self._size:
            last = self._times[(self._start + self._size - 1) % self.capacity]
            if t < last:
                raise ValueError(
                    f"time series points must be chronological: {t} < {last}"
                )
        if self._size == self.capacity:
            index = self._start
            self._start = (self._start + 1) % self.capacity
            self._size -= 1
        else:
            index = (self._start + self._size) % self.capacity
        self._times[index] = t
        self._values[index] = value
        self._size += 1
        self.total_points += 1

    def points(self) -> list[tuple[float, float]]:
        """Chronological copy of the retained points."""
        return [
            (
                self._times[(self._start + i) % self.capacity],
                self._values[(self._start + i) % self.capacity],
            )
            for i in range(self._size)
        ]

    def last(self) -> tuple[float, float] | None:
        """The newest point, or None when empty."""
        if not self._size:
            return None
        index = (self._start + self._size - 1) % self.capacity
        return (self._times[index], self._values[index])

    def window(self, seconds: float) -> list[tuple[float, float]]:
        """The points within ``seconds`` of the newest point."""
        newest = self.last()
        if newest is None:
            return []
        cutoff = newest[0] - seconds
        return [(t, v) for t, v in self.points() if t >= cutoff]

    def rates(self) -> list[tuple[float, float]]:
        """Per-second deltas of a cumulative series.

        Each output point ``(t_i, rate)`` covers the interval from the
        previous retained point; zero-duration intervals are skipped
        (two events stamped identically contribute to the next real
        interval instead of a division by zero). A counter reset
        (value decreasing) restarts the rate at zero rather than going
        negative.
        """
        points = self.points()
        rates: list[tuple[float, float]] = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            if dt <= 0:
                continue
            delta = v1 - v0
            rates.append((t1, delta / dt if delta > 0 else 0.0))
        return rates
