"""Opt-in live progress: a read-side listener over the trace stream.

``--progress`` on ``repro sample``/``query``/``sweep`` attaches a
:class:`ProgressReporter` to the run's :class:`TraceRecorder` (creating
an in-memory recorder when no ``--trace-out`` was asked for). The
reporter is a plain event listener: it sees exactly the events the
recorder emits and writes compact one-liners to *stderr*, so job stdout
— results, tables, JSON — is byte-identical with or without it. That is
the same trace-parity contract the recorder itself honors (DESIGN.md
§9): observation never changes the observed run.

High-frequency event types (``map_finished``, ``scan_span``) are
throttled to every Nth occurrence per job so a 5k-split run does not
print 5k lines; lifecycle transitions, provider evaluations, input
increments, and sweep points always print.
"""

from __future__ import annotations

import sys
from typing import IO

#: Always-printed event types (low volume, high signal).
_LIFECYCLE = {
    "job_submitted",
    "job_activated",
    "input_complete",
    "reduce_started",
    "reduce_finished",
    "job_succeeded",
    "job_killed",
    "map_failed",
    "map_retried",
    "sweep_started",
    "sweep_point",
    "sweep_finished",
}

#: Throttled event types: printed every Nth occurrence per job.
_THROTTLED = {"map_finished", "scan_span"}


class ProgressReporter:
    """Callable listener for :meth:`TraceRecorder.add_listener`.

    Strictly read-side: never mutates events, writes only to ``stream``
    (stderr by default).
    """

    def __init__(self, stream: IO[str] | None = None, *, every: int = 25) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._counts: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def __call__(self, event: dict) -> None:
        line = self._format(event)
        if line is not None:
            self._stream.write(line + "\n")

    # ------------------------------------------------------------------
    def _format(self, event: dict) -> str | None:
        type_ = event["type"]
        time = event.get("time", 0.0)
        job_id = event.get("job_id") or "-"
        prefix = f"[{time:>10.2f}s] {job_id}"

        if type_ == "provider_evaluation":
            response = event.get("response") or {}
            kind = response.get("kind", "?")
            splits = response.get("splits", 0)
            extra = f" +{splits} splits" if splits else ""
            return f"{prefix} provider[{event.get('policy')}] -> {kind}{extra}"
        if type_ == "input_added":
            detail = event.get("detail") or {}
            return f"{prefix} input_added +{detail.get('splits', '?')} splits"
        if type_ == "metrics_snapshot":
            if event.get("scope") != "job":
                return None
            metrics = event.get("metrics") or {}
            outputs = metrics.get("outputs_produced")
            produced = outputs["value"] if outputs else "?"
            return f"{prefix} metrics outputs_produced={produced}"
        if type_ in _THROTTLED:
            key = (job_id, type_)
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
            if count % self._every:
                return None
            return f"{prefix} {type_} x{count}"
        if type_ in _LIFECYCLE:
            detail = event.get("detail") or {}
            bits = ""
            if type_ == "job_submitted":
                bits = (
                    f" name={detail.get('name')} splits={detail.get('splits')}"
                    f" k={detail.get('sample_size')}"
                )
            elif type_ == "sweep_point":
                cached = " (cached)" if event.get("cached") else ""
                return (
                    f"[{time:>10.2f}s] sweep point {event.get('index')}"
                    f" {event.get('kind')}{cached}"
                )
            elif type_ in ("sweep_started", "sweep_finished"):
                return f"[{time:>10.2f}s] {type_} points={event.get('points')}"
            return f"{prefix} {type_}{bits}"
        return None
