"""Paper-invariant auditor: replay a trace and verify the Table I contract.

A recorded trace carries, for every Input Provider invocation, the exact
``JobProgress`` and ``ClusterStatus`` the provider saw plus the policy
knobs in force (work threshold, grab-limit expression, evaluation
interval). That is enough to *re-check the paper's policy contract after
the fact*, independently of the engine that produced the run:

**Policy contract (paper §III-A/§III-B, Table I)**

* ``grab_limit`` — no response ever hands out more splits than the
  policy's GrabLimit evaluated against the recorded TS/AS.
* ``work_threshold`` — between consecutive evaluations, the newly
  completed splits reach the policy's WorkThreshold (as a fraction of
  the splits added so far), except via the all-work-done escape hatch
  (``splits_pending == 0``; see DESIGN.md §5).
* ``end_of_input`` — ``END_OF_INPUT`` is only declared once the job has
  ``k`` results (``outputs_produced >= sample_size``) or the input is
  exhausted (every split either added or retired via split statistics —
  a stats-aware provider's pruned splits count as processed with zero
  matches, so ``splits_added + pruned >= total`` is exhaustion).
* ``pruned_monotonic`` — the cumulative pruned count never decreases and
  never exceeds the job's total split count.
* ``no_input_after_end`` — after ``END_OF_INPUT`` the provider is never
  invoked again and no further splits are added.
* ``accuracy_stopping`` — for accuracy (error-bounded aggregation) jobs,
  whose evaluations carry a ``ci`` state: once the CI target is met the
  provider never grants more input, and ``END_OF_INPUT`` is declared
  only with the target met or the input exhausted.
* ``splits_added_replay`` — at every evaluation, the progress the
  provider saw satisfies ``splits_added == sum of all prior grants``
  (client/tracker split accounting agrees with the provider's own
  history).

**Task accounting (Hadoop attempt semantics)**

* ``task_terminal`` — every started map attempt reaches exactly one
  terminal event (``map_finished`` or ``map_failed``); no terminal
  without a start; no attempt terminates twice.
* ``retry_accounting`` — every failure is followed by a retry attempt
  unless the job was killed, and the job's ``failed_map_attempts``
  counter equals the number of ``map_failed`` events.
* ``counter_consistency`` — the job's final metrics snapshot agrees
  with the event stream (records, map outputs, evaluations,
  increments).

The auditor is read-only and substrate-agnostic: LocalRunner traces have
no task lifecycle, so the task checks vacuously pass there, while the
policy checks replay identically on both substrates. ``repro audit``
exits non-zero on any violation so CI can gate on it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policy import GrabLimitExpression
from repro.errors import ReproError


class AuditError(ReproError):
    """The trace cannot be audited (malformed beyond schema checks)."""


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the event that broke it."""

    check: str
    job_id: str | None
    seq: int | None
    message: str

    def describe(self) -> str:
        where = f"{self.job_id or '(run)'}"
        if self.seq is not None:
            where += f" seq={self.seq}"
        return f"[{self.check}] {where}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of one audit: violations plus replay statistics."""

    violations: list[Violation] = field(default_factory=list)
    jobs_checked: int = 0
    evaluations_checked: int = 0
    attempts_checked: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, check: str, job_id: str | None, seq: int | None, message: str) -> None:
        self.violations.append(
            Violation(check=check, job_id=job_id, seq=seq, message=message)
        )


def _max_grab(grab_source: str, *, total_slots: float, available_slots: float) -> float:
    """Replay ``Policy.max_grab`` from the recorded grab-limit expression."""
    value = GrabLimitExpression(grab_source).evaluate(
        ts=total_slots, available=available_slots
    )
    if value <= 0:
        return 0
    if math.isinf(value):
        return math.inf
    return math.ceil(value)


def _work_threshold_splits(pct: float, splits_added: int) -> int:
    return math.ceil(pct / 100.0 * splits_added)


# ---------------------------------------------------------------------------
# Per-job audit passes
# ---------------------------------------------------------------------------
def _audit_policy_contract(job, report: AuditReport) -> None:
    """Replay every provider evaluation against the Table I contract."""
    granted = 0  # splits handed out so far (initial + INPUT_AVAILABLE)
    ended_at: int | None = None  # seq of the END_OF_INPUT response
    prev_completed = 0
    prev_pruned = 0
    k = job.sample_size

    for evaluation in job.evaluations:
        report.evaluations_checked += 1
        seq = evaluation.seq
        knobs = evaluation.knobs or {}
        cluster = evaluation.cluster or {}
        progress = evaluation.progress
        kind = evaluation.response_kind
        splits = evaluation.response_splits
        pruned = evaluation.response_pruned

        # Pruned is a cumulative counter: never decreasing, never more
        # than the job's whole input.
        if pruned < prev_pruned:
            report.add(
                "pruned_monotonic", job.job_id, seq,
                f"cumulative pruned count fell from {prev_pruned} to {pruned}",
            )
        if job.total_splits is not None and pruned > job.total_splits:
            report.add(
                "pruned_monotonic", job.job_id, seq,
                f"pruned {pruned} splits but the job only has "
                f"{job.total_splits}",
            )
        prev_pruned = max(prev_pruned, pruned)

        if ended_at is not None:
            report.add(
                "no_input_after_end", job.job_id, seq,
                f"provider invoked again after END_OF_INPUT (seq={ended_at})",
            )

        # Response shape: only INPUT_AVAILABLE carries splits.
        if kind == "INPUT_AVAILABLE" and splits <= 0:
            report.add(
                "response_shape", job.job_id, seq,
                "INPUT_AVAILABLE response carries no splits",
            )
        if kind != "INPUT_AVAILABLE" and splits > 0 and evaluation.phase != "initial":
            report.add(
                "response_shape", job.job_id, seq,
                f"{kind} response carries {splits} splits",
            )

        # GrabLimit: replayed from the recorded expression and TS/AS.
        grab_source = knobs.get("grab_limit")
        if grab_source and splits > 0:
            limit = _max_grab(
                grab_source,
                total_slots=cluster.get("total_map_slots", 0),
                available_slots=cluster.get("available_map_slots", 0),
            )
            if splits > limit:
                report.add(
                    "grab_limit", job.job_id, seq,
                    f"granted {splits} splits, but GrabLimit "
                    f"{grab_source!r} allows {limit:g} "
                    f"(TS={cluster.get('total_map_slots')}, "
                    f"AS={cluster.get('available_map_slots')})",
                )

        if evaluation.phase == "evaluate" and progress is not None:
            # Splits-added replay: tracker-side accounting must equal the
            # provider's own grant history.
            if progress["splits_added"] != granted:
                report.add(
                    "splits_added_replay", job.job_id, seq,
                    f"progress reports splits_added={progress['splits_added']} "
                    f"but prior responses granted {granted}",
                )

            # WorkThreshold between consecutive evaluations.
            threshold_pct = knobs.get("work_threshold_pct")
            if threshold_pct is not None:
                threshold = _work_threshold_splits(
                    threshold_pct, progress["splits_added"]
                )
                newly = progress["splits_completed"] - prev_completed
                if newly < threshold and progress["splits_pending"] > 0:
                    report.add(
                        "work_threshold", job.job_id, seq,
                        f"evaluated after {newly} newly completed splits "
                        f"(< threshold {threshold} = "
                        f"{threshold_pct:g}% of {progress['splits_added']}) "
                        f"with {progress['splits_pending']} splits in flight",
                    )
            prev_completed = progress["splits_completed"]

            # END_OF_INPUT only at >= k results or input exhaustion.
            # Splits the provider pruned via statistics were processed
            # with provably zero matches, so they count toward
            # exhaustion without ever being added.
            if kind == "END_OF_INPUT":
                exhausted = (
                    progress["splits_added"] + pruned
                    >= progress["total_splits_known"]
                )
                if k is not None and progress["outputs_produced"] < k and not exhausted:
                    report.add(
                        "end_of_input", job.job_id, seq,
                        f"END_OF_INPUT at {progress['outputs_produced']} outputs "
                        f"(< k={k}) with "
                        f"{progress['total_splits_known'] - progress['splits_added'] - pruned} "
                        "splits never added nor pruned",
                    )
        elif evaluation.phase == "initial" and kind == "END_OF_INPUT":
            # Initial END_OF_INPUT means the whole input was grabbed
            # (or the remainder was pruned via split statistics).
            if job.total_splits is not None and splits + pruned < job.total_splits:
                report.add(
                    "end_of_input", job.job_id, seq,
                    f"initial grab declared END_OF_INPUT with {splits} of "
                    f"{job.total_splits} splits ({pruned} pruned)",
                )

        # Accuracy stopping contract: accuracy-provider evaluations carry
        # a CI snapshot, which is exactly enough to replay the stopping
        # rule after the fact.
        ci = evaluation.response_ci
        if ci is not None:
            if ci.get("met") and kind == "INPUT_AVAILABLE":
                report.add(
                    "accuracy_stopping", job.job_id, seq,
                    f"granted {splits} splits although the CI target is "
                    f"already met (estimate={ci.get('estimate')} "
                    f"+/- {ci.get('half_width')} at {ci.get('target_pct')}% "
                    "target)",
                )
            if kind == "END_OF_INPUT" and not ci.get("met"):
                if evaluation.phase == "evaluate" and progress is not None:
                    exhausted = (
                        progress["splits_added"] + splits + pruned
                        >= progress["total_splits_known"]
                    )
                elif job.total_splits is not None:
                    exhausted = splits + pruned >= job.total_splits
                else:
                    exhausted = True  # total unknown; cannot dispute
                if not exhausted:
                    report.add(
                        "accuracy_stopping", job.job_id, seq,
                        "END_OF_INPUT with the CI target unmet and input "
                        f"not exhausted (n={ci.get('n')} splits observed, "
                        f"estimate={ci.get('estimate')} "
                        f"+/- {ci.get('half_width')})",
                    )

        if kind == "END_OF_INPUT":
            ended_at = seq
        if splits > 0 and kind in ("INPUT_AVAILABLE", "END_OF_INPUT"):
            granted += splits

    # No splits added after END_OF_INPUT (tracker side).
    if ended_at is not None:
        end_time = next(
            e.time for e in job.evaluations if e.seq == ended_at
        )
        for time, splits in job.input_added_events:
            if time > end_time:
                report.add(
                    "no_input_after_end", job.job_id, None,
                    f"{splits} splits added at t={time:g} after END_OF_INPUT "
                    f"at t={end_time:g}",
                )


def _audit_task_accounting(job, report: AuditReport) -> None:
    """Attempt lifecycle + counter consistency (sim-substrate traces)."""
    if not job.attempts:
        return

    for task_id in job.attempt_order:
        attempt = job.attempts[task_id]
        report.attempts_checked += 1
        if attempt.start is None:
            # map_retried creates the attempt; it must still be started
            # before it can terminate. A terminal with no start is broken.
            if attempt.outcome is not None:
                report.add(
                    "task_terminal", job.job_id, None,
                    f"attempt {task_id} reached terminal state "
                    f"{attempt.outcome!r} without a map_started event",
                )
            elif job.state is not None:
                report.add(
                    "task_terminal", job.job_id, None,
                    f"attempt {task_id} was created (retry) but never started",
                )
        elif attempt.outcome is None and job.state is not None:
            report.add(
                "task_terminal", job.job_id, None,
                f"attempt {task_id} started at t={attempt.start:g} but has "
                "no terminal event (map_finished/map_failed)",
            )

    failed = [a for a in job.attempts.values() if a.outcome == "failed"]
    if job.state == "succeeded":
        for attempt in failed:
            if attempt.retried_as is None:
                report.add(
                    "retry_accounting", job.job_id, None,
                    f"failed attempt {attempt.task_id} has no retry but the "
                    "job succeeded",
                )

    metrics = job.metrics
    if metrics is None:
        if job.state is not None:
            report.add(
                "counter_consistency", job.job_id, None,
                "finished job has no metrics_snapshot event",
            )
        return

    def counter(name: str):
        entry = metrics.get(name)
        return None if entry is None else entry["value"]

    checks = (
        ("failed_map_attempts", len(failed)),
        (
            "records_processed",
            sum(a.records for a in job.attempts.values() if a.outcome == "finished"),
        ),
        (
            "outputs_produced",
            sum(a.outputs for a in job.attempts.values() if a.outcome == "finished"),
        ),
        (
            "provider_evaluations",
            sum(1 for e in job.evaluations if e.phase == "evaluate"),
        ),
        (
            "input_increments",
            len(job.input_added_events) + (1 if job.submitted_splits else 0),
        ),
    )
    for name, expected in checks:
        recorded = counter(name)
        if recorded is not None and recorded != expected:
            report.add(
                "counter_consistency", job.job_id, None,
                f"counter {name}={recorded} but the event stream implies "
                f"{expected}",
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def audit_events(events: Iterable[dict]) -> AuditReport:
    """Audit a full event stream; returns the report (never raises on
    violations — raising is reserved for untraceable input)."""
    from repro.obs.analyze import analyze_trace

    model = analyze_trace(events)
    report = AuditReport()
    for job in model.jobs.values():
        report.jobs_checked += 1
        _audit_policy_contract(job, report)
        _audit_task_accounting(job, report)
        if (
            job.sample_size is None
            and job.evaluations
            # Accuracy jobs stop on CI width, not k; their evaluations
            # carry a ci state and the accuracy_stopping check applies.
            and not any(e.response_ci for e in job.evaluations)
        ):
            report.notes.append(
                f"{job.job_id}: no sample_size recorded; END_OF_INPUT k-check "
                "limited to input exhaustion"
            )
    return report


def render_audit(report: AuditReport) -> str:
    """Human-readable audit outcome (what ``repro audit`` prints)."""
    lines = [
        f"jobs audited:        {report.jobs_checked}",
        f"evaluations checked: {report.evaluations_checked}",
        f"attempts checked:    {report.attempts_checked}",
    ]
    for note in report.notes:
        lines.append(f"note: {note}")
    if report.ok:
        lines.append("audit OK: all paper invariants hold")
    else:
        lines.append(f"audit FAILED: {len(report.violations)} violation(s)")
        for violation in report.violations:
            lines.append(f"  {violation.describe()}")
    return "\n".join(lines)


def audit_json(report: AuditReport) -> str:
    """Machine-readable audit outcome (``repro audit --format json``).

    Stable key order and a trailing newline, so the doctor and CI can
    consume audits without parsing the human text — and so two runs of
    the same trace compare byte-for-byte.
    """
    payload = {
        "ok": report.ok,
        "jobs_checked": report.jobs_checked,
        "evaluations_checked": report.evaluations_checked,
        "attempts_checked": report.attempts_checked,
        "notes": list(report.notes),
        "violations": [
            {
                "check": violation.check,
                "job_id": violation.job_id,
                "seq": violation.seq,
                "message": violation.message,
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
