"""Comparative run reports: deterministic markdown/HTML from traces.

``repro report`` turns one or more recorded traces into the tables the
paper reads off its figures:

* a per-job table (policy, k, time-to-k, split and record accounting);
* a per-policy comparison table mirroring Figures 5–8 — mean time-to-k,
  splits consumed (absolute and relative to the Hadoop baseline when the
  trace contains one), map-slot utilization;
* with ``--diff`` and exactly two traces, a side-by-side per-policy
  metric diff (A, B, delta) for regression-hunting between runs.

Rendering is a pure function of the analyzed models: the builder emits a
list of typed blocks (headings, paragraphs, tables) and the two
renderers serialize those blocks. No timestamps, hashes, or environment
data are embedded, so the same trace bytes always produce the same
report bytes — CI uploads the output as an artifact and any churn in it
is a real behavior change.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.analyze import RunModel, analyze_trace, policy_summaries


# ---------------------------------------------------------------------------
# Report blocks
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Heading:
    level: int
    text: str


@dataclass(frozen=True)
class Paragraph:
    text: str


@dataclass(frozen=True)
class Table:
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]


Block = Heading | Paragraph | Table


def _fmt(value, *, digits: int = 2) -> str:
    """Deterministic cell formatting; '-' for unknown values."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.{digits}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _jobs_table(model: RunModel) -> Table:
    headers = (
        "job", "name", "policy", "state", "k", "time-to-k (s)",
        "splits added", "splits consumed", "splits total",
        "records", "evals", "waves", "failed maps",
    )
    rows = []
    for job in model.jobs.values():
        evaluations = sum(1 for e in job.evaluations if e.phase == "evaluate")
        rows.append(
            (
                job.job_id,
                _fmt(job.name),
                _fmt(job.policy or ("(static)" if job.dynamic is False else None)),
                _fmt(job.state or "open"),
                _fmt(job.sample_size),
                _fmt(job.response_time),
                _fmt(job.splits_added),
                _fmt(job.splits_completed),
                _fmt(job.total_splits),
                _fmt(job.records_processed),
                _fmt(evaluations),
                _fmt(len(job.waves)),
                _fmt(job.failed_attempts),
            )
        )
    return Table(headers=headers, rows=tuple(rows))


def _policy_table(model: RunModel) -> Table:
    """The Figures 5–8 comparison: one row per policy, Hadoop-relative."""
    summaries = policy_summaries(model)
    baseline = summaries.get("Hadoop")
    headers = (
        "policy", "jobs", "time-to-k (s)", "splits consumed",
        "vs Hadoop", "splits added", "records", "evals",
        "waves", "utilization %",
    )
    rows = []
    for name, summary in summaries.items():
        ratio = None
        if baseline is not None and baseline.splits_consumed:
            ratio = summary.splits_consumed / baseline.splits_consumed
        rows.append(
            (
                name,
                _fmt(summary.jobs),
                _fmt(summary.time_to_k),
                _fmt(summary.splits_consumed),
                f"{ratio:.2f}x" if ratio is not None else "-",
                _fmt(summary.splits_added),
                _fmt(summary.records_processed),
                _fmt(summary.evaluations),
                _fmt(summary.increments),
                _fmt(summary.utilization_pct, digits=1),
            )
        )
    return Table(headers=headers, rows=tuple(rows))


def _trace_blocks(label: str, model: RunModel) -> list[Block]:
    blocks: list[Block] = [Heading(2, f"Trace: {label}")]
    slots = _fmt(model.total_map_slots)
    blocks.append(
        Paragraph(
            f"{model.events:,} events, {len(model.jobs):,} job(s), "
            f"total map slots: {slots}."
        )
    )
    if model.jobs:
        blocks.append(Heading(3, "Jobs"))
        blocks.append(_jobs_table(model))
        blocks.append(Heading(3, "Per-policy comparison (Figures 5-8)"))
        blocks.append(_policy_table(model))
    if model.sweep_events:
        points = sum(1 for e in model.sweep_events if e["type"] == "sweep_point")
        cached = sum(
            1
            for e in model.sweep_events
            if e["type"] == "sweep_point" and e.get("cached")
        )
        blocks.append(
            Paragraph(f"Sweep: {points:,} point(s) recorded, {cached:,} from cache.")
        )
    return blocks


#: Per-policy metrics surfaced in diff mode, as (label, attribute).
_DIFF_METRICS = (
    ("jobs", "jobs"),
    ("time-to-k (s)", "time_to_k"),
    ("splits consumed", "splits_consumed"),
    ("splits added", "splits_added"),
    ("records", "records_processed"),
    ("splits pruned", "splits_pruned"),
    ("evals", "evaluations"),
    ("waves", "increments"),
    ("failed maps", "failed_attempts"),
    ("utilization %", "utilization_pct"),
)


def _diff_blocks(
    label_a: str, model_a: RunModel, label_b: str, model_b: RunModel
) -> list[Block]:
    blocks: list[Block] = [Heading(2, f"Diff: {label_a} vs {label_b}")]
    summaries_a = policy_summaries(model_a)
    summaries_b = policy_summaries(model_b)
    policies = sorted(set(summaries_a) | set(summaries_b))
    for policy in policies:
        a = summaries_a.get(policy)
        b = summaries_b.get(policy)
        blocks.append(Heading(3, f"Policy {policy}"))
        if a is None or b is None:
            present, missing = (label_a, label_b) if b is None else (label_b, label_a)
            blocks.append(
                Paragraph(f"Only present in {present}; no jobs in {missing}.")
            )
            continue
        rows = []
        for metric_label, attr in _DIFF_METRICS:
            va = getattr(a, attr)
            vb = getattr(b, attr)
            delta = (
                vb - va if isinstance(va, (int, float)) and isinstance(vb, (int, float))
                else None
            )
            rows.append(
                (metric_label, _fmt(va), _fmt(vb), _fmt(delta) if delta is not None else "-")
            )
        blocks.append(
            Table(
                headers=("metric", label_a, label_b, "delta"),
                rows=tuple(rows),
            )
        )
    return blocks


def build_report(
    traces: Sequence[tuple[str, Iterable[dict]]], *, diff: bool = False
) -> list[Block]:
    """Assemble report blocks for labeled event streams.

    ``diff=True`` requires exactly two traces and appends a per-policy
    A/B/delta section after the per-trace sections.
    """
    if diff and len(traces) != 2:
        raise ValueError(f"diff mode needs exactly 2 traces, got {len(traces)}")
    models = [(label, analyze_trace(events)) for label, events in traces]
    blocks: list[Block] = [Heading(1, "Run report")]
    for label, model in models:
        blocks.extend(_trace_blocks(label, model))
    if diff:
        (label_a, model_a), (label_b, model_b) = models
        blocks.extend(_diff_blocks(label_a, model_a, label_b, model_b))
    return blocks


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------
def render_markdown(blocks: Sequence[Block]) -> str:
    out: list[str] = []
    for block in blocks:
        if isinstance(block, Heading):
            out.append(f"{'#' * block.level} {block.text}")
        elif isinstance(block, Paragraph):
            out.append(block.text)
        elif isinstance(block, Table):
            widths = [
                max(len(block.headers[i]), *(len(r[i]) for r in block.rows))
                if block.rows
                else len(block.headers[i])
                for i in range(len(block.headers))
            ]
            def line(cells):
                return "| " + " | ".join(
                    cell.ljust(width) for cell, width in zip(cells, widths)
                ) + " |"
            out.append(line(block.headers))
            out.append(line(["-" * width for width in widths]))
            for row in block.rows:
                out.append(line(row))
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"


def render_html(blocks: Sequence[Block]) -> str:
    out: list[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\"><title>Run report</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em}",
        "table{border-collapse:collapse;margin:1em 0}",
        "th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:left}",
        "th{background:#eee}",
        "</style></head><body>",
    ]
    for block in blocks:
        if isinstance(block, Heading):
            out.append(
                f"<h{block.level}>{_html.escape(block.text)}</h{block.level}>"
            )
        elif isinstance(block, Paragraph):
            out.append(f"<p>{_html.escape(block.text)}</p>")
        elif isinstance(block, Table):
            out.append("<table>")
            out.append(
                "<tr>"
                + "".join(f"<th>{_html.escape(h)}</th>" for h in block.headers)
                + "</tr>"
            )
            for row in block.rows:
                out.append(
                    "<tr>"
                    + "".join(f"<td>{_html.escape(c)}</td>" for c in row)
                    + "</tr>"
                )
            out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render_report(
    traces: Sequence[tuple[str, Iterable[dict]]],
    *,
    fmt: str = "md",
    diff: bool = False,
) -> str:
    """One-call build + render; ``fmt`` is ``"md"`` or ``"html"``."""
    blocks = build_report(traces, diff=diff)
    if fmt == "md":
        return render_markdown(blocks)
    if fmt == "html":
        return render_html(blocks)
    raise ValueError(f"unknown report format {fmt!r} (expected 'md' or 'html')")
