"""Human-readable views over a recorded trace (``repro trace/metrics``)."""

from __future__ import annotations

from typing import Iterable


def _one_line(event: dict) -> str:
    """Compact single-line summary of one trace event."""
    type_ = event["type"]
    time = event["time"]
    prefix = f"[{time:10.3f}] {type_:20s}"
    if type_ == "provider_evaluation":
        response = event["response"]
        policy = event.get("policy") or "-"
        progress = event.get("progress")
        done = f"{progress['splits_completed']}/{progress['splits_added']}" if progress else "-"
        cluster = event.get("cluster") or {}
        slots = f"{cluster.get('available_map_slots', '?')}/{cluster.get('total_map_slots', '?')}"
        return (
            f"{prefix} policy={policy} phase={event['phase']} done={done} "
            f"slots={slots} -> {response['kind']} splits={response['splits']}"
        )
    if type_ == "scan_span":
        # rows_per_sec is None when elapsed_s was 0; a legitimate 0.0
        # rate (zero rows over positive time) must still be shown.
        rps = event.get("rows_per_sec")
        rate = f" ({rps:,.0f} rows/s)" if rps is not None else ""
        return (
            f"{prefix} {event['task_id']} split={event['split_id']} "
            f"mode={event['mode']} rows={event['rows']} outputs={event['outputs']}{rate}"
        )
    if type_ == "metrics_snapshot":
        return f"{prefix} scope={event['scope']} ({len(event['metrics'])} metrics)"
    if type_ == "sweep_point":
        state = "cached" if event["cached"] else "computed"
        return f"{prefix} #{event['index']} {event['kind']} [{state}]"
    if type_ in ("sweep_started", "sweep_finished"):
        return f"{prefix} points={event['points']}"
    parts = [prefix]
    if event.get("task_id"):
        parts.append(str(event["task_id"]))
    detail = event.get("detail")
    if detail:
        parts.append(" ".join(f"{k}={v}" for k, v in detail.items()))
    return " ".join(parts)


def render_timeline(events: Iterable[dict], *, job_id: str | None = None) -> str:
    """Per-job timeline: events grouped by job, ordered by (time, seq).

    Events without a ``job_id`` (sweep progress, run-scoped snapshots)
    are grouped under a ``(run)`` section at the top.
    """
    by_job: dict[str, list[dict]] = {}
    for event in events:
        owner = event.get("job_id") or "(run)"
        by_job.setdefault(owner, []).append(event)
    if job_id is not None:
        by_job = {job_id: by_job.get(job_id, [])}

    lines: list[str] = []
    # "(run)" first, then jobs in first-appearance order (dict preserves it).
    ordered = sorted(by_job, key=lambda j: (j != "(run)",))
    for owner in ordered:
        job_events = sorted(by_job[owner], key=lambda e: (e["time"], e["seq"]))
        lines.append(f"== {owner} ({len(job_events)} events) ==")
        lines.extend(_one_line(event) for event in job_events)
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def _format_value(entry: dict) -> str:
    value = entry["value"]
    if entry["kind"] == "histogram":
        if not value["count"]:
            return "count=0"
        text = (
            f"count={value['count']} mean={value['mean']:.6g} "
            f"min={value['min']:.6g} max={value['max']:.6g}"
        )
        # Quantiles appear in snapshots from the log-bucket histogram;
        # .get() keeps pre-quantile traces renderable.
        quantiles = " ".join(
            f"{key}={value[key]:.6g}"
            for key in ("p50", "p95", "p99")
            if value.get(key) is not None
        )
        return f"{text} {quantiles}" if quantiles else text
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics(events: Iterable[dict]) -> str:
    """Tables from every ``metrics_snapshot`` event in the trace."""
    snapshots = [e for e in events if e["type"] == "metrics_snapshot"]
    if not snapshots:
        return "no metrics_snapshot events in trace"
    blocks: list[str] = []
    for event in snapshots:
        scope = event["scope"]
        owner = event.get("job_id")
        title = f"{scope}" + (f" [{owner}]" if owner else "")
        lines = [f"== {title} (t={event['time']:.3f}) =="]
        metrics = event["metrics"]
        if not metrics:
            lines.append("  (empty)")
        else:
            width = max(len(name) for name in metrics)
            for name in sorted(metrics):
                entry = metrics[name]
                lines.append(
                    f"  {name:<{width}}  {entry['kind']:<9}  {_format_value(entry)}"
                )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Live-telemetry rendering primitives (repro top, bench tables)
# ---------------------------------------------------------------------------
SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], *, width: int = 24) -> str:
    """A unicode sparkline of ``values``, downsampled to ``width`` cells.

    Values may legitimately include 0.0 (an idle second in a rate
    series), so every presence check here is ``is not None`` / emptiness,
    never truthiness. A flat series renders at the lowest tick; an empty
    one renders as spaces.
    """
    series = [float(v) for v in values]
    if not series:
        return " " * width
    if len(series) > width:
        # Bucket-average down to width cells, keeping the newest points
        # rightmost (live series grow at the right edge).
        buckets: list[float] = []
        per = len(series) / width
        for index in range(width):
            lo = int(index * per)
            hi = max(lo + 1, int((index + 1) * per))
            chunk = series[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        series = buckets
    low = min(series)
    high = max(series)
    span = high - low
    if span <= 0:
        line = SPARK_TICKS[0] * len(series)
    else:
        line = "".join(
            SPARK_TICKS[
                min(len(SPARK_TICKS) - 1, int((v - low) / span * len(SPARK_TICKS)))
            ]
            for v in series
        )
    return line.rjust(width)


def progress_bar(done: int | float, total: int | float | None, *, width: int = 20) -> str:
    """``[#####.....] 50%`` — tolerant of unknown totals (renders ``?``)."""
    if total is None or total <= 0:
        return f"[{'?' * width}]   ?%"
    fraction = min(1.0, max(0.0, done / total))
    filled = int(round(fraction * width))
    return f"[{'#' * filled}{'.' * (width - filled)}] {fraction * 100:3.0f}%"


def format_duration(seconds: float | None) -> str:
    """Compact human duration; ``-`` for None, exact 0 included."""
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60:.1f}m"


def percentile_row(stats: dict | None) -> str:
    """``p50/p95/p99`` cell text from a quantile dict (sketch or
    histogram snapshot). None entries (empty sketch) render as ``-``:
    a genuine 0.0 quantile must still print as a number."""
    if not stats or not stats.get("count"):
        return "-"
    cells = [
        format_duration(stats[key]) if stats.get(key) is not None else "-"
        for key in ("p50", "p95", "p99")
    ]
    return "/".join(cells)


def percentile_table(rows: dict[str, dict], *, title: str = "latency") -> str:
    """A small aligned table of name -> quantile stats.

    ``rows`` maps a label to a quantile dict (``count`` plus
    p50/p95/p99, the sketch snapshot shape). Empty input yields a
    one-line placeholder so callers can always print the result.
    """
    if not rows:
        return f"{title}: (no samples)"
    width = max(len(name) for name in rows)
    lines = [f"{title:<{width}}  {'count':>7}  {'p50':>8}  {'p95':>8}  {'p99':>8}"]
    for name, stats in rows.items():
        count = stats.get("count") if stats else None
        if not count:
            lines.append(f"{name:<{width}}  {0:>7}  {'-':>8}  {'-':>8}  {'-':>8}")
            continue
        cells = [
            format_duration(stats[key]) if stats.get(key) is not None else "-"
            for key in ("p50", "p95", "p99")
        ]
        lines.append(
            f"{name:<{width}}  {count:>7}  {cells[0]:>8}  {cells[1]:>8}  {cells[2]:>8}"
        )
    return "\n".join(lines)
