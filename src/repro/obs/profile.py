"""Phase-scoped profiler over the system's real hot paths.

The trace layer answers *what happened*; this module answers *where the
wall time went*. A :class:`PhaseProfiler` hangs named spans off the hot
paths that matter for the paper's pipeline — the simulator kernel loop,
JobTracker dispatch, Input Provider evaluations, the scan engine's map
tasks, the shuffle, and sweep workers — recording wall *and* CPU time
per phase into a :class:`~repro.obs.metrics.MetricsRegistry`, with
opt-in :mod:`cProfile` capture per phase exported as both ``pstats``
dumps and flamegraph-collapsed stack files.

Design constraints, same as the trace layer (DESIGN.md §9c):

* **Strictly read-side.** Installing a profiler consumes no randomness
  and changes no job output bytes; the parity tests assert it, exactly
  as they do for tracing.
* **Near-zero cost when off.** Hot paths consult the module-level
  :data:`ACTIVE` slot (one attribute read); :func:`profiled_span`
  returns a shared no-op span when no profiler is installed. Phases are
  coarse — per dispatch, per evaluation, per map task — never per row
  or per event.
* **Shared clock.** :data:`wall_clock` / :data:`cpu_clock` are the one
  pair of clocks for every span *and* for the scan engine's
  ``ScanSpan`` timings, so scan spans in a trace and profiler phases in
  a snapshot can be joined in ``repro report`` without clock skew.

Phase taxonomy (the span names every consumer can rely on):

=====================  ====================================================
``kernel.run``         one :meth:`repro.sim.simulator.Simulator.run` loop
``scheduler.dispatch`` one JobTracker dispatch pass (slot assignment)
``provider.evaluate``  one Input Provider invocation (initial or periodic)
``scan.map_task``      one map-task scan over a materialized split
``shuffle.group``      one shuffle grouping of map outputs for reduce
``sweep.point``        one sweep grid cell executed in-process
=====================  ====================================================

Registry naming: phase ``P`` records histograms ``profile.P.wall_s`` and
``profile.P.cpu_s`` (count doubles as the call count) and, only when a
span body raises, counter ``profile.P.errors`` — failed spans never
contribute partial timings.

Caveats: cProfile capture cannot nest, so when phases nest (a map task
inside a kernel run) only the outermost capturing span profiles — its
stacks include the inner phases. Parallel sweep workers are separate
processes and do not report back; profile sweeps with ``--jobs 1``.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
import time as _time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: The shared profiler clocks. Everything in the repo that stamps a
#: wall-clock or CPU duration (profiler spans, scan ``ScanSpan``s, the
#: bench harness) reads these, never ``time.*`` directly, so durations
#: from different layers are directly comparable.
wall_clock = _time.perf_counter
cpu_clock = _time.process_time

#: Every profiler metric lives under this registry prefix.
PHASE_PREFIX = "profile."

#: Canonical phase names (see the module docstring for what each spans).
PHASE_KERNEL = "kernel.run"
PHASE_DISPATCH = "scheduler.dispatch"
PHASE_EVALUATE = "provider.evaluate"
PHASE_SCAN = "scan.map_task"
PHASE_SHUFFLE = "shuffle.group"
PHASE_SWEEP_POINT = "sweep.point"

KNOWN_PHASES = (
    PHASE_KERNEL,
    PHASE_DISPATCH,
    PHASE_EVALUATE,
    PHASE_SCAN,
    PHASE_SHUFFLE,
    PHASE_SWEEP_POINT,
)

#: The currently installed profiler, or None. Hot paths read this slot
#: directly (``profile.ACTIVE``); only :meth:`PhaseProfiler.install` /
#: :meth:`PhaseProfiler.uninstall` write it.
ACTIVE: "PhaseProfiler | None" = None


def active_profiler() -> "PhaseProfiler | None":
    """The installed profiler, if any."""
    return ACTIVE


class _NullSpan:
    """Shared no-op span handed out when no profiler is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def profiled_span(phase: str):
    """A span for ``phase`` on the active profiler, or the no-op span.

    The cheap hook for hot paths: one global read when profiling is off,
    a real recording span when it is on.
    """
    profiler = ACTIVE
    if profiler is None:
        return _NULL_SPAN
    return profiler.span(phase)


class _Span:
    """One timed entry into a phase. Fresh per entry, so phases can nest
    and (with locked recording) be entered from worker threads."""

    __slots__ = ("_profiler", "phase", "_wall0", "_cpu0", "_captured")

    def __init__(self, profiler: "PhaseProfiler", phase: str) -> None:
        self._profiler = profiler
        self.phase = phase
        self._captured = False

    def __enter__(self) -> "_Span":
        self._captured = self._profiler._enable_capture(self.phase)
        self._wall0 = wall_clock()
        self._cpu0 = cpu_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = wall_clock() - self._wall0
        cpu = cpu_clock() - self._cpu0
        if self._captured:
            self._profiler._disable_capture(self.phase)
        self._profiler._record(self.phase, wall, cpu, error=exc_type is not None)
        return None


class PhaseProfiler:
    """Records named phase spans into a registry; optionally cProfiles them.

    Spans record wall + CPU seconds per phase (histograms, so count,
    totals and quantiles all ride along); a span whose body raises
    increments ``profile.<phase>.errors`` instead of polluting the
    timing histograms with a partial measurement. With ``capture=True``
    each phase additionally accumulates a :class:`cProfile.Profile`
    (outermost span only — cProfile cannot nest), exportable via
    :meth:`dump_pstats` and :meth:`write_collapsed`.

    Use as a context manager (``with PhaseProfiler() as prof:``) or via
    :meth:`install` / :meth:`uninstall` to make it the process-wide
    :data:`ACTIVE` profiler the hot paths report to.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        capture: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry(
            scope="profile"
        )
        self.capture = capture
        self._profiles: dict[str, cProfile.Profile] = {}
        self._lock = threading.Lock()
        self._capture_live = False
        self._previous: "PhaseProfiler | None" = None
        self._installed = False

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, phase: str) -> _Span:
        """A context manager timing one entry into ``phase``."""
        return _Span(self, phase)

    def record_external(self, phase: str, wall_s: float, cpu_s: float) -> None:
        """Record one externally measured entry into ``phase``.

        For work that runs where a span cannot reach this profiler —
        e.g. a map task scanned inside a worker process, whose wall/CPU
        durations come back with the task result. Keeps the phase
        taxonomy reconciling (one ``scan.map_task`` timing per scan,
        wherever the scan ran); both clocks must be durations from the
        shared :data:`wall_clock` / :data:`cpu_clock` pair.
        """
        self._record(phase, wall_s, max(0.0, cpu_s), error=False)

    def _record(self, phase: str, wall: float, cpu: float, *, error: bool) -> None:
        with self._lock:
            if error:
                self.registry.counter(f"{PHASE_PREFIX}{phase}.errors").inc()
            else:
                self.registry.histogram(f"{PHASE_PREFIX}{phase}.wall_s").observe(wall)
                self.registry.histogram(f"{PHASE_PREFIX}{phase}.cpu_s").observe(
                    max(0.0, cpu)
                )

    # ------------------------------------------------------------------
    # cProfile capture
    # ------------------------------------------------------------------
    def _enable_capture(self, phase: str) -> bool:
        """Try to start cProfile for this span; False when not capturing,
        or when another capture is already live (nested phases)."""
        if not self.capture:
            return False
        with self._lock:
            if self._capture_live:
                return False
            profile = self._profiles.get(phase)
            if profile is None:
                profile = cProfile.Profile()
                self._profiles[phase] = profile
            self._capture_live = True
        try:
            profile.enable()
        except Exception:  # another tool owns the C profiler hook
            with self._lock:
                self._capture_live = False
            return False
        return True

    def _disable_capture(self, phase: str) -> None:
        self._profiles[phase].disable()
        with self._lock:
            self._capture_live = False

    @property
    def captured_phases(self) -> tuple[str, ...]:
        return tuple(sorted(self._profiles))

    # ------------------------------------------------------------------
    # Installation (the module-global ACTIVE slot)
    # ------------------------------------------------------------------
    def install(self) -> "PhaseProfiler":
        """Make this the profiler hot paths report to; returns self."""
        global ACTIVE
        if self._installed:
            return self
        self._previous = ACTIVE
        ACTIVE = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Undo :meth:`install`, restoring whatever was active before."""
        global ACTIVE
        if not self._installed:
            return
        ACTIVE = self._previous
        self._previous = None
        self._installed = False

    @contextmanager
    def installed(self) -> Iterator["PhaseProfiler"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    def __enter__(self) -> "PhaseProfiler":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def phase_totals(self) -> dict[str, dict[str, float]]:
        """``{phase: {"calls", "wall_s", "cpu_s", "errors"}}`` totals.

        Built from the registry's ``profile.``-prefixed snapshot, so it
        reconciles exactly with any exported ``metrics_snapshot``.
        """
        totals: dict[str, dict[str, float]] = {}
        for name, entry in self.registry.snapshot(prefix=PHASE_PREFIX).items():
            body = name[len(PHASE_PREFIX):]
            phase, _, metric = body.rpartition(".")
            if not phase:
                continue
            bucket = totals.setdefault(
                phase, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0, "errors": 0}
            )
            if metric == "wall_s":
                bucket["calls"] = entry["value"]["count"]
                bucket["wall_s"] = entry["value"]["total"]
            elif metric == "cpu_s":
                bucket["cpu_s"] = entry["value"]["total"]
            elif metric == "errors":
                bucket["errors"] = entry["value"]
        return totals

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def dump_pstats(self, directory: str | Path) -> list[Path]:
        """Write one ``<phase>.pstats`` file per captured phase.

        Files load with ``pstats.Stats(str(path))`` or ``snakeviz``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for phase in sorted(self._profiles):
            path = directory / f"{phase}.pstats"
            self._profiles[phase].dump_stats(str(path))
            paths.append(path)
        return paths

    def write_collapsed(self, directory: str | Path) -> list[Path]:
        """Write one flamegraph-collapsed ``<phase>.collapsed`` file per
        captured phase (``flamegraph.pl <file> > flame.svg``)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for phase in sorted(self._profiles):
            path = directory / f"{phase}.collapsed"
            lines = collapsed_stacks(self._profiles[phase], phase)
            path.write_text("\n".join(lines) + ("\n" if lines else ""))
            paths.append(path)
        return paths


# ----------------------------------------------------------------------
# Flamegraph-collapsed export
# ----------------------------------------------------------------------
def _frame(func: tuple) -> str:
    """Compact one-frame label for a pstats function key."""
    filename, _lineno, name = func
    if filename.startswith("~") or filename.startswith("<"):
        return name  # built-ins and exec'd code have no useful file
    return f"{Path(filename).name}:{name}"


def collapsed_stacks(profile: cProfile.Profile, root: str) -> list[str]:
    """Flamegraph-collapsed lines (``frames... count``) for one phase.

    cProfile keeps caller→callee pairs rather than full stacks, so each
    line is ``root;caller;function`` (or ``root;function`` for entry
    points) weighted by the function's own time attributed to that
    caller, in microseconds. That is exactly the input format
    ``flamegraph.pl`` and speedscope accept; sorted for determinism.
    """
    stats = pstats.Stats(profile).stats  # type: ignore[attr-defined]
    weights: dict[str, int] = {}
    for func, (_cc, _nc, tt, _ct, callers) in stats.items():
        leaf = _frame(func)
        if callers:
            for caller, caller_stats in callers.items():
                # callers[caller] = (cc, nc, tt, ct): tt is this
                # function's own time credited to that caller.
                micros = round(caller_stats[2] * 1e6)
                if micros > 0:
                    key = f"{root};{_frame(caller)};{leaf}"
                    weights[key] = weights.get(key, 0) + micros
        else:
            micros = round(tt * 1e6)
            if micros > 0:
                key = f"{root};{leaf}"
                weights[key] = weights.get(key, 0) + micros
    return [f"{stack} {count}" for stack, count in sorted(weights.items())]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_profile(profiler: PhaseProfiler) -> str:
    """Per-phase summary table (wall/cpu totals, calls, share of wall)."""
    totals = profiler.phase_totals()
    if not totals:
        return "no profiled phases recorded"
    grand_wall = sum(t["wall_s"] for t in totals.values())
    header = (
        f"{'phase':<20} {'calls':>8} {'wall s':>10} {'cpu s':>10} "
        f"{'mean ms':>9} {'% wall':>7}"
    )
    lines = [header, "-" * len(header)]
    for phase in sorted(totals, key=lambda p: -totals[p]["wall_s"]):
        t = totals[phase]
        calls = int(t["calls"])
        mean_ms = (t["wall_s"] / calls * 1e3) if calls else 0.0
        share = (t["wall_s"] / grand_wall * 100.0) if grand_wall > 0 else 0.0
        suffix = f"  ({int(t['errors'])} errors)" if t["errors"] else ""
        lines.append(
            f"{phase:<20} {calls:>8} {t['wall_s']:>10.4f} {t['cpu_s']:>10.4f} "
            f"{mean_ms:>9.3f} {share:>6.1f}%{suffix}"
        )
    return "\n".join(lines)
