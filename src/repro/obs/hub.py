"""The live telemetry hub: streaming metrics while jobs run.

Every observability layer so far (trace, analyze, audit, report) is
post-hoc — you learn what a job did after it finishes. The
:class:`TelemetryHub` is the live complement: a process-global,
thread-safe aggregator that

* subscribes to a :class:`~repro.obs.trace.TraceRecorder` as an event
  listener (:meth:`attach`) and folds every event into windowed
  ring-buffer time series and streaming quantile sketches, multiplexed
  across concurrent jobs by job id;
* receives cross-process worker deltas from the process map executor
  (:meth:`worker_channel` / :meth:`record_worker_delta`), so
  long-running worker scans appear in the live series *before* their
  task completes;
* samples registered :class:`~repro.obs.metrics.MetricsRegistry`
  instances on demand (:meth:`track_registry`), turning counter deltas
  between samples into rates.

Maintained live series and sketches:

=====================  ==================================================
rows/s                 per-job cumulative scanned rows (ring series;
                       renderers derive per-second rates)
slot utilization       cluster-wide ``busy/total`` map slots, from
                       provider evaluations and JobTracker dispatch
grab-to-grant          per-job latency from an Input Provider granting a
                       split to that split's map task starting
                       (quantile sketch: p50/p95/p99 at any instant)
per-job progress       splits added/completed, running maps, outputs
CI half-width          accuracy jobs' interval convergence over time
=====================  ==================================================

The hub is **strictly read-side**: it never mutates events, consumes no
randomness, and attaching it changes no job output bytes (the hub
parity suite asserts this across both substrates, all scan modes, and
both map executors). Consumers — ``repro top``, the Prometheus
exporter — read a consistent :meth:`snapshot` under the hub lock.

Time axes: points are stamped with the shared wall clock
(:data:`repro.obs.profile.wall_clock`) at receipt, which is the only
axis that exists on both substrates. Grab-to-grant latencies prefer the
*event* clock (simulated seconds) when the substrate provides one, so
simulated latency percentiles are deterministic; the LocalRunner stamps
every event ``time=0.0`` and falls back to wall-clock deltas.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import wall_clock
from repro.obs.timeseries import QuantileSketch, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.proc import ScanTaskResult, WorkerDelta

#: The process-global hub, or None. Mirrors ``profile.ACTIVE``: hot
#: paths read this slot directly; only install/uninstall write it.
ACTIVE: "TelemetryHub | None" = None


def active_hub() -> "TelemetryHub | None":
    """The installed hub, if any."""
    return ACTIVE


#: Default ring-buffer capacity per series (bounded memory per job).
DEFAULT_CAPACITY = 512


class JobTelemetry:
    """Live state for one job, keyed by job id inside the hub.

    Plain attributes, mutated only under the hub lock.
    """

    def __init__(self, job_id: str, *, capacity: int = DEFAULT_CAPACITY) -> None:
        self.job_id = job_id
        self.name: str | None = None
        self.policy: str | None = None
        self.state = "running"
        self.total_splits: int | None = None
        self.sample_size: int | None = None
        self.first_seen_wall = 0.0
        self.last_event_wall = 0.0
        self.splits_added = 0
        self.splits_completed = 0
        self.running_maps = 0
        self.rows_total = 0
        self.outputs_total = 0
        self.evaluations = 0
        self.rows_series = TimeSeries(capacity)
        self.grab_to_grant = QuantileSketch("grab_to_grant_s")
        self.ci_series = TimeSeries(capacity)
        self.ci_last: dict | None = None
        # Pending grant markers: (event_time, wall_time), one per granted
        # split, consumed by map_started (sim) or scan_span (local).
        self.pending_grants: list[tuple[float, float]] = []
        # True once a map_started was seen: that substrate's scan_span
        # events then stop consuming grants / driving counters (the
        # lifecycle events are authoritative there).
        self.uses_map_started = False
        # In-flight worker progress: (partition -> cumulative rows), kept
        # separate from rows_total so completed-task accounting stays
        # authoritative and live rows never double-count.
        self.worker_live: dict[int, int] = {}
        # Partitions whose task result already reconciled: a delta that
        # drains late (the mp queue is asynchronous) must not resurrect
        # a live entry the authoritative scan_span will count again.
        self.worker_retired: set[int] = set()
        # Worker-side chunk scan rates (rows/s per flushed chunk).
        self.worker_rate = QuantileSketch("worker_rows_per_s")
        self.worker_deltas = 0

    @property
    def rows_now(self) -> int:
        """Authoritative completed rows plus live in-flight worker rows."""
        return self.rows_total + sum(self.worker_live.values())

    def snapshot(self) -> dict:
        g = self.grab_to_grant
        return {
            "job_id": self.job_id,
            "name": self.name,
            "policy": self.policy,
            "state": self.state,
            "total_splits": self.total_splits,
            "sample_size": self.sample_size,
            "splits_added": self.splits_added,
            "splits_completed": self.splits_completed,
            "running_maps": self.running_maps,
            "evaluations": self.evaluations,
            "rows_total": self.rows_now,
            "outputs_total": self.outputs_total,
            "rows_series": self.rows_series.points(),
            "grab_to_grant": {"count": g.count, "total": g.total, **g.quantiles()},
            "ci": self.ci_last,
            "ci_series": self.ci_series.points(),
            "worker": {
                "live_tasks": len(self.worker_live),
                "live_rows": sum(self.worker_live.values()),
                "deltas": self.worker_deltas,
                "chunk_rate": {
                    "count": self.worker_rate.count,
                    "total": self.worker_rate.total,
                    **self.worker_rate.quantiles(),
                },
            },
        }


class TelemetryHub:
    """Process-global aggregator of live run telemetry.

    Use as a context manager (``with TelemetryHub() as hub:``) or via
    :meth:`install`/:meth:`uninstall` to occupy the module's
    :data:`ACTIVE` slot that the runtime and JobTracker consult; call
    :meth:`attach` with the run's TraceRecorder to start receiving
    events.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        clock=wall_clock,
        worker_chunk_rows: int | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._capacity = capacity
        self.worker_chunk_rows = worker_chunk_rows
        """Rows per worker scan chunk (flush cadence), or None for the
        scan layer's default. Small values make workers flush often —
        useful in tests and for watching very slow scans."""
        self.started_wall = clock()
        # The live watchdog: incremental anomaly detectors over the same
        # event stream (imported lazily — doctor sits above the hub in
        # the obs layering).
        from repro.obs.doctor import Watchdog

        self.watchdog = Watchdog()
        self.jobs: dict[str, JobTelemetry] = {}
        self.slot_series = TimeSeries(capacity)
        self.slots_total: int | None = None
        self.slots_available: int | None = None
        self.sweep: dict | None = None
        self.events_seen = 0
        self._registries: dict[str, MetricsRegistry] = {}
        self._registry_prev: dict[str, tuple[float, dict]] = {}
        self._recorders: list = []
        self._drains: list[threading.Thread] = []
        self._drain_stop = threading.Event()
        self._previous: "TelemetryHub | None" = None
        self._installed = False

    # ------------------------------------------------------------------
    # Installation / attachment
    # ------------------------------------------------------------------
    def install(self) -> "TelemetryHub":
        """Occupy the process-global :data:`ACTIVE` slot; returns self."""
        global ACTIVE
        if self._installed:
            return self
        self._previous = ACTIVE
        ACTIVE = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Release :data:`ACTIVE`, stop drain threads, detach recorders."""
        global ACTIVE
        if self._installed:
            ACTIVE = self._previous
            self._previous = None
            self._installed = False
        self._drain_stop.set()
        for thread in self._drains:
            thread.join(timeout=2.0)
        self._drains.clear()
        for recorder in self._recorders:
            recorder.remove_listener(self.on_event)
        self._recorders.clear()

    def __enter__(self) -> "TelemetryHub":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def attach(self, recorder) -> "TelemetryHub":
        """Subscribe to a TraceRecorder's event stream; returns self."""
        recorder.add_listener(self.on_event)
        self._recorders.append(recorder)
        return self

    # ------------------------------------------------------------------
    # Event ingestion (TraceRecorder listener)
    # ------------------------------------------------------------------
    def on_event(self, event: dict) -> None:
        """Fold one trace event into the live series (thread-safe)."""
        with self._lock:
            self.events_seen += 1
            handler = _EVENT_HANDLERS.get(event["type"])
            if handler is not None:
                handler(self, event, self._clock())
            try:
                self.watchdog.on_event(event)
            except Exception:
                # A watchdog bug must never cost the hub its listener
                # slot (the recorder detaches listeners that raise).
                pass

    def _job(self, job_id: str, wall: float) -> JobTelemetry:
        job = self.jobs.get(job_id)
        if job is None:
            job = JobTelemetry(job_id, capacity=self._capacity)
            job.first_seen_wall = wall
            self.jobs[job_id] = job
        job.last_event_wall = wall
        return job

    def _on_job_submitted(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        detail = event.get("detail") or {}
        job.name = detail.get("name")
        job.total_splits = detail.get("total_splits")
        job.sample_size = detail.get("sample_size")
        initial = detail.get("splits") or 0
        if initial:
            job.splits_added += initial

    def _on_provider_evaluation(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        job.policy = event.get("policy")
        response = event.get("response") or {}
        if event.get("phase") == "evaluate":
            job.evaluations += 1
        splits = response.get("splits") or 0
        if splits and response.get("kind") == "INPUT_AVAILABLE":
            if event.get("phase") != "initial":
                # Initial grants were already counted by job_submitted.
                job.splits_added += splits
            for _ in range(splits):
                job.pending_grants.append((event["time"], wall))
        elif splits and event.get("phase") == "initial":
            # Initial grab that already ends the input (small jobs).
            for _ in range(splits):
                job.pending_grants.append((event["time"], wall))
        ci = response.get("ci")
        if isinstance(ci, dict):
            job.ci_last = ci
            half = ci.get("half_width")
            if half is not None:
                job.ci_series.append(wall, float(half))
        cluster = event.get("cluster")
        if isinstance(cluster, dict):
            self._observe_cluster_locked(cluster, wall)

    def _on_input_added(self, event: dict, wall: float) -> None:
        # splits_added is driven by provider grants (both substrates emit
        # them); input_added only keeps the job's last-activity stamp.
        self._job(event["job_id"], wall)

    def _on_map_started(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        job.uses_map_started = True
        job.running_maps += 1
        self._consume_grant(job, event["time"], wall)

    def _consume_grant(self, job: JobTelemetry, event_time: float, wall: float) -> None:
        if not job.pending_grants:
            return  # retries and untracked grants: skip, never go negative
        granted_time, granted_wall = job.pending_grants.pop(0)
        # Prefer the substrate's own clock (simulated seconds) when it
        # carries information; the LocalRunner stamps everything 0.0.
        if event_time > granted_time or event_time > 0:
            latency = event_time - granted_time
        else:
            latency = wall - granted_wall
        job.grab_to_grant.observe(max(0.0, latency))

    def _on_map_finished(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        job.running_maps = max(0, job.running_maps - 1)
        job.splits_completed += 1
        detail = event.get("detail") or {}
        job.rows_total += detail.get("records") or 0
        job.outputs_total += detail.get("outputs") or 0
        job.rows_series.append(wall, float(job.rows_now))

    def _on_map_failed(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        job.running_maps = max(0, job.running_maps - 1)

    def _on_scan_span(self, event: dict, wall: float) -> None:
        job_id = event.get("job_id")
        if not job_id:
            return
        job = self._job(job_id, wall)
        if job.uses_map_started:
            # Simulated substrate: map_finished already drives counters.
            return
        self._consume_grant(job, event["time"], wall)
        job.splits_completed += 1
        job.rows_total += event.get("rows") or 0
        job.outputs_total += event.get("outputs") or 0
        job.worker_live.clear()
        job.rows_series.append(wall, float(job.rows_now))

    def _on_job_finished(self, event: dict, wall: float) -> None:
        job = self._job(event["job_id"], wall)
        job.state = "succeeded" if event["type"] == "job_succeeded" else "killed"
        job.pending_grants.clear()
        job.worker_live.clear()
        job.rows_series.append(wall, float(job.rows_now))

    def _on_sweep_started(self, event: dict, wall: float) -> None:
        self.sweep = {"points": event.get("points"), "done": 0, "cached": 0}

    def _on_sweep_point(self, event: dict, wall: float) -> None:
        if self.sweep is None:
            self.sweep = {"points": None, "done": 0, "cached": 0}
        self.sweep["done"] += 1
        if event.get("cached"):
            self.sweep["cached"] += 1

    # ------------------------------------------------------------------
    # Cluster status (JobTracker hook + provider evaluations)
    # ------------------------------------------------------------------
    def observe_cluster(self, status) -> None:
        """Record live slot availability (called after dispatch passes).

        ``status`` is a :class:`~repro.engine.job.ClusterStatus` (or any
        object with ``total_map_slots`` / ``available_map_slots``).
        """
        with self._lock:
            self._observe_cluster_locked(
                {
                    "total_map_slots": status.total_map_slots,
                    "available_map_slots": status.available_map_slots,
                },
                self._clock(),
            )

    def _observe_cluster_locked(self, cluster: dict, wall: float) -> None:
        total = cluster.get("total_map_slots")
        available = cluster.get("available_map_slots")
        if not total:
            return
        self.slots_total = total
        self.slots_available = available
        busy = total - (available or 0)
        self.slot_series.append(wall, busy / total)

    # ------------------------------------------------------------------
    # Cross-process worker telemetry
    # ------------------------------------------------------------------
    def worker_channel(self, ctx):
        """A multiprocessing queue workers flush deltas into, plus a
        daemon drain thread feeding :meth:`record_worker_delta`.

        ``ctx`` is the multiprocessing context the worker pool uses; the
        queue must come from the same context to be inheritable. Returns
        the queue (pass it to the pool initializer), or None if the
        context cannot provide one.
        """
        try:
            queue = ctx.Queue()
        except Exception:
            return None

        def drain() -> None:
            while not self._drain_stop.is_set():
                try:
                    delta = queue.get(timeout=0.1)
                except Exception:
                    continue
                if delta is None:
                    break
                try:
                    self.record_worker_delta(delta)
                except Exception:
                    continue

        thread = threading.Thread(target=drain, name="repro-hub-drain", daemon=True)
        thread.start()
        self._drains.append(thread)
        return queue

    def record_worker_delta(self, delta: "WorkerDelta") -> None:
        """Fold one live worker chunk checkpoint into the job's series.

        Deltas carry *cumulative* rows per (job, partition), so the
        channel is idempotent: a repeated or reordered flush never
        inflates counts (last-write-wins per partition).
        """
        job_id = delta.job_id
        if not job_id:
            return
        wall = self._clock()
        with self._lock:
            job = self._job(job_id, wall)
            if job.state != "running" or delta.partition in job.worker_retired:
                return
            previous = job.worker_live.get(delta.partition, 0)
            job.worker_live[delta.partition] = max(previous, delta.rows_scanned)
            job.worker_deltas += 1
            if delta.wall_s > 0 and delta.chunk_rows > 0:
                job.worker_rate.observe(delta.chunk_rows / delta.wall_s)
            job.rows_series.append(wall, float(job.rows_now))

    def record_worker_result(self, job_id: str, result: "ScanTaskResult") -> None:
        """Reconcile a finished worker task: retire its live entry and
        fold the piggybacked chunk checkpoints into the rate sketch.

        The authoritative row counts still arrive through the trace's
        ``scan_span`` event; this only closes the live window.
        """
        wall = self._clock()
        with self._lock:
            job = self._job(job_id, wall)
            job.worker_live.pop(result.partition, None)
            job.worker_retired.add(result.partition)
            previous_rows = 0
            previous_wall = 0.0
            for rows_cum, wall_cum in result.deltas:
                chunk_rows = rows_cum - previous_rows
                chunk_wall = wall_cum - previous_wall
                if job.worker_deltas == 0 and chunk_wall > 0 and chunk_rows > 0:
                    # No live channel delivered these; learn rates from
                    # the piggybacked checkpoints instead.
                    job.worker_rate.observe(chunk_rows / chunk_wall)
                previous_rows, previous_wall = rows_cum, wall_cum

    # ------------------------------------------------------------------
    # Registry deltas
    # ------------------------------------------------------------------
    def track_registry(self, name: str, registry: MetricsRegistry) -> None:
        """Sample ``registry`` on every :meth:`snapshot`, exposing counter
        values plus between-sample rates."""
        with self._lock:
            self._registries[name] = registry

    def _sample_registries_locked(self, wall: float) -> dict:
        sampled: dict[str, dict] = {}
        for name, registry in self._registries.items():
            snap = registry.snapshot()
            prev_wall, prev_snap = self._registry_prev.get(name, (wall, {}))
            dt = wall - prev_wall
            entries: dict[str, dict] = {}
            for metric, entry in snap.items():
                value = entry["value"]
                out = {"kind": entry["kind"], "value": value}
                if entry["kind"] == "counter" and dt > 0:
                    prev_entry = prev_snap.get(metric)
                    prev_value = prev_entry["value"] if prev_entry else 0
                    out["rate"] = max(0.0, (value - prev_value) / dt)
                entries[metric] = out
            sampled[name] = entries
            self._registry_prev[name] = (wall, snap)
        return sampled

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A consistent, JSON-safe view of everything the hub holds."""
        wall = self._clock()
        with self._lock:
            return {
                "now": wall,
                "uptime_s": wall - self.started_wall,
                "events_seen": self.events_seen,
                "slots": {
                    "total": self.slots_total,
                    "available": self.slots_available,
                    "utilization": (
                        (self.slots_total - (self.slots_available or 0))
                        / self.slots_total
                        if self.slots_total
                        else None
                    ),
                    "series": self.slot_series.points(),
                },
                "sweep": dict(self.sweep) if self.sweep is not None else None,
                "alerts": self.watchdog.alerts(),
                "jobs": {job_id: job.snapshot() for job_id, job in self.jobs.items()},
                "registries": self._sample_registries_locked(wall),
            }


_EVENT_HANDLERS = {
    "job_submitted": TelemetryHub._on_job_submitted,
    "provider_evaluation": TelemetryHub._on_provider_evaluation,
    "input_added": TelemetryHub._on_input_added,
    "map_started": TelemetryHub._on_map_started,
    "map_finished": TelemetryHub._on_map_finished,
    "map_failed": TelemetryHub._on_map_failed,
    "map_retried": TelemetryHub._on_input_added,
    "scan_span": TelemetryHub._on_scan_span,
    "job_succeeded": TelemetryHub._on_job_finished,
    "job_killed": TelemetryHub._on_job_finished,
    "sweep_started": TelemetryHub._on_sweep_started,
    "sweep_point": TelemetryHub._on_sweep_point,
}
