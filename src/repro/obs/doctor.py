"""``repro doctor``: one-shot run diagnosis plus the live watchdog.

Post-hoc half: :func:`diagnose` folds a trace into the analyzer's run
model, builds the causal span graphs (:mod:`repro.obs.spans`), runs
every anomaly detector (:mod:`repro.obs.detect`), and folds paper-
invariant audit violations in as critical findings. The result renders
as byte-deterministic markdown (:func:`render_doctor`) or JSON
(:func:`doctor_json`) with the critical path laid out span by span, and
:func:`render_doctor_diff` compares two diagnoses (before/after a knob
change). ``repro doctor`` exits non-zero when findings exist, so CI can
gate on "the golden trace diagnoses clean".

Live half: :class:`Watchdog` runs a subset of the same detectors
*incrementally*, as events stream through the telemetry hub. It keeps
tiny per-job state (completed-attempt durations, undispatched grants,
trailing CI widths, idle accounting) and maintains a set of active
alerts that clear themselves when the condition passes. The hub folds
events into its watchdog under its own lock and surfaces alerts in
:meth:`TelemetryHub.snapshot`; the Prometheus exporter turns them into
``repro_alert`` gauges and ``repro top`` shows them as a banner row.

Like everything else in :mod:`repro.obs`, both halves are strictly
read-side: they never mutate events, consume no randomness, and a run
with detectors on produces byte-identical job output to one without.
Alert timing uses the substrate's event clock, so LocalRunner traces
(all times 0.0) simply never alert — the post-hoc doctor covers them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.obs.analyze import RunModel, analyze_trace
from repro.obs.audit import AuditReport, audit_events
from repro.obs.detect import (
    CI_MIN_SHRINK,
    CI_WINDOW,
    STALL_INTERVAL_MULTIPLE,
    STARVATION_IDLE_FRACTION,
    Finding,
    run_detectors,
)
from repro.obs.spans import SpanGraph, build_graphs

#: Bumped when the JSON report shape changes.
DOCTOR_SCHEMA_VERSION = 1

#: Live straggler: a running attempt this many times the median completed
#: duration (same spirit as the post-hoc MAD rule, but computable before
#: the attempt ends).
LIVE_STRAGGLER_MULTIPLE = 3.0
LIVE_STRAGGLER_MIN_SAMPLES = 4

_SEVERITY_ORDER = {"critical": 0, "warning": 1, "info": 2}


@dataclass
class Diagnosis:
    """Everything :func:`diagnose` learned about one trace."""

    model: RunModel
    graphs: dict[str, SpanGraph]
    findings: list[Finding]
    audit: AuditReport

    @property
    def ok(self) -> bool:
        return not self.findings


def diagnose(events: Iterable[dict]) -> Diagnosis:
    """Analyze, graph, detect, and audit one event stream."""
    events = list(events)
    model = analyze_trace(events)
    graphs = build_graphs(model)
    findings = run_detectors(model, graphs)
    audit = audit_events(events)
    for violation in audit.violations:
        evidence = (f"eval:seq={violation.seq}",) if violation.seq is not None else ()
        findings.append(
            Finding(
                detector=f"audit:{violation.check}",
                severity="critical",
                job_id=violation.job_id or "(run)",
                message=violation.message,
                evidence=evidence,
                suggestion="the run broke a paper invariant; see `repro audit`",
            )
        )
    findings.sort(
        key=lambda f: (
            f.job_id,
            _SEVERITY_ORDER.get(f.severity, 9),
            f.detector,
            f.message,
        )
    )
    return Diagnosis(model=model, graphs=graphs, findings=findings, audit=audit)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_doctor(diagnosis: Diagnosis) -> str:
    """The markdown report. Pure function of the diagnosis — same trace,
    same bytes (the doctor determinism test pins this)."""
    model = diagnosis.model
    lines: list[str] = ["# repro doctor", ""]
    lines.append(f"- jobs: {len(model.jobs)}")
    lines.append(f"- events: {model.events}")
    lines.append(f"- findings: {len(diagnosis.findings)}")
    lines.append(f"- audit: {'ok' if diagnosis.audit.ok else 'VIOLATIONS'}")
    for job_id in sorted(model.jobs):
        job = model.jobs[job_id]
        graph = diagnosis.graphs.get(job_id) or SpanGraph(job_id=job_id)
        lines.append("")
        title = job_id
        if job.name:
            title += f" — {job.name}"
        descriptor = ", ".join(
            part for part in (job.policy, job.state or "open") if part
        )
        if descriptor:
            title += f" ({descriptor})"
        lines.append(f"## {title}")
        lines.append("")
        wall = job.response_time
        if wall is not None:
            lines.append(f"- wall time: {wall:.3f}s")
        lines.append(
            f"- splits: {job.splits_added} added, {job.splits_completed} "
            f"completed, {job.splits_pruned} pruned; "
            f"{len(job.attempts)} attempts ({job.failed_attempts} failed)"
        )
        lines.append(
            f"- records: {job.records_processed:,} scanned, "
            f"{job.map_outputs:,} outputs"
        )
        if graph.critical_path:
            lines.append(
                f"- critical path: {len(graph.critical_path)} spans, "
                f"{graph.critical_path_length:.3f}s"
                + (
                    f" ({100.0 * graph.critical_path_length / wall:.1f}% of wall time)"
                    if wall
                    else ""
                )
            )
            lines.append("")
            lines.append("### critical path")
            lines.append("")
            lines.append("| # | span | via | wait (s) | duration (s) |")
            lines.append("|--:|------|-----|---------:|-------------:|")
            for index, segment in enumerate(graph.critical_path):
                lines.append(
                    f"| {index} | {segment.span.label} | {segment.edge_kind} "
                    f"| {segment.wait:.3f} | {segment.span.duration:.3f} |"
                )
            lines.append("")
            lines.append(f"- completion tail after last span: {graph.tail:.3f}s")
        else:
            lines.append("- critical path: (no timed task lifecycle in trace)")
        job_findings = [f for f in diagnosis.findings if f.job_id == job_id]
        lines.append("")
        lines.append("### findings")
        lines.append("")
        if not job_findings:
            lines.append("(none)")
        for finding in job_findings:
            lines.append(
                f"- **[{finding.severity}] {finding.detector}** — {finding.message}"
            )
            if finding.evidence:
                lines.append(f"  - evidence: {', '.join(finding.evidence)}")
            if finding.suggestion:
                lines.append(f"  - suggestion: {finding.suggestion}")
    orphans = [
        f for f in diagnosis.findings if f.job_id not in model.jobs
    ]
    if orphans:
        lines.append("")
        lines.append("## run-level findings")
        lines.append("")
        for finding in orphans:
            lines.append(
                f"- **[{finding.severity}] {finding.detector}** — {finding.message}"
            )
    return "\n".join(lines) + "\n"


def doctor_json(diagnosis: Diagnosis) -> str:
    """Machine-readable report: stable key order, trailing newline."""
    model = diagnosis.model
    jobs: dict[str, dict] = {}
    for job_id in sorted(model.jobs):
        job = model.jobs[job_id]
        graph = diagnosis.graphs.get(job_id) or SpanGraph(job_id=job_id)
        jobs[job_id] = {
            "name": job.name,
            "policy": job.policy,
            "state": job.state,
            "wall_time_s": job.response_time,
            "splits_added": job.splits_added,
            "splits_completed": job.splits_completed,
            "splits_pruned": job.splits_pruned,
            "failed_attempts": job.failed_attempts,
            "records_processed": job.records_processed,
            "outputs": job.map_outputs,
            "critical_path_s": (
                graph.critical_path_length if graph.critical_path else None
            ),
            "critical_path_tail_s": graph.tail if graph.critical_path else None,
            "critical_path": [
                {
                    "span_id": segment.span.span_id,
                    "kind": segment.span.kind,
                    "label": segment.span.label,
                    "start": segment.span.start,
                    "end": segment.span.end,
                    "wait_s": segment.wait,
                    "duration_s": segment.span.duration,
                    "via": segment.edge_kind,
                }
                for segment in graph.critical_path
            ],
        }
    by_severity: dict[str, int] = {}
    by_detector: dict[str, int] = {}
    for finding in diagnosis.findings:
        by_severity[finding.severity] = by_severity.get(finding.severity, 0) + 1
        by_detector[finding.detector] = by_detector.get(finding.detector, 0) + 1
    payload = {
        "schema": DOCTOR_SCHEMA_VERSION,
        "summary": {
            "jobs": len(model.jobs),
            "events": model.events,
            "findings": len(diagnosis.findings),
            "audit_ok": diagnosis.audit.ok,
            "by_severity": by_severity,
            "by_detector": by_detector,
        },
        "jobs": jobs,
        "findings": [finding.as_dict() for finding in diagnosis.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_doctor_diff(
    first: Diagnosis, second: Diagnosis, *, names: tuple[str, str] = ("A", "B")
) -> str:
    """Compare two diagnoses: findings that appeared/disappeared and how
    each job's wall time and critical path moved."""
    label_a, label_b = names
    keys_a = {(f.job_id, f.detector) for f in first.findings}
    keys_b = {(f.job_id, f.detector) for f in second.findings}
    lines = ["# repro doctor diff", ""]
    lines.append(f"- {label_a}: {len(first.findings)} findings")
    lines.append(f"- {label_b}: {len(second.findings)} findings")
    lines.append("")
    lines.append("## findings")
    lines.append("")
    only_b = [f for f in second.findings if (f.job_id, f.detector) not in keys_a]
    only_a = [f for f in first.findings if (f.job_id, f.detector) not in keys_b]
    if not only_a and not only_b:
        lines.append("(no finding appeared or disappeared)")
    for finding in only_b:
        lines.append(
            f"- new in {label_b}: **[{finding.severity}] {finding.detector}** "
            f"({finding.job_id}) — {finding.message}"
        )
    for finding in only_a:
        lines.append(
            f"- resolved in {label_b}: **[{finding.severity}] "
            f"{finding.detector}** ({finding.job_id}) — {finding.message}"
        )
    lines.append("")
    lines.append("## wall time")
    lines.append("")
    lines.append(f"| job | {label_a} (s) | {label_b} (s) | delta |")
    lines.append("|-----|----:|----:|------:|")
    pairs = _pair_jobs(first.model, second.model)
    for display, job_a, job_b in pairs:
        time_a = job_a.response_time if job_a else None
        time_b = job_b.response_time if job_b else None
        cell_a = f"{time_a:.3f}" if time_a is not None else "-"
        cell_b = f"{time_b:.3f}" if time_b is not None else "-"
        if time_a is not None and time_b is not None:
            delta = f"{time_b - time_a:+.3f}"
        else:
            delta = "-"
        lines.append(f"| {display} | {cell_a} | {cell_b} | {delta} |")
    return "\n".join(lines) + "\n"


def _pair_jobs(model_a: RunModel, model_b: RunModel):
    """Match jobs across traces by name when unique, else by position."""

    def keyed(model: RunModel) -> dict[str, object]:
        names = [job.name for job in model.jobs.values()]
        out = {}
        for job_id, job in model.jobs.items():
            key = job.name if job.name and names.count(job.name) == 1 else job_id
            out[key] = job
        return out

    jobs_a, jobs_b = keyed(model_a), keyed(model_b)
    pairs = []
    for key in sorted(set(jobs_a) | set(jobs_b)):
        pairs.append((key, jobs_a.get(key), jobs_b.get(key)))
    return pairs


# ---------------------------------------------------------------------------
# Live watchdog
# ---------------------------------------------------------------------------
class _WatchdogJob:
    """Incremental per-job state, small enough to update per event."""

    __slots__ = (
        "job_id",
        "state",
        "durations",
        "running",
        "interval",
        "last_grant_time",
        "undispatched",
        "ci_widths",
        "ci_met",
        "idle_since",
        "busy_s",
        "idle_s",
        "saw_map",
    )

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.state = "running"
        self.durations: list[float] = []  # completed attempt durations
        self.running: dict[str, float] = {}  # task_id -> start time
        self.interval: float | None = None
        self.last_grant_time: float | None = None
        self.undispatched = 0
        self.ci_widths: list[float] = []
        self.ci_met = False
        self.idle_since: float | None = None
        self.busy_s = 0.0
        self.idle_s = 0.0
        self.saw_map = False


class Watchdog:
    """The doctor's detectors, run incrementally over a live event stream.

    Call :meth:`on_event` with every trace event (the hub does this
    under its own lock); read :meth:`alerts` at any point. Alerts are
    keyed by ``(job_id, detector)``, carry the event time they first
    fired, and clear themselves when the condition passes or the job
    finishes. All timing uses the substrate's event clock, so the
    LocalRunner's all-zero timestamps never alert (by design — its runs
    finish in milliseconds and the post-hoc doctor covers them).
    """

    def __init__(self) -> None:
        self._jobs: dict[str, _WatchdogJob] = {}
        self._alerts: dict[tuple[str, str], dict] = {}

    # -- ingestion -----------------------------------------------------
    def on_event(self, event: dict) -> None:
        type_ = event.get("type")
        job_id = event.get("job_id")
        if not job_id:
            return
        time = float(event.get("time") or 0.0)
        job = self._jobs.get(job_id)
        if job is None:
            job = self._jobs[job_id] = _WatchdogJob(job_id)
        if type_ == "provider_evaluation":
            self._on_evaluation(job, event, time)
        elif type_ == "map_started":
            job.saw_map = True
            if job.undispatched > 0:
                job.undispatched -= 1
            if not job.running and job.idle_since is not None:
                job.idle_s += max(0.0, time - job.idle_since)
                job.idle_since = None
            job.running[event.get("task_id") or ""] = time
        elif type_ in ("map_finished", "map_failed"):
            start = job.running.pop(event.get("task_id") or "", None)
            if start is not None and time >= start:
                if type_ == "map_finished":
                    job.durations.append(time - start)
                job.busy_s += time - start
            if not job.running and job.state == "running":
                job.idle_since = time
        elif type_ in ("job_succeeded", "job_killed"):
            job.state = "finished"
            job.running.clear()
            job.undispatched = 0
            job.idle_since = None
            self._clear_job(job_id)
            return
        self._evaluate(job, time)

    def _on_evaluation(self, job: _WatchdogJob, event: dict, time: float) -> None:
        knobs = event.get("knobs") or {}
        try:
            job.interval = float(knobs.get("evaluation_interval"))
        except (TypeError, ValueError):
            pass
        response = event.get("response") or {}
        splits = response.get("splits") or 0
        if splits:
            job.undispatched += splits
            job.last_grant_time = time
        ci = response.get("ci")
        if isinstance(ci, dict):
            half = ci.get("half_width")
            if half is not None:
                job.ci_widths.append(float(half))
            job.ci_met = bool(ci.get("met"))

    # -- incremental detectors ----------------------------------------
    def _evaluate(self, job: _WatchdogJob, now: float) -> None:
        if job.state != "running":
            return
        self._check_straggler(job, now)
        self._check_stall(job, now)
        self._check_starvation(job, now)
        self._check_ci(job, now)

    def _check_straggler(self, job: _WatchdogJob, now: float) -> None:
        key = (job.job_id, "straggler")
        if len(job.durations) >= LIVE_STRAGGLER_MIN_SAMPLES and job.running:
            ordered = sorted(job.durations)
            median = ordered[len(ordered) // 2]
            threshold = LIVE_STRAGGLER_MULTIPLE * median
            worst_id, worst_age = None, 0.0
            for task_id, start in sorted(job.running.items()):
                age = now - start
                if age > threshold and age > worst_age:
                    worst_id, worst_age = task_id, age
            if worst_id is not None and median > 0:
                self._raise(
                    key,
                    severity="warning",
                    message=(
                        f"attempt {worst_id} running {worst_age:.1f}s vs "
                        f"median {median:.1f}s"
                    ),
                    since=now,
                )
                return
        self._clear(key)

    def _check_stall(self, job: _WatchdogJob, now: float) -> None:
        key = (job.job_id, "scheduler_stall")
        if (
            job.undispatched > 0
            and job.interval
            and job.last_grant_time is not None
            and now - job.last_grant_time > STALL_INTERVAL_MULTIPLE * job.interval
        ):
            self._raise(
                key,
                severity="critical",
                message=(
                    f"{job.undispatched} granted splits undispatched for "
                    f"{now - job.last_grant_time:.1f}s "
                    f"(EvaluationInterval {job.interval:g}s)"
                ),
                since=now,
            )
        else:
            self._clear(key)

    def _check_starvation(self, job: _WatchdogJob, now: float) -> None:
        key = (job.job_id, "slot_starvation")
        idle = job.idle_s
        if job.idle_since is not None:
            idle += max(0.0, now - job.idle_since)
        elapsed = idle + job.busy_s
        if (
            job.saw_map
            and elapsed > 0
            and job.busy_s > 0
            and idle / elapsed > STARVATION_IDLE_FRACTION
        ):
            self._raise(
                key,
                severity="warning",
                message=(
                    f"slots idle {100.0 * idle / elapsed:.0f}% of the map "
                    f"phase so far ({idle:.1f}s idle)"
                ),
                since=now,
            )
        else:
            self._clear(key)

    def _check_ci(self, job: _WatchdogJob, now: float) -> None:
        key = (job.job_id, "ci_stall")
        widths = job.ci_widths
        if not job.ci_met and len(widths) > CI_WINDOW:
            first = widths[-(CI_WINDOW + 1)]
            last = widths[-1]
            if first > 0 and (first - last) / first < CI_MIN_SHRINK:
                self._raise(
                    key,
                    severity="warning",
                    message=(
                        f"CI half-width ±{last:.4g} shrank "
                        f"{100.0 * (first - last) / first:.2f}% over the "
                        f"last {CI_WINDOW} evaluations"
                    ),
                    since=now,
                )
                return
        self._clear(key)

    # -- alert bookkeeping --------------------------------------------
    def _raise(self, key: tuple[str, str], *, severity: str, message: str, since: float) -> None:
        existing = self._alerts.get(key)
        if existing is not None:
            existing["severity"] = severity
            existing["message"] = message
            return
        self._alerts[key] = {
            "job_id": key[0],
            "detector": key[1],
            "severity": severity,
            "message": message,
            "since": since,
        }

    def _clear(self, key: tuple[str, str]) -> None:
        self._alerts.pop(key, None)

    def _clear_job(self, job_id: str) -> None:
        for key in [k for k in self._alerts if k[0] == job_id]:
            del self._alerts[key]

    def alerts(self) -> list[dict]:
        """Active alerts, JSON-safe, in (job, detector) order."""
        return [dict(self._alerts[key]) for key in sorted(self._alerts)]
