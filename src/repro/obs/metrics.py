"""Named metrics: counters, gauges, histograms, and a registry of them.

One :class:`MetricsRegistry` per scope (a job, a cluster, a benchmark
run). The registry replaces the ad-hoc integer fields that used to be
scattered across ``Job``, ``ClusterMetrics``, and the perf harness, and
gives every scope the same ``snapshot()`` shape for trace export.

Design constraints, in force everywhere this module is used:

* **Picklable.** Registries travel inside ``WorkloadResult`` through
  the sweep engine's ``ProcessPoolExecutor``, so there are no locks,
  lambdas, or open files here — plain attributes only.
* **Deterministic on the sim substrate.** Job- and cluster-scoped
  metrics hold only counts and simulated-time durations. Wall-clock
  readings (``registry.timer``) are reserved for benchmark registries
  and trace span events, which are never part of job output.
* **Cheap when idle.** Metric objects are created on first use and
  updated with plain attribute arithmetic; the scan engine's per-row
  hot loop never touches a registry (tasks fold their totals in at
  completion, see DESIGN.md §9).
"""

from __future__ import annotations

import math
import time as _time
from typing import Iterator

from repro.errors import ReproError


class MetricsError(ReproError):
    """Invalid metric usage (name collisions across metric types, etc.)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        # ``amount < 0`` alone would let NaN through (every comparison
        # against NaN is False) and one NaN poisons the sum forever.
        if not math.isfinite(amount):
            raise MetricsError(
                f"counter {self.name!r} increment must be finite (inc {amount})"
            )
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A value that can move both ways (pending splits, queue depth)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> int | float:
        return self.value


#: Log-bucket resolution: buckets per decade of value. 20 per decade
#: means consecutive bucket bounds differ by ~12%, so any reported
#: quantile is within ~6% (half a bucket) of the true sample quantile.
BUCKETS_PER_DECADE = 20

#: Bucket indices are clamped into [-_BUCKET_CLAMP, _BUCKET_CLAMP]
#: (1e-20 .. 1e+20), bounding a histogram at 801 buckets plus the
#: non-positive underflow bucket no matter what flows through it.
_BUCKET_CLAMP = 20 * BUCKETS_PER_DECADE

#: Quantiles carried in every snapshot (and rendered by ``repro metrics``).
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class Histogram:
    """Summary statistics plus bounded log-bucket quantile estimation.

    Stores count/sum/min/max and a bounded dict of logarithmic buckets
    rather than raw samples, so a registry's size stays bounded no matter
    how many observations flow through it. Positive values land in bucket
    ``floor(log10(v) * BUCKETS_PER_DECADE)`` (clamped); zero and negative
    values share one underflow bucket. :meth:`quantile` walks the buckets
    and answers within half a bucket width (~6% relative error), clamped
    to the observed ``[min, max]``.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "underflow")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}
        self.underflow = 0

    def observe(self, value: int | float) -> None:
        if not math.isfinite(value):
            raise MetricsError(
                f"histogram {self.name!r} observation must be finite (got {value})"
            )
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            self.underflow += 1
            return
        index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
        if index < -_BUCKET_CLAMP:
            index = -_BUCKET_CLAMP
        elif index > _BUCKET_CLAMP:
            index = _BUCKET_CLAMP
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile of the observed values (None if empty).

        The underflow bucket (values <= 0) is represented by the observed
        minimum; a positive bucket by its geometric midpoint. The result
        is clamped into ``[min, max]``, so single-value histograms answer
        exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        # Rank of the q-quantile, 1-based: the ceil(q * count)-th smallest.
        rank = max(1, math.ceil(q * self.count))
        seen = self.underflow
        if rank <= seen:
            return self.min if self.min <= 0 else 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                midpoint = 10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE)
                return min(max(midpoint, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram; returns self.

        Log-bucket histograms are mergeable exactly: bucket counts add,
        min/max combine, and every quantile answered by the merged
        histogram is identical to the histogram that would have observed
        both streams directly (the property tests pin associativity and
        commutativity). This is what lets worker processes and the
        telemetry hub keep independent sketches and combine them
        losslessly.
        """
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.underflow += other.underflow
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def snapshot(self) -> dict:
        if not self.count:
            return {
                "count": 0, "total": 0.0, "min": None, "max": None, "mean": None,
                **{key: None for key, _q in SNAPSHOT_QUANTILES},
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            **{key: self.quantile(q) for key, q in SNAPSHOT_QUANTILES},
        }


class _Timer:
    """Context manager that records wall-clock elapsed into a histogram.

    Records only on clean exit: a block that raises would contribute a
    partial timing (however far it got before the exception), which
    poisons benchmark medians. Failed blocks increment the sibling
    ``<name>.errors`` counter instead, so failures stay visible without
    skewing the distribution.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._registry.histogram(self._name).observe(
                _time.perf_counter() - self._start
            )
        else:
            self._registry.counter(f"{self._name}.errors").inc()


class MetricsRegistry:
    """A namespace of metrics, created lazily on first access.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered — callers never need to cache metric
    handles, though hot paths may for speed. Requesting a name as the
    wrong kind raises :class:`MetricsError` instead of silently
    shadowing.
    """

    def __init__(self, *, scope: str = "") -> None:
        self.scope = scope
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise MetricsError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block (wall clock) into histogram ``name``.

        Wall-clock readings are non-deterministic by nature; use only in
        benchmark/trace scopes, never for anything that feeds a JobResult.
        Elapsed time is recorded only when the block exits cleanly; a
        raising block increments ``<name>.errors`` instead.
        """
        # Create the histogram eagerly so the snapshot shape is stable
        # (and kind mismatches surface here) even if every block raises.
        self.histogram(name)
        return _Timer(self, name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, *, prefix: str | None = None) -> dict:
        """Plain-dict view, sorted by name — stable for trace export.

        Shape: ``{name: {"kind": ..., "value": ...}}`` where ``value``
        is a number for counters/gauges and a stats dict for histograms.
        With ``prefix=`` only metrics whose name starts with it are
        included, so renderers can pull one phase without copying the
        whole registry.
        """
        return {
            name: {"kind": metric.kind, "value": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
            if prefix is None or name.startswith(prefix)
        }
