"""Named metrics: counters, gauges, histograms, and a registry of them.

One :class:`MetricsRegistry` per scope (a job, a cluster, a benchmark
run). The registry replaces the ad-hoc integer fields that used to be
scattered across ``Job``, ``ClusterMetrics``, and the perf harness, and
gives every scope the same ``snapshot()`` shape for trace export.

Design constraints, in force everywhere this module is used:

* **Picklable.** Registries travel inside ``WorkloadResult`` through
  the sweep engine's ``ProcessPoolExecutor``, so there are no locks,
  lambdas, or open files here — plain attributes only.
* **Deterministic on the sim substrate.** Job- and cluster-scoped
  metrics hold only counts and simulated-time durations. Wall-clock
  readings (``registry.timer``) are reserved for benchmark registries
  and trace span events, which are never part of job output.
* **Cheap when idle.** Metric objects are created on first use and
  updated with plain attribute arithmetic; the scan engine's per-row
  hot loop never touches a registry (tasks fold their totals in at
  completion, see DESIGN.md §9).
"""

from __future__ import annotations

import math
import time as _time
from typing import Iterator

from repro.errors import ReproError


class MetricsError(ReproError):
    """Invalid metric usage (name collisions across metric types, etc.)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A value that can move both ways (pending splits, queue depth)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> int | float:
        return self.value


class Histogram:
    """Summary statistics of an observed distribution.

    Stores count/sum/min/max rather than raw samples so a registry's
    size is bounded no matter how many observations flow through it.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _Timer:
    """Context manager that records wall-clock elapsed into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = _time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(_time.perf_counter() - self._start)


class MetricsRegistry:
    """A namespace of metrics, created lazily on first access.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered — callers never need to cache metric
    handles, though hot paths may for speed. Requesting a name as the
    wrong kind raises :class:`MetricsError` instead of silently
    shadowing.
    """

    def __init__(self, *, scope: str = "") -> None:
        self.scope = scope
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise MetricsError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block (wall clock) into histogram ``name``.

        Wall-clock readings are non-deterministic by nature; use only in
        benchmark/trace scopes, never for anything that feeds a JobResult.
        """
        return _Timer(self.histogram(name))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict view, sorted by name — stable for trace export.

        Shape: ``{name: {"kind": ..., "value": ...}}`` where ``value``
        is a number for counters/gauges and a stats dict for histograms.
        """
        return {
            name: {"kind": metric.kind, "value": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }
