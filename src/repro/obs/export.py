"""Prometheus text exposition and the background HTTP exporter.

Two consumers need the hub's live state outside this process: humans
pointing ``curl``/Prometheus at a running sweep, and ``repro top``
running in another terminal. Both are served here:

* :func:`render_registry_prometheus` — any
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict (live, or
  replayed from a trace's ``metrics_snapshot`` events) in the Prometheus
  text exposition format (version 0.0.4). Counters and gauges map
  directly; histograms render as summaries (``{quantile="0.5"}`` sample
  lines plus ``_count``/``_sum``), since log-bucket quantiles are what
  the sketch answers natively.
* :func:`render_hub_prometheus` — a :meth:`~repro.obs.hub.TelemetryHub.snapshot`
  as job-labelled series: rows/outputs/splits totals, running maps,
  grab-to-grant latency quantiles, CI half-widths, slot utilization,
  plus every tracked registry under a ``scope`` label.
* :class:`TelemetryExporter` — a daemon-thread HTTP server exposing
  ``GET /metrics`` (Prometheus text) and ``GET /telemetry.json`` (the
  raw hub snapshot, which is what ``repro top`` renders). Binds
  ``port=0`` for an ephemeral port in tests.

:func:`parse_exposition` is the matching strict-enough parser used by
the CI smoke test (and anyone scripting against the endpoint) to check
payloads round-trip.

Everything here is read-side presentation: nothing mutates the hub, and
none of it is imported by engine code.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError
from repro.obs.metrics import SNAPSHOT_QUANTILES

#: Exposition content type (Prometheus text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ExpositionError(ReproError):
    """A payload failed to parse as Prometheus text exposition."""


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    Registry names use dotted paths (``profile.scan.map_task.wall_s``);
    dots, dashes, and anything else invalid become underscores.
    """
    out = []
    for index, ch in enumerate(name):
        if ch.isascii() and (ch.isalpha() or ch == "_" or ch == ":"):
            out.append(ch)
        elif ch.isascii() and ch.isdigit() and index > 0:
            out.append(ch)
        else:
            out.append("_")
    return "".join(out) or "_"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(key)}="{_escape_label(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_number(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Lines:
    """Accumulates exposition lines, emitting each # TYPE header once."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._typed: set[str] = set()

    def type_header(self, name: str, kind: str, help_text: str | None = None) -> None:
        if name in self._typed:
            return
        self._typed.add(name)
        if help_text:
            self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict | None, value) -> None:
        self._lines.append(f"{name}{_labels(labels)} {_format_number(value)}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n" if self._lines else ""


def _render_histogram(
    lines: _Lines, name: str, stats: dict, labels: dict | None
) -> None:
    """A histogram snapshot dict as a Prometheus summary."""
    lines.type_header(name, "summary")
    for key, q in SNAPSHOT_QUANTILES:
        value = stats.get(key)
        if value is None:
            continue
        lines.sample(name, {**(labels or {}), "quantile": str(q)}, value)
    lines.sample(f"{name}_count", labels, stats.get("count", 0))
    lines.sample(f"{name}_sum", labels, stats.get("total", 0.0))


def render_registry_prometheus(
    snapshot: dict,
    *,
    prefix: str = "repro",
    labels: dict | None = None,
) -> str:
    """A ``MetricsRegistry.snapshot()`` dict as Prometheus text.

    ``snapshot`` has the registry shape ``{name: {"kind": ..., "value":
    ...}}``; histogram values are their stats dicts. Works identically
    on live registries and on ``metrics_snapshot`` trace events replayed
    from old runs (``repro metrics --format prometheus``).
    """
    lines = _Lines()
    _append_registry(lines, snapshot, prefix=prefix, labels=labels)
    return lines.text()


def _append_registry(
    lines: _Lines, snapshot: dict, *, prefix: str, labels: dict | None
) -> None:
    for name, entry in snapshot.items():
        kind = entry.get("kind")
        value = entry.get("value")
        metric = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        if kind == "histogram":
            if isinstance(value, dict):
                _render_histogram(lines, metric, value, labels)
        elif kind == "counter":
            # Prometheus counters conventionally end in _total.
            if not metric.endswith("_total"):
                metric += "_total"
            lines.type_header(metric, "counter")
            lines.sample(metric, labels, value)
        else:
            lines.type_header(metric, "gauge")
            lines.sample(metric, labels, value)


def render_hub_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """A hub snapshot (:meth:`TelemetryHub.snapshot`) as Prometheus text."""
    lines = _Lines()
    slots = snapshot.get("slots") or {}
    if slots.get("utilization") is not None:
        name = f"{prefix}_cluster_slot_utilization"
        lines.type_header(name, "gauge", "Busy fraction of cluster map slots.")
        lines.sample(name, None, slots["utilization"])
    if slots.get("total") is not None:
        name = f"{prefix}_cluster_map_slots"
        lines.type_header(name, "gauge")
        lines.sample(name, {"state": "total"}, slots["total"])
        lines.sample(name, {"state": "available"}, slots.get("available") or 0)
    sweep = snapshot.get("sweep")
    if sweep:
        name = f"{prefix}_sweep_points"
        lines.type_header(name, "gauge", "Sweep progress by point state.")
        if sweep.get("points") is not None:
            lines.sample(name, {"state": "total"}, sweep["points"])
        lines.sample(name, {"state": "done"}, sweep.get("done", 0))
        lines.sample(name, {"state": "cached"}, sweep.get("cached", 0))

    # Watchdog alerts: the count gauge is emitted whenever the snapshot
    # carries the key (even at 0), so a scraper can tell "no alerts"
    # apart from "producer predates the watchdog"; one labelled gauge
    # per active alert carries the detail.
    alerts = snapshot.get("alerts")
    if alerts is not None:
        name = f"{prefix}_alerts_active"
        lines.type_header(name, "gauge", "Active watchdog alerts.")
        lines.sample(name, None, len(alerts))
        if alerts:
            name = f"{prefix}_alert"
            lines.type_header(
                name, "gauge", "One sample per active watchdog alert."
            )
            for alert in alerts:
                lines.sample(
                    name,
                    {
                        "job": alert.get("job_id") or "",
                        "detector": alert.get("detector") or "",
                        "severity": alert.get("severity") or "",
                    },
                    1,
                )

    for job_id, job in (snapshot.get("jobs") or {}).items():
        labels = {"job": job_id}
        for key, kind, help_text in (
            ("rows_total", "counter", "Rows scanned (live in-flight included)."),
            ("outputs_total", "counter", "Map outputs produced."),
            ("splits_added", "counter", None),
            ("splits_completed", "counter", None),
            ("evaluations", "counter", "Input Provider evaluations."),
        ):
            name = sanitize_metric_name(f"{prefix}_job_{key}")
            if kind == "counter" and not name.endswith("_total"):
                name += "_total"
            lines.type_header(name, kind, help_text)
            lines.sample(name, labels, job.get(key) or 0)
        name = f"{prefix}_job_running_maps"
        lines.type_header(name, "gauge")
        lines.sample(name, labels, job.get("running_maps") or 0)
        grab = job.get("grab_to_grant") or {}
        if grab.get("count"):
            _render_histogram(
                lines,
                f"{prefix}_job_grab_to_grant_seconds",
                {**grab, "total": grab.get("total", 0.0)},
                labels,
            )
        ci = job.get("ci")
        if isinstance(ci, dict) and ci.get("half_width") is not None:
            name = f"{prefix}_job_ci_half_width"
            lines.type_header(
                name, "gauge", "Confidence-interval half-width (accuracy jobs)."
            )
            lines.sample(name, labels, ci["half_width"])
        worker = job.get("worker") or {}
        if worker.get("deltas"):
            name = f"{prefix}_job_worker_deltas_total"
            lines.type_header(
                name, "counter", "Cross-process worker telemetry flushes received."
            )
            lines.sample(name, labels, worker["deltas"])

    for scope, registry in (snapshot.get("registries") or {}).items():
        _append_registry(
            lines, registry, prefix=prefix, labels={"scope": scope}
        )
    return lines.text()


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text exposition into ``{metric: [(labels, value)]}``.

    Strict enough to catch real malformations (bad label syntax,
    non-numeric values, unknown line shapes) — the CI smoke test runs
    every scraped payload through this. Raises :class:`ExpositionError`.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, rest = _parse_sample_head(line, lineno)
        parts = rest.split()
        if len(parts) not in (1, 2):  # value [timestamp]
            raise ExpositionError(f"line {lineno}: malformed sample {raw!r}")
        try:
            value = float(parts[0])
        except ValueError as exc:
            raise ExpositionError(
                f"line {lineno}: non-numeric value {parts[0]!r}"
            ) from exc
        samples.setdefault(name, []).append((labels, value))
    return samples


def _parse_sample_head(line: str, lineno: int) -> tuple[str, dict, str]:
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        end = line.find("}", brace)
        if end == -1:
            raise ExpositionError(f"line {lineno}: unterminated label set")
        labels = _parse_labels(line[brace + 1 : end], lineno)
        rest = line[end + 1 :].strip()
    else:
        if space == -1:
            raise ExpositionError(f"line {lineno}: sample without value")
        name, rest = line[:space], line[space + 1 :].strip()
        labels = {}
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        raise ExpositionError(f"line {lineno}: invalid metric name {name!r}")
    return name, labels, rest


def _parse_labels(body: str, lineno: int) -> dict:
    labels: dict[str, str] = {}
    body = body.strip()
    if not body:
        return labels
    for pair in _split_label_pairs(body, lineno):
        key, _, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if not key or len(value) < 2 or value[0] != '"' or value[-1] != '"':
            raise ExpositionError(f"line {lineno}: malformed label {pair!r}")
        labels[key] = (
            value[1:-1]
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\\\", "\\")
        )
    return labels


def _split_label_pairs(body: str, lineno: int) -> list[str]:
    pairs, depth_quote, start = [], False, 0
    previous = ""
    for index, ch in enumerate(body):
        if ch == '"' and previous != "\\":
            depth_quote = not depth_quote
        elif ch == "," and not depth_quote:
            pairs.append(body[start:index])
            start = index + 1
        previous = ch
    if depth_quote:
        raise ExpositionError(f"line {lineno}: unterminated label value")
    tail = body[start:].strip()
    if tail:
        pairs.append(tail)
    return pairs


# ---------------------------------------------------------------------------
# Background HTTP exporter
# ---------------------------------------------------------------------------
class TelemetryExporter:
    """Serves a hub's snapshot over HTTP from a daemon thread.

    ``GET /metrics`` — Prometheus text exposition of the live snapshot.
    ``GET /telemetry.json`` — the raw snapshot as JSON (``repro top``'s
    wire format).

    The exporter holds only a reference to the hub and renders on each
    request, so scrapes always see current state; it never writes to the
    hub. ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).
    """

    def __init__(self, hub, *, port: int = 0, host: str = "127.0.0.1") -> None:
        self._hub = hub
        self._requested_port = port
        self._host = host
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int | None:
        """The bound port, once started."""
        return self._server.server_address[1] if self._server is not None else None

    def start(self) -> "TelemetryExporter":
        if self._server is not None:
            return self
        hub = self._hub

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_hub_prometheus(hub.snapshot()).encode()
                    ctype = CONTENT_TYPE
                elif path == "/telemetry.json":
                    body = json.dumps(hub.snapshot()).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
