"""Robust summary statistics for benchmark repeats.

Benchmark samples are small (3-10 repeats) and occasionally polluted by
a scheduler hiccup, so everything here is median-based: the median is
the central estimate and the MAD (median absolute deviation) the noise
estimate. One outlier repeat moves neither; a mean/stddev pair would be
dragged by exactly the repeats we want to ignore.
"""

from __future__ import annotations

from repro.errors import BenchError


def median(values: list[float]) -> float:
    """The sample median (midpoint of the two central values when even)."""
    if not values:
        raise BenchError("median of an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float]) -> float:
    """Median absolute deviation from the median (raw, unscaled).

    Left unscaled (no 1.4826 normal-consistency factor) because it is
    only ever compared against thresholds expressed in MAD units.
    """
    center = median(values)
    return median([abs(v - center) for v in values])


def summarize(values: list[float]) -> dict:
    """The stored shape for one metric's repeats: values + median + MAD."""
    return {
        "repeats": len(values),
        "values": [float(v) for v in values],
        "median": median(values),
        "mad": mad(values),
    }
