"""Runs benchmark suites under the phase profiler and aggregates repeats.

Every repeat of every suite runs under a *fresh*
:class:`~repro.obs.profile.PhaseProfiler` installed for just that run,
so per-phase wall/CPU totals come out per repeat and aggregate to
median + MAD exactly like the suite's own metrics. When ``profile_dir``
is given the last repeat of each suite additionally captures cProfile
stacks, exported as ``<dir>/<suite>/<phase>.pstats`` and
``.collapsed`` (flamegraph input).

The runner also times each suite call as ``<suite>.seconds`` — with the
:data:`~repro.bench.suites.SLOWDOWN_ENV` sleep inside that window, so
the regression gate can be exercised against a synthetically slowed
run.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable

from repro.bench.history import HISTORY_SCHEMA_VERSION, machine_info
from repro.bench.stats import summarize
from repro.bench.suites import (
    Suite,
    injected_slowdown_s,
    metric_direction,
    resolve_suites,
)
from repro.errors import BenchError
from repro.obs.profile import PhaseProfiler, wall_clock


def _summarize_metric(name: str, values: list[float]) -> dict:
    return {"direction": metric_direction(name), **summarize(values)}


def _run_one_suite(
    suite: Suite,
    *,
    repeats: int,
    quick: bool,
    profile_dir: Path | None,
    progress: Callable[[str], None] | None,
) -> dict:
    metric_values: dict[str, list[float]] = {}
    phase_values: dict[str, dict[str, list[float]]] = {}
    slowdown = injected_slowdown_s()

    for repeat in range(repeats):
        capture = profile_dir is not None and repeat == repeats - 1
        profiler = PhaseProfiler(capture=capture)
        with profiler:
            start = wall_clock()
            metrics = suite.runner(quick)
            if slowdown:
                time.sleep(slowdown)
            elapsed = wall_clock() - start
        if not isinstance(metrics, dict):
            raise BenchError(f"suite {suite.name!r} returned {type(metrics).__name__}")
        metrics = dict(metrics)
        metrics[f"{suite.name}.seconds"] = elapsed
        for name, value in metrics.items():
            metric_values.setdefault(name, []).append(float(value))
        for phase, totals in profiler.phase_totals().items():
            slot = phase_values.setdefault(phase, {"wall_s": [], "cpu_s": []})
            slot["wall_s"].append(totals["wall_s"])
            slot["cpu_s"].append(totals["cpu_s"])
        if capture and profiler.captured_phases:
            out = profile_dir / suite.name
            profiler.dump_pstats(out)
            profiler.write_collapsed(out)
        if progress is not None:
            progress(f"{suite.name}: repeat {repeat + 1}/{repeats} done")

    lengths = {len(values) for values in metric_values.values()}
    if lengths != {repeats}:
        raise BenchError(
            f"suite {suite.name!r} metrics changed between repeats: {sorted(metric_values)}"
        )
    return {
        "metrics": {
            name: _summarize_metric(name, values)
            for name, values in sorted(metric_values.items())
        },
        "phases": {
            phase: {kind: summarize(values) for kind, values in sorted(slot.items())}
            for phase, slot in sorted(phase_values.items())
        },
    }


def run_suites(
    names: list[str] | None = None,
    *,
    repeats: int = 3,
    quick: bool = False,
    label: str = "",
    profile_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run suites ``repeats`` times each; returns the full run record.

    The record is self-describing and append-ready for the history
    store: schema version, a content-hashed ``run_id``, the machine
    fingerprint, the options that shaped the numbers, and per-suite
    ``metrics`` (median/MAD per metric, direction included) plus
    ``phases`` (profiler wall/CPU medians per phase).
    """
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    suites = resolve_suites(names)
    profile_path = Path(profile_dir) if profile_dir is not None else None

    results = {
        suite.name: _run_one_suite(
            suite,
            repeats=repeats,
            quick=quick,
            profile_dir=profile_path,
            progress=progress,
        )
        for suite in suites
    }

    record = {
        "schema": HISTORY_SCHEMA_VERSION,
        "pr": 7,
        "timestamp": time.time(),
        "label": label,
        "machine": machine_info(),
        "options": {
            "quick": quick,
            "repeats": repeats,
            "suites": [suite.name for suite in suites],
            "injected_slowdown_s": injected_slowdown_s(),
        },
        "suites": results,
    }
    blob = json.dumps(record, sort_keys=True).encode()
    record["run_id"] = hashlib.sha256(blob).hexdigest()[:12]
    return record


def render_run(record: dict) -> str:
    """Human-readable summary of one run record (metrics + phase medians)."""
    options = record["options"]
    lines = [
        f"bench run {record['run_id']}"
        f"  (repeats={options['repeats']}, quick={options['quick']}"
        + (f", label={record['label']!r}" if record.get("label") else "")
        + ")"
    ]
    for suite, data in record["suites"].items():
        lines.append(f"[{suite}]")
        for name, metric in data["metrics"].items():
            lines.append(
                f"  {name:<32} median {metric['median']:>14.4f}"
                f"  mad {metric['mad']:.4f}  ({metric['direction']} is better)"
            )
        if data["phases"]:
            lines.append("  phases (median):")
            for phase, slot in data["phases"].items():
                lines.append(
                    f"    {phase:<24} {slot['wall_s']['median']:>10.4f} wall s"
                    f"  {slot['cpu_s']['median']:>10.4f} cpu s"
                )
    return "\n".join(lines)
