"""Machine-keyed JSONL history store for benchmark runs.

One append-only file per machine fingerprint under
``benchmarks/history/`` — absolute numbers are only comparable within a
machine, so the key keeps different hardware from interleaving in one
series. Records are the full run dicts produced by
:func:`repro.bench.runner.run_suites`, one JSON object per line, newest
last.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from pathlib import Path

from repro.errors import BenchError

#: Default store location, relative to the working directory (the repo
#: root in CI and normal use).
DEFAULT_HISTORY_DIR = Path("benchmarks/history")

HISTORY_SCHEMA_VERSION = 1


def effective_cpu_count() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware).

    ``os.cpu_count()`` reports the host's cores; containers and CI
    runners routinely pin the process to fewer. Parallel-scan speedups
    are only interpretable against *this* number, so it is recorded in
    the machine fingerprint alongside ``cpu_count``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platform without sched_getaffinity
        return os.cpu_count() or 1


def machine_info() -> dict:
    """The hardware/runtime fingerprint stored with (and keying) runs."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective_cpu_count(),
    }


def machine_key(info: dict | None = None) -> str:
    """Stable 12-hex-digit key for one machine fingerprint."""
    info = info if info is not None else machine_info()
    blob = json.dumps(info, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def history_path(directory: str | Path | None = None, key: str | None = None) -> Path:
    directory = Path(directory) if directory is not None else DEFAULT_HISTORY_DIR
    return directory / f"{key if key is not None else machine_key()}.jsonl"


def append_run(record: dict, directory: str | Path | None = None) -> Path:
    """Append one run record to this machine's history file."""
    path = history_path(directory, machine_key(record.get("machine")))
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(
    directory: str | Path | None = None, key: str | None = None
) -> list[dict]:
    """All recorded runs for one machine, oldest first ([] when none)."""
    path = history_path(directory, key)
    if not path.exists():
        return []
    records = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise BenchError(f"{path}:{line_no}: corrupt history record: {exc}")
    return records


def find_run(records: list[dict], run_id: str) -> dict:
    """The record with this run_id (unique-prefix match allowed)."""
    matches = [r for r in records if str(r.get("run_id", "")).startswith(run_id)]
    if not matches:
        raise BenchError(f"no run {run_id!r} in history ({len(records)} records)")
    if len(matches) > 1:
        raise BenchError(f"run id {run_id!r} is ambiguous ({len(matches)} matches)")
    return matches[0]


def latest_run(records: list[dict], *, label: str | None = None) -> dict:
    """The newest record, optionally restricted to one label."""
    pool = records if label is None else [r for r in records if r.get("label") == label]
    if not pool:
        where = f" with label {label!r}" if label is not None else ""
        raise BenchError(f"history has no runs{where}")
    return pool[-1]
