"""The declarative benchmark suite registry behind ``repro bench``.

Each :class:`Suite` is a named function from a ``quick`` flag to a flat
``{metric_name: value}`` dict; the runner times the whole call as
``<suite>.seconds`` on top of whatever the suite reports itself. Metric
direction is encoded in the name: ``*_per_sec`` / ``*_speedup`` metrics
are higher-is-better, everything else (durations, counts of work done)
is lower-is-better — :func:`metric_direction` is the single source of
that rule for the runner and the compare gate.

Suites exercise the real code paths end to end — the simulator kernel,
:func:`repro.scan.engine.run_map_task` over a materialized DFS dataset,
a full Figure 5 policy cell, and the sweep engine — so a regression in
any layer lands in at least one suite.

``REPRO_BENCH_SLOWDOWN_S`` injects a sleep into every timed suite run;
it exists so the regression gate can be tested (and CI-verified) against
a synthetically slowed binary without patching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.errors import BenchError
from repro.obs.profile import wall_clock

#: Environment hook: a float number of seconds slept inside every timed
#: suite window. For testing the regression gate only.
SLOWDOWN_ENV = "REPRO_BENCH_SLOWDOWN_S"


def injected_slowdown_s() -> float:
    """The synthetic per-run slowdown requested via the environment."""
    raw = os.environ.get(SLOWDOWN_ENV)
    if raw is None:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        raise BenchError(f"{SLOWDOWN_ENV} must be a float, got {raw!r}") from None
    if value < 0:
        raise BenchError(f"{SLOWDOWN_ENV} must be >= 0, got {value}")
    return value


def metric_direction(name: str) -> str:
    """``"higher"`` when bigger is better for this metric, else ``"lower"``."""
    if name.endswith("_per_sec") or name.endswith("_speedup"):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class Suite:
    """One registered benchmark: a name, what it covers, and its runner."""

    name: str
    description: str
    runner: Callable[[bool], dict[str, float]]


# ---------------------------------------------------------------------------
# kernel: the discrete-event simulator loop
# ---------------------------------------------------------------------------
def _bench_kernel(quick: bool) -> dict[str, float]:
    from repro.sim.simulator import PeriodicTask, Simulator

    events = 30_000 if quick else 200_000
    sim = Simulator()
    # Eight competing periodic tasks give the heap real interleaving
    # work instead of a single hot entry.
    for i in range(8):
        PeriodicTask(sim, 1.0 + i * 0.13, lambda: None)
    start = wall_clock()
    sim.run(max_events=events)
    elapsed = wall_clock() - start
    if sim.events_processed < events:
        raise BenchError(
            f"kernel bench drained early: {sim.events_processed} < {events}"
        )
    return {"kernel.events_per_sec": events / elapsed if elapsed > 0 else 0.0}


# ---------------------------------------------------------------------------
# scan: the three scan-engine modes over one materialized dataset
# ---------------------------------------------------------------------------
_SCAN_SELECTIVITY = 0.0005  # the paper's 0.05%
_SCAN_PARTITIONS = 8
_scan_cache: dict[int, tuple] = {}


def _scan_fixture(rows: int):
    """(conf, splits) for the scan suite, built once per row count."""
    cached = _scan_cache.get(rows)
    if cached is not None:
        return cached
    from repro.cluster import paper_topology
    from repro.core.sampling_job import make_scan_conf
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale
    from repro.data.predicates import predicate_for_skew
    from repro.dfs import DistributedFileSystem

    spec = dataset_spec_for_scale(
        rows / 6_000_000, name="bench_lineitem", num_partitions=_SCAN_PARTITIONS
    )
    predicate = predicate_for_skew(0)
    dataset = build_materialized_dataset(
        spec, {predicate: 0.0}, seed=0, selectivity=_SCAN_SELECTIVITY
    )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/bench/lineitem", dataset)
    splits = dfs.open_splits("/bench/lineitem")
    conf = make_scan_conf(
        name="bench_scan",
        input_path="/bench/lineitem",
        predicate=predicate,
        columns=("l_orderkey", "l_quantity"),
    )
    _scan_cache[rows] = (conf, splits)
    return conf, splits


def _bench_scan(quick: bool) -> dict[str, float]:
    from repro.scan.engine import SCAN_MODES, ScanOptions, run_map_task

    rows = 12_000 if quick else 120_000
    conf, splits = _scan_fixture(rows)

    metrics: dict[str, float] = {}
    reference = None
    for mode in SCAN_MODES:
        options = ScanOptions(mode=mode)
        start = wall_clock()
        scanned = 0
        outputs = []
        for split in splits:
            context = run_map_task(conf, split, options)
            scanned += context.records_read
            outputs.extend(context.outputs)
        elapsed = wall_clock() - start
        # Timings are only meaningful if the modes agree on the work.
        if reference is None:
            reference = (scanned, outputs)
        elif (scanned, outputs) != reference:
            raise BenchError(f"scan mode {mode!r} diverged from reference output")
        metrics[f"scan.{mode}.rows_per_sec"] = scanned / elapsed if elapsed > 0 else 0.0
    metrics["scan.batch_speedup"] = (
        metrics["scan.batch.rows_per_sec"] / metrics["scan.interpreted.rows_per_sec"]
        if metrics["scan.interpreted.rows_per_sec"] > 0
        else 0.0
    )
    return metrics


# ---------------------------------------------------------------------------
# scan_mp: serial vs process-parallel scan over an mmap dataset
# ---------------------------------------------------------------------------
_scan_mp_cache: dict[int, tuple] = {}


def _scan_mp_fixture(rows: int):
    """(conf, splits) over an mmap-layout dataset, built once per row count.

    The backing file lives in a TemporaryDirectory held by the cache (and
    registered for atexit cleanup), so worker processes can re-open it by
    path for the lifetime of the bench run.
    """
    cached = _scan_mp_cache.get(rows)
    if cached is not None:
        return cached[0], cached[1]
    import atexit
    import tempfile

    from repro.cluster import paper_topology
    from repro.core.sampling_job import make_scan_conf
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale
    from repro.data.predicates import predicate_for_skew
    from repro.dfs import DistributedFileSystem

    tmp = tempfile.TemporaryDirectory(prefix="repro_bench_mmap_")
    atexit.register(tmp.cleanup)
    spec = dataset_spec_for_scale(
        rows / 6_000_000, name="bench_mmap_lineitem", num_partitions=_SCAN_PARTITIONS
    )
    predicate = predicate_for_skew(0)
    dataset = build_materialized_dataset(
        spec,
        {predicate: 0.0},
        seed=0,
        selectivity=_SCAN_SELECTIVITY,
        layout="mmap",
        mmap_path=os.path.join(tmp.name, "lineitem.rcs"),
    )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/bench/lineitem_mmap", dataset)
    splits = dfs.open_splits("/bench/lineitem_mmap")
    conf = make_scan_conf(
        name="bench_scan_mp",
        input_path="/bench/lineitem_mmap",
        predicate=predicate,
        columns=("l_orderkey", "l_quantity"),
    )
    _scan_mp_cache[rows] = (conf, splits, tmp)
    return conf, splits


def _bench_scan_mp(quick: bool) -> dict[str, float]:
    from repro.bench.history import effective_cpu_count
    from repro.engine.runtime import LocalRunner

    rows = 12_000 if quick else 120_000
    conf, splits = _scan_mp_fixture(rows)

    # Guard the preconditions of the process fast path explicitly: if
    # either fails, the runner would silently fall back to the inline
    # path and this suite would mislabel serial numbers as parallel.
    if conf.mapper_factory().scan_task_spec() is None:
        raise BenchError("scan_mp: mapper does not expose a scan task spec")
    if any(split.mmap_ref is None for split in splits):
        raise BenchError("scan_mp: dataset splits carry no mmap refs")

    workers = effective_cpu_count()

    def timed_run(runner) -> tuple[float, object]:
        runner.run(conf, splits)  # warm-up: pool fork, mmap opens, caches
        start = wall_clock()
        result = runner.run(conf, splits)
        return wall_clock() - start, result

    with LocalRunner() as runner:
        serial_s, serial = timed_run(runner)
    with LocalRunner(map_workers=workers, map_executor="process") as runner:
        process_s, parallel = timed_run(runner)

    # Timings are only meaningful if both executors agree on the work.
    if (
        parallel.output_data != serial.output_data
        or parallel.records_processed != serial.records_processed
        or parallel.map_outputs_produced != serial.map_outputs_produced
        or parallel.splits_processed != serial.splits_processed
    ):
        raise BenchError("scan_mp: process executor diverged from serial output")
    scanned = serial.records_processed
    return {
        "scan_mp.single.rows_per_sec": scanned / serial_s if serial_s > 0 else 0.0,
        "scan_mp.process.rows_per_sec": scanned / process_s if process_s > 0 else 0.0,
        "scan_mp.process_speedup": serial_s / process_s if process_s > 0 else 0.0,
        "scan_mp.workers": float(workers),
    }


# ---------------------------------------------------------------------------
# scan_prune: split-statistics pruning vs the stats-off baseline
# ---------------------------------------------------------------------------
_PRUNE_PARTITIONS = 16
_PRUNE_SELECTIVITIES = ((0.0005, "s0005"), (0.005, "s0050"), (0.05, "s0500"))
_prune_cache: dict[tuple[int, float], tuple] = {}


def _prune_fixture(rows: int, selectivity: float):
    """(predicate, splits) over a stats-enabled mmap dataset, cached.

    Matches are placed with heavy (z=6) Zipf skew so they concentrate
    in a few partitions — the zone-map-friendly shape where pruning
    pays: the marker value never appears in the unstamped partitions,
    so their zone maps (and blooms) refute the predicate outright.
    """
    cached = _prune_cache.get((rows, selectivity))
    if cached is not None:
        return cached[0], cached[1]
    import atexit
    import tempfile

    from repro.cluster import paper_topology
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale
    from repro.data.predicates import predicate_for_skew
    from repro.dfs import DistributedFileSystem

    tmp = tempfile.TemporaryDirectory(prefix="repro_bench_prune_")
    atexit.register(tmp.cleanup)
    spec = dataset_spec_for_scale(
        rows / 6_000_000, name="bench_prune_lineitem", num_partitions=_PRUNE_PARTITIONS
    )
    predicate = predicate_for_skew(2)
    dataset = build_materialized_dataset(
        spec,
        {predicate: 6.0},
        seed=0,
        selectivity=selectivity,
        layout="mmap",
        mmap_path=os.path.join(tmp.name, "lineitem.rcs"),
        stats=True,
    )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/bench/lineitem_prune", dataset)
    splits = dfs.open_splits("/bench/lineitem_prune")
    _prune_cache[(rows, selectivity)] = (predicate, splits, tmp)
    return predicate, splits


def _bench_scan_prune(quick: bool) -> dict[str, float]:
    from repro.core.sampling_job import make_sampling_conf
    from repro.engine.runtime import LocalRunner

    rows = 12_000 if quick else 120_000
    metrics: dict[str, float] = {}
    for selectivity, label in _PRUNE_SELECTIVITIES:
        predicate, splits = _prune_fixture(rows, selectivity)
        # k beyond the total match count forces both modes to exhaust
        # the input, so splits_scanned measures exactly the work the
        # statistics saved (and both modes surface every match, making
        # the outputs comparable independent of grab order).
        k = rows
        outputs: dict[str, list] = {}
        for mode in ("off", "prune"):
            conf = make_sampling_conf(
                name=f"bench_prune_{label}_{mode}",
                input_path="/bench/lineitem_prune",
                predicate=predicate,
                sample_size=k,
                policy_name="LA",
                stats_mode=mode,
            )
            with LocalRunner() as runner:
                start = wall_clock()
                result = runner.run(conf, splits)
                elapsed = wall_clock() - start
            outputs[mode] = sorted(map(repr, result.sample))
            metrics[f"scan_prune.{label}.{mode}.splits_scanned"] = float(
                result.splits_processed
            )
            metrics[f"scan_prune.{label}.{mode}.rows_per_sec"] = (
                result.records_processed / elapsed if elapsed > 0 else 0.0
            )
        # Pruning is sound: both modes must surface the same matches.
        if outputs["off"] != outputs["prune"]:
            raise BenchError(
                f"scan_prune: prune mode changed the result set at {label}"
            )
        scanned_off = metrics[f"scan_prune.{label}.off.splits_scanned"]
        scanned_prune = metrics[f"scan_prune.{label}.prune.splits_scanned"]
        metrics[f"scan_prune.{label}.prune_reduction_speedup"] = (
            scanned_off / scanned_prune if scanned_prune > 0 else 0.0
        )
    return metrics


# ---------------------------------------------------------------------------
# approx: error-bounded COUNT vs the full-scan baseline
# ---------------------------------------------------------------------------
_APPROX_PARTITIONS = 32
_APPROX_SELECTIVITY = 0.2
_approx_cache: dict[int, tuple] = {}


def _approx_fixture(rows: int):
    """(predicate, splits, truth) for the approx suite, cached per size.

    A moderately selective predicate (20%) under uniform placement keeps
    per-split match counts varying by sampling noise alone, so the CLT
    interval is honest and the stopping point is a real statistical
    quantity rather than an artifact of planted skew.
    """
    cached = _approx_cache.get(rows)
    if cached is not None:
        return cached
    from repro.cluster import paper_topology
    from repro.data.datasets import build_materialized_dataset, dataset_spec_for_scale
    from repro.data.predicates import predicate_for_skew
    from repro.dfs import DistributedFileSystem

    spec = dataset_spec_for_scale(
        rows / 6_000_000,
        name="bench_approx_lineitem",
        num_partitions=_APPROX_PARTITIONS,
    )
    predicate = predicate_for_skew(0)
    dataset = build_materialized_dataset(
        spec, {predicate: 0.0}, seed=0, selectivity=_APPROX_SELECTIVITY
    )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/bench/lineitem_approx", dataset)
    splits = dfs.open_splits("/bench/lineitem_approx")
    truth = dataset.total_matches(predicate.name)
    _approx_cache[rows] = (predicate, splits, truth)
    return predicate, splits, truth


def _bench_approx(quick: bool) -> dict[str, float]:
    from repro.approx.estimators import AggregateSpec
    from repro.approx.job import make_approx_conf
    from repro.core.sampling_job import make_scan_conf
    from repro.engine.runtime import LocalRunner

    # Even the quick size keeps enough rows per split that the 1% target
    # is reachable before input exhaustion — the reduction metric would
    # otherwise degenerate to 1.0x and the gate would watch a constant.
    rows = 60_000 if quick else 120_000
    error_pct = 1.0
    predicate, splits, truth = _approx_fixture(rows)
    metrics: dict[str, float] = {}

    scan_conf = make_scan_conf(
        name="bench_approx_full",
        input_path="/bench/lineitem_approx",
        predicate=predicate,
    )
    with LocalRunner() as runner:
        start = wall_clock()
        full = runner.run(scan_conf, splits)
        elapsed = wall_clock() - start
    metrics["approx.full.rows_scanned"] = float(full.records_processed)
    metrics["approx.full.rows_per_sec"] = (
        full.records_processed / elapsed if elapsed > 0 else 0.0
    )

    conf = make_approx_conf(
        name="bench_approx_count",
        input_path="/bench/lineitem_approx",
        predicate=predicate,
        aggregate=AggregateSpec("count", None),
        error_pct=error_pct,
        policy_name="LA",
    )
    with LocalRunner() as runner:
        start = wall_clock()
        result = runner.run(conf, splits)
        elapsed = wall_clock() - start
    if result.approx is None or not result.approx["groups"]:
        raise BenchError("approx bench produced no aggregate summary")
    group = result.approx["groups"][0]
    estimate, half = group["estimate"], group["half_width"]
    if estimate is None or half is None:
        raise BenchError("approx bench produced no interval")
    # Soundness canary: the true count must sit within a generous 3x the
    # reported half-width (the run is seeded, so this is deterministic).
    if abs(estimate - truth) > max(3.0 * half, 1e-9):
        raise BenchError(
            f"approx estimate {estimate:.0f} +/- {half:.0f} is inconsistent "
            f"with the true count {truth}"
        )
    metrics["approx.count_1pct.rows_scanned"] = float(result.records_processed)
    metrics["approx.count_1pct.rows_per_sec"] = (
        result.records_processed / elapsed if elapsed > 0 else 0.0
    )
    metrics["approx.count_1pct.splits_scanned"] = float(result.splits_processed)
    metrics["approx.count_1pct.rows_scanned_reduction_speedup"] = (
        full.records_processed / result.records_processed
        if result.records_processed
        else 0.0
    )
    return metrics


# ---------------------------------------------------------------------------
# e2e: one Figure 5 policy cell on the simulated cluster
# ---------------------------------------------------------------------------
def _bench_e2e(quick: bool) -> dict[str, float]:
    from repro.core.sampling_job import make_sampling_conf
    from repro.data.predicates import predicate_for_skew
    from repro.experiments.setup import dataset_for, single_user_cluster
    from repro.experiments.single_user import run_single_user_cell
    from repro.obs.hub import TelemetryHub
    from repro.obs.trace import TraceRecorder

    scale = 5 if quick else 20
    seeds = (0,) if quick else (0, 1)
    cell = run_single_user_cell(scale=scale, z=1, policy="LA", seeds=seeds)
    # Simulated response time is deterministic — zero-MAD by design. It
    # rides along as a semantic canary: a change that moves it altered
    # behavior, not just speed.
    metrics = {"e2e.sim_response_s": cell.response_time.mean}

    # Hub-sourced latency percentiles: the same cell, re-run under a
    # trace recorder with the telemetry hub subscribed, reporting the
    # scheduler's grab-to-grant distribution. Simulated time, so these
    # are deterministic canaries too — a dispatch-path change moves
    # them, machine noise cannot.
    trace = TraceRecorder()
    with TelemetryHub() as hub:
        hub.attach(trace)
        cluster = single_user_cluster(seed=seeds[0], trace=trace)
        cluster.load_dataset("/bench/e2e", dataset_for(scale, 1, seeds[0]))
        conf = make_sampling_conf(
            name="bench_e2e_hub", input_path="/bench/e2e",
            predicate=predicate_for_skew(1), sample_size=10_000,
            policy_name="LA",
        )
        cluster.run_job(conf)
        snapshot = hub.snapshot()
    jobs = list(snapshot["jobs"].values())
    if not jobs:
        raise BenchError("e2e: telemetry hub saw no job")
    grab = jobs[0]["grab_to_grant"]
    if not grab["count"]:
        raise BenchError("e2e: telemetry hub recorded no grab-to-grant samples")
    for key in ("p50", "p95", "p99"):
        metrics[f"e2e.grab_to_grant.{key}_s"] = grab[key]
    return metrics


# ---------------------------------------------------------------------------
# doctor: trace diagnosis (span graph + detectors + audit) throughput
# ---------------------------------------------------------------------------
def _bench_doctor(quick: bool) -> dict[str, float]:
    from repro.core.sampling_job import make_sampling_conf
    from repro.data.predicates import predicate_for_skew
    from repro.experiments.setup import dataset_for, single_user_cluster
    from repro.obs.doctor import diagnose
    from repro.obs.trace import TraceRecorder

    # Record one simulated run, then time repeated diagnosis of its
    # event stream — the doctor is pure read-side, so the same events
    # diagnose identically every pass.
    scale = 5 if quick else 20
    trace = TraceRecorder()
    cluster = single_user_cluster(seed=0, trace=trace)
    cluster.load_dataset("/bench/doctor", dataset_for(scale, 1, 0))
    conf = make_sampling_conf(
        name="bench_doctor", input_path="/bench/doctor",
        predicate=predicate_for_skew(1), sample_size=10_000,
        policy_name="LA",
    )
    cluster.run_job(conf)
    events = trace.raw_events
    repeats = 5 if quick else 20
    start = wall_clock()
    for _ in range(repeats):
        diagnosis = diagnose(events)
    elapsed = wall_clock() - start
    if not diagnosis.model.jobs:
        raise BenchError("doctor bench diagnosed an empty run")
    graph = next(iter(diagnosis.graphs.values()))
    # Deterministic canaries: the healthy simulated run must stay
    # healthy, and the critical path must keep reconciling — a change
    # that moves either altered diagnosis semantics, not speed.
    return {
        "doctor.events_per_sec": (
            len(events) * repeats / elapsed if elapsed > 0 else 0.0
        ),
        "doctor.findings": float(len(diagnosis.findings)),
        "doctor.critical_path_spans": float(len(graph.critical_path)),
    }


# ---------------------------------------------------------------------------
# sweep: a small grid through the sweep engine (serial, uncached)
# ---------------------------------------------------------------------------
def _bench_sweep(quick: bool) -> dict[str, float]:
    from repro.experiments.sweep import figure5_points, run_sweep

    policies = ("LA",) if quick else ("LA", "AP")
    points = figure5_points(
        scales=(5,), skews=(1,), policies=policies, seeds=(0,), sample_size=100
    )
    start = wall_clock()
    results = run_sweep(points, jobs=1, cache=None)
    elapsed = wall_clock() - start
    if len(results) != len(points):
        raise BenchError(f"sweep bench lost cells: {len(results)} != {len(points)}")
    return {"sweep.cells_per_sec": len(points) / elapsed if elapsed > 0 else 0.0}


#: The registry, in display order. ``repro bench run`` with no --suite
#: runs all of them.
SUITES: dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite("kernel", "discrete-event simulator loop throughput", _bench_kernel),
        Suite("scan", "scan-engine modes over a materialized dataset", _bench_scan),
        Suite(
            "scan_mp",
            "serial vs process-parallel scan over an mmap dataset",
            _bench_scan_mp,
        ),
        Suite(
            "scan_prune",
            "split-statistics pruning vs the stats-off sampling baseline",
            _bench_scan_prune,
        ),
        Suite(
            "approx",
            "error-bounded COUNT (accuracy provider) vs a full scan",
            _bench_approx,
        ),
        Suite("e2e", "one Figure 5 policy cell end to end (sim substrate)", _bench_e2e),
        Suite(
            "doctor",
            "trace diagnosis: span graph + detectors + audit replay",
            _bench_doctor,
        ),
        Suite("sweep", "sweep engine over a small Figure 5 grid", _bench_sweep),
    )
}


def resolve_suites(names: list[str] | None) -> list[Suite]:
    """The suites to run, validating names; None/empty means all."""
    if not names:
        return list(SUITES.values())
    missing = [name for name in names if name not in SUITES]
    if missing:
        raise BenchError(
            f"unknown suite(s) {missing}; registered: {sorted(SUITES)}"
        )
    return [SUITES[name] for name in names]
