"""Noise-aware regression detection between two benchmark runs.

A metric regresses when its median moved in the *worse* direction by
more than a threshold scaled to the observed noise:

    threshold = max(threshold_mads * max(MAD_baseline, MAD_current),
                    rel_floor * |median_baseline|)

The MAD term adapts the gate to each metric's measured repeat-to-repeat
jitter; the relative floor keeps near-deterministic metrics (MAD ~ 0,
e.g. simulated response times) from tripping on infinitesimal shifts.
Metrics with fewer than ``min_repeats`` repeats on either side are
reported but never gated — two samples cannot estimate noise.

Direction comes from the recorded metric entry (``"higher"`` for
``*_per_sec``/``*_speedup`` throughputs, ``"lower"`` for durations), so
a throughput drop and a latency rise are both "worse".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import BenchError

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_SKIPPED = "skipped"

DEFAULT_THRESHOLD_MADS = 5.0
DEFAULT_REL_FLOOR = 0.10
DEFAULT_MIN_REPEATS = 3


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current verdict."""

    suite: str
    metric: str
    direction: str
    baseline_median: float
    current_median: float
    threshold: float
    status: str
    note: str = ""

    @property
    def delta(self) -> float:
        return self.current_median - self.baseline_median

    @property
    def ratio(self) -> float | None:
        if self.baseline_median == 0:
            return None
        return self.current_median / self.baseline_median


@dataclass
class CompareReport:
    """Every per-metric verdict plus run-level context and warnings."""

    baseline_id: str
    current_id: str
    deltas: list[MetricDelta] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_REGRESSION]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_IMPROVEMENT]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_id,
            "current": self.current_id,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "warnings": list(self.warnings),
            "deltas": [
                {**asdict(delta), "delta": delta.delta, "ratio": delta.ratio}
                for delta in self.deltas
            ],
        }


def _judge(
    suite: str,
    metric: str,
    baseline: dict,
    current: dict,
    *,
    threshold_mads: float,
    rel_floor: float,
    min_repeats: int,
) -> MetricDelta:
    direction = current.get("direction", baseline.get("direction", "lower"))
    base_median = baseline["median"]
    cur_median = current["median"]
    threshold = max(
        threshold_mads * max(baseline["mad"], current["mad"]),
        rel_floor * abs(base_median),
    )
    if baseline["repeats"] < min_repeats or current["repeats"] < min_repeats:
        return MetricDelta(
            suite, metric, direction, base_median, cur_median, threshold,
            STATUS_SKIPPED,
            note=(
                f"not gated: {min(baseline['repeats'], current['repeats'])} repeats "
                f"< min_repeats={min_repeats}"
            ),
        )
    # Positive ``worse`` means the current run moved in the bad direction.
    worse = cur_median - base_median if direction == "lower" else base_median - cur_median
    if worse > threshold:
        status = STATUS_REGRESSION
    elif -worse > threshold:
        status = STATUS_IMPROVEMENT
    else:
        status = STATUS_OK
    return MetricDelta(
        suite, metric, direction, base_median, cur_median, threshold, status
    )


def compare_runs(
    baseline: dict,
    current: dict,
    *,
    threshold_mads: float = DEFAULT_THRESHOLD_MADS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_repeats: int = DEFAULT_MIN_REPEATS,
) -> CompareReport:
    """Judge every metric both runs share; see the module docstring."""
    if threshold_mads <= 0 or rel_floor < 0 or min_repeats < 1:
        raise BenchError(
            "invalid compare settings: need threshold_mads > 0, "
            f"rel_floor >= 0, min_repeats >= 1 (got {threshold_mads}, "
            f"{rel_floor}, {min_repeats})"
        )
    report = CompareReport(
        baseline_id=str(baseline.get("run_id", "?")),
        current_id=str(current.get("run_id", "?")),
    )
    if baseline.get("machine") != current.get("machine"):
        report.warnings.append(
            "machine fingerprints differ; absolute comparisons are unreliable"
        )
    if baseline.get("options", {}).get("quick") != current.get("options", {}).get("quick"):
        report.warnings.append("one run is --quick and the other is not")

    base_suites = baseline.get("suites", {})
    cur_suites = current.get("suites", {})
    shared = sorted(set(base_suites) & set(cur_suites))
    if not shared:
        raise BenchError("runs share no suites; nothing to compare")
    for missing in sorted(set(base_suites) ^ set(cur_suites)):
        report.warnings.append(f"suite {missing!r} present in only one run")

    for suite in shared:
        base_metrics = base_suites[suite].get("metrics", {})
        cur_metrics = cur_suites[suite].get("metrics", {})
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            report.deltas.append(
                _judge(
                    suite,
                    metric,
                    base_metrics[metric],
                    cur_metrics[metric],
                    threshold_mads=threshold_mads,
                    rel_floor=rel_floor,
                    min_repeats=min_repeats,
                )
            )
    return report


def render_compare(report: CompareReport) -> str:
    """Human-readable verdict table, worst news first."""
    lines = [f"bench compare: {report.baseline_id} (baseline) vs {report.current_id}"]
    for warning in report.warnings:
        lines.append(f"warning: {warning}")
    header = (
        f"{'status':<12} {'suite':<8} {'metric':<28} "
        f"{'baseline':>14} {'current':>14} {'ratio':>7}"
    )
    lines += [header, "-" * len(header)]
    order = {STATUS_REGRESSION: 0, STATUS_IMPROVEMENT: 1, STATUS_OK: 2, STATUS_SKIPPED: 3}
    for delta in sorted(report.deltas, key=lambda d: (order[d.status], d.suite, d.metric)):
        ratio = f"{delta.ratio:.3f}" if delta.ratio is not None else "n/a"
        lines.append(
            f"{delta.status:<12} {delta.suite:<8} {delta.metric:<28} "
            f"{delta.baseline_median:>14.4f} {delta.current_median:>14.4f} {ratio:>7}"
            + (f"  [{delta.note}]" if delta.note else "")
        )
    verdict = "OK" if report.ok else f"{len(report.regressions)} REGRESSION(S)"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def report_json(report: CompareReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
