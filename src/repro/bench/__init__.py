"""Continuous benchmarking: suites, history, and regression comparison.

``benchmarks/perf/`` holds the one-shot PR-to-PR harnesses; this package
is the durable successor exposed as ``repro bench``:

* :mod:`repro.bench.suites` — a declarative registry of benchmark
  suites (kernel, scan modes, end-to-end policy run, sweep), each a
  function from a ``quick`` flag to a dict of metrics;
* :mod:`repro.bench.runner` — runs suites N times under a fresh
  :class:`~repro.obs.profile.PhaseProfiler` per repeat and aggregates
  median + MAD per metric with per-phase breakdowns;
* :mod:`repro.bench.history` — a machine-keyed JSONL history store
  (``benchmarks/history/<machine>.jsonl``) so the perf trajectory is a
  queryable series rather than loose ``BENCH_*.json`` files;
* :mod:`repro.bench.stats` — median/MAD helpers;
* :mod:`repro.bench.compare` — noise-aware regression detection between
  any two recorded runs (median shift vs a MAD-scaled threshold with a
  minimum-repeats guard), the CI perf gate.
"""

from repro.bench.compare import CompareReport, MetricDelta, compare_runs, render_compare
from repro.bench.history import (
    append_run,
    history_path,
    load_history,
    machine_info,
    machine_key,
)
from repro.bench.runner import run_suites
from repro.bench.stats import mad, median, summarize
from repro.bench.suites import SLOWDOWN_ENV, SUITES, Suite, injected_slowdown_s

__all__ = [
    "CompareReport",
    "MetricDelta",
    "compare_runs",
    "render_compare",
    "append_run",
    "history_path",
    "load_history",
    "machine_info",
    "machine_key",
    "run_suites",
    "mad",
    "median",
    "summarize",
    "SLOWDOWN_ENV",
    "SUITES",
    "Suite",
    "injected_slowdown_s",
]
