"""The discrete-event simulator.

A minimal, deterministic, callback-style event loop. Components schedule
callbacks at future simulated instants; :meth:`Simulator.run` pops events in
``(time, insertion order)`` order, advances the clock, and invokes them.

The kernel is intentionally callback-based rather than coroutine-based:
the Hadoop components built on top (JobTracker, TaskTrackers, JobClients)
are naturally event-driven state machines, and callbacks keep stack traces
shallow and runs reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, ScheduledEvent, next_sequence


class Simulator:
    """Deterministic discrete-event loop with a simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("fires at t=5"))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = SimClock(start_time)
        self._heap: list[ScheduledEvent] = []
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = ScheduledEvent(
            time=float(time),
            seq=next_sequence(),
            callback=callback,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_now(self, callback: Callable[..., Any], *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        *,
        advance_clock: bool = True,
    ) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the simulated time at which the loop stopped. When ``until``
        is given, the queue drains earlier, and ``advance_clock`` is true
        (the default), the clock is advanced to ``until`` so repeated
        ``run(until=...)`` calls compose predictably; pass
        ``advance_clock=False`` to leave the clock at the last event.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self.now:
            raise SimulationError(f"cannot run until t={until}, already at t={self.now}")
        self._running = True
        self._stopped = False
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and self._events_processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._clock.advance_to(event.time)
                self._events_processed += 1
                event.callback(*event.args)
            if (
                until is not None
                and advance_clock
                and not self._stopped
                and self.now < until
            ):
                self._clock.advance_to(until)
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute exactly one live event. Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._clock.advance_to(event.time)
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the active event."""
        self._stopped = True

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class PeriodicTask:
    """Re-schedules a callback at a fixed period until cancelled.

    Used for pollers such as the dynamic-job evaluation loop and the
    cluster metrics monitor. The callback may call :meth:`cancel` from
    within itself to stop the loop.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        *,
        start_delay: float | None = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"periodic task period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._cancelled = False
        first = period if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._fire, label=label)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._handle = self._sim.schedule(self._period, self._fire, label=self._label)
