"""The discrete-event simulator.

A minimal, deterministic, callback-style event loop. Components schedule
callbacks at future simulated instants; :meth:`Simulator.run` pops events in
``(time, insertion order)`` order, advances the clock, and invokes them.

The kernel is intentionally callback-based rather than coroutine-based:
the Hadoop components built on top (JobTracker, TaskTrackers, JobClients)
are naturally event-driven state machines, and callbacks keep stack traces
shallow and runs reproducible.

Hot-path design (the whole evaluation pipeline is bottlenecked on this
loop):

* heap entries are ``(time, seq, event)`` tuples, ordered by C-level tuple
  comparison — no Python ``__lt__`` call per heap comparison;
* the tie-break ``seq`` counter is per-simulator, so event ordering (and
  therefore results) cannot depend on other simulators in the process;
* a live-event counter is maintained on schedule/cancel/pop, making
  :attr:`Simulator.pending_events` O(1) instead of an O(n) heap scan;
* :class:`PeriodicTask` re-arms by recycling its one event object through
  :meth:`Simulator._reschedule` instead of allocating a fresh
  ``ScheduledEvent`` + ``EventHandle`` per fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs import profile as _profile
from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, ScheduledEvent


class Simulator:
    """Deterministic discrete-event loop with a simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("fires at t=5"))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = SimClock(start_time)
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._live = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock._now

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        time = self._clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, args, label)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._clock._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(float(time), seq, callback, args, label)
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def call_now(self, callback: Callable[..., Any], *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    def _reschedule(self, event: ScheduledEvent, delay: float) -> None:
        """Re-arm an already-fired event ``delay`` seconds from now.

        Internal fast path for :class:`PeriodicTask`: recycles the event
        object (and thereby its handle) instead of allocating new ones.
        The event must have been popped already (``live`` False) and not
        cancelled.
        """
        if event.cancelled or event.live:
            raise SimulationError("can only reschedule a fired, uncancelled event")
        event.time = self._clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        event.live = True
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1

    def _on_cancel(self) -> None:
        """A queued live event was cancelled (called by EventHandle.cancel)."""
        self._live -= 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        *,
        advance_clock: bool = True,
    ) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the simulated time at which the loop stopped. When ``until``
        is given, the queue drains earlier, and ``advance_clock`` is true
        (the default), the clock is advanced to ``until`` so repeated
        ``run(until=...)`` calls compose predictably; pass
        ``advance_clock=False`` to leave the clock at the last event.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self.now:
            raise SimulationError(f"cannot run until t={until}, already at t={self.now}")
        self._running = True
        self._stopped = False
        heap = self._heap
        clock = self._clock
        heappop = heapq.heappop
        processed = self._events_processed
        # One span per run() call, not per event — the loop itself stays
        # timing-free (profiled_span is a shared no-op when no profiler
        # is installed).
        try:
            with _profile.profiled_span(_profile.PHASE_KERNEL):
                while heap:
                    if self._stopped:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if until is not None and entry[0] > until:
                        break
                    heappop(heap)
                    event.live = False
                    self._live -= 1
                    # Heap order guarantees monotone times, so skip the
                    # backwards-motion check in SimClock.advance_to here.
                    clock._now = entry[0]
                    processed += 1
                    self._events_processed = processed
                    event.callback(*event.args)
            if (
                until is not None
                and advance_clock
                and not self._stopped
                and clock._now < until
            ):
                clock.advance_to(until)
        finally:
            self._running = False
        return clock._now

    def step(self) -> bool:
        """Execute exactly one live event. Returns False when none remain."""
        while self._heap:
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.live = False
            self._live -= 1
            self._clock.advance_to(event.time)
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the active event."""
        self._stopped = True

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class PeriodicTask:
    """Re-schedules a callback at a fixed period until cancelled.

    Used for pollers such as the dynamic-job evaluation loop and the
    cluster metrics monitor. The callback may call :meth:`cancel` from
    within itself to stop the loop.

    The task owns a single :class:`ScheduledEvent` that is recycled
    through :meth:`Simulator._reschedule` on every fire, so a poller that
    ticks thousands of times allocates its event machinery once.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        *,
        start_delay: float | None = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"periodic task period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._cancelled = False
        first = period if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._fire, label=label)
        self._event = self._handle._event

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._sim._reschedule(self._event, self._period)
