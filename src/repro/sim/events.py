"""Event objects and handles for the discrete-event kernel."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class ScheduledEvent:
    """An event sitting in the simulator's priority queue.

    Ordering is by ``(time, seq)`` so that events scheduled for the same
    instant fire in the order they were scheduled (FIFO tie-break), which
    keeps runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`repro.sim.simulator.Simulator.schedule`. Cancelling
    is idempotent-safe via :meth:`cancel`; a cancelled event stays in the
    heap but is skipped when popped.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def label(self) -> str:
        return self._event.label

    def cancel(self) -> bool:
        """Cancel the event. Returns True if it was live, False if already cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"


_sequence = itertools.count()


def next_sequence() -> int:
    """Global monotonically increasing tie-break counter."""
    return next(_sequence)
