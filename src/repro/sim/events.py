"""Event objects and handles for the discrete-event kernel.

Performance notes
-----------------
``ScheduledEvent`` is a plain ``__slots__`` class and the simulator's heap
holds ``(time, seq, event)`` tuples rather than the events themselves, so
``heapq`` orders entries with C-level tuple comparison instead of calling a
Python ``__lt__`` per comparison. ``seq`` is unique per simulator, so the
comparison never reaches the (non-comparable) event in the third slot.
"""

from __future__ import annotations

from typing import Any, Callable


class ScheduledEvent:
    """An event sitting in the simulator's priority queue.

    Ordering is by ``(time, seq)`` so that events scheduled for the same
    instant fire in the order they were scheduled (FIFO tie-break), which
    keeps runs deterministic. ``seq`` is per-:class:`Simulator` — two
    simulators in one process never share tie-break numbers, so a run's
    event sequence cannot depend on what ran before it.

    ``live`` tracks heap membership: True while the event is queued and
    not cancelled, False once it is popped for execution or cancelled.
    It lets the simulator keep an O(1) live-event count and guarantees a
    cancellation decrements that count exactly once.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "live", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.live = True
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("live" if self.live else "done")
        return f"ScheduledEvent(t={self.time:.3f}, seq={self.seq}, {state})"


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`repro.sim.simulator.Simulator.schedule`. Cancelling
    is idempotent-safe via :meth:`cancel`; a cancelled event stays in the
    heap but is skipped when popped.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: ScheduledEvent, sim=None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def label(self) -> str:
        return self._event.label

    def cancel(self) -> bool:
        """Cancel the event. Returns True if it was live, False if already cancelled."""
        event = self._event
        if event.cancelled:
            return False
        event.cancelled = True
        if event.live:
            event.live = False
            if self._sim is not None:
                self._sim._on_cancel()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"
