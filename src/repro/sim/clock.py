"""Simulated clock.

Kept separate from the simulator so that components which only need to
*read* time (metrics monitors, loggers) can depend on the narrow
:class:`SimClock` interface instead of the full event loop.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`~repro.errors.SimulationError` on any attempt to move
        backwards, which would indicate a corrupted event queue.
        """
        if time < self._now:
            raise SimulationError(
                f"clock moving backwards: {self._now} -> {time}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f})"
