"""Named, independently seeded random streams.

Experiments need reproducible randomness that does not couple unrelated
components: adding an extra draw in the data generator must not perturb the
split-selection sequence of an Input Provider. ``RandomSource`` derives one
``random.Random`` stream per name from a master seed, so each component
owns an independent, stable stream.
"""

from __future__ import annotations

import hashlib
import random


class RandomSource:
    """Factory of named, deterministic ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)`` so the
        same (seed, name) pair always yields the same sequence regardless of
        creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(self.derive_seed(name))
        self._streams[name] = stream
        return stream

    def derive_seed(self, name: str) -> int:
        """Stable 64-bit seed for ``name`` under this master seed."""
        digest = hashlib.sha256(f"{self._master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomSource":
        """A child source whose master seed is derived from ``name``.

        Used to give each job in a workload its own namespace of streams.
        """
        return RandomSource(self.derive_seed(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(master_seed={self._master_seed})"
