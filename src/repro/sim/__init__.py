"""Discrete-event simulation kernel.

This package is the substrate on which the simulated Hadoop cluster runs.
It provides a deterministic event loop (:class:`~repro.sim.simulator.Simulator`),
a monotonically advancing simulated clock, cancellable event handles, and
named, independently seeded random streams
(:class:`~repro.sim.random_source.RandomSource`).
"""

from repro.sim.events import EventHandle
from repro.sim.random_source import RandomSource
from repro.sim.simulator import Simulator

__all__ = ["EventHandle", "RandomSource", "Simulator"]
