"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been stopped, cancelling an event twice.
    """


class DataGenerationError(ReproError):
    """A dataset or distribution could not be generated as requested."""


class DfsError(ReproError):
    """Distributed-file-system namespace or placement failure."""


class FileNotFoundInDfsError(DfsError):
    """The requested DFS path does not exist."""


class FileAlreadyExistsError(DfsError):
    """Attempt to create a DFS path that already exists."""


class ClusterConfigError(ReproError):
    """The cluster topology or cost model was configured inconsistently."""


class JobError(ReproError):
    """A MapReduce job failed or was configured incorrectly."""


class JobConfError(JobError):
    """A JobConf is missing required parameters or holds invalid values."""


class SchedulerError(ReproError):
    """A task scheduler was driven into an invalid state."""


class PolicyError(ReproError):
    """A growth policy is unknown or its definition is invalid."""


class InputProviderError(ReproError):
    """An Input Provider misbehaved (e.g. returned splits it was never given)."""


class HiveError(ReproError):
    """Base class for query-layer failures."""


class HiveSyntaxError(HiveError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class HiveAnalysisError(HiveError):
    """The query parsed but references unknown tables/columns or bad types."""


class WorkloadError(ReproError):
    """A workload definition or run was invalid."""


class SweepError(ReproError):
    """An experiment sweep was configured or executed incorrectly."""


class ScanCompileError(ReproError):
    """A predicate could not be compiled by the scan codegen layer."""


class MmapStoreError(ReproError):
    """An mmap columnar dataset file is invalid or was misused."""


class BenchError(ReproError):
    """A benchmark suite, history store, or comparison was misused."""
