"""Distributed file system substrate (HDFS analogue).

Files are sequences of blocks; one block corresponds to one input
partition of the paper (the paper stores datasets with no replication,
spread evenly across the cluster's 40 disks). The namenode tracks the
namespace, a placement policy assigns each block to a ``(node, disk)``
storage location, and :class:`~repro.dfs.split.InputSplit` is the
unit a map task consumes.

The package deliberately depends only on opaque node/disk identifiers so
it has no import relationship with the cluster model.
"""

from repro.dfs.block import Block, StorageLocation
from repro.dfs.dfs import DistributedFileSystem
from repro.dfs.namenode import DfsFile, NameNode
from repro.dfs.placement import PlacementPolicy, RandomPlacement, RoundRobinPlacement
from repro.dfs.split import InputSplit

__all__ = [
    "Block",
    "DfsFile",
    "DistributedFileSystem",
    "InputSplit",
    "NameNode",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "StorageLocation",
]
