"""Namenode: the DFS namespace."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfs.block import Block
from repro.errors import DfsError, FileAlreadyExistsError, FileNotFoundInDfsError


@dataclass(frozen=True)
class DfsFile:
    """An immutable file: an ordered list of blocks."""

    path: str
    blocks: tuple[Block, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_bytes(self) -> int:
        return sum(b.num_bytes for b in self.blocks)

    @property
    def num_records(self) -> int:
        return sum(b.num_records for b in self.blocks)


def normalize_path(path: str) -> str:
    """Canonical form: leading slash, no trailing slash, collapsed separators."""
    if not path or path.isspace():
        raise DfsError("empty DFS path")
    parts = [part for part in path.split("/") if part]
    if not parts:
        raise DfsError(f"invalid DFS path {path!r}")
    return "/" + "/".join(parts)


@dataclass
class NameNode:
    """Tracks the file namespace. Single instance per DFS (as in HDFS)."""

    _files: dict[str, DfsFile] = field(default_factory=dict)

    def create_file(self, path: str, blocks: list[Block]) -> DfsFile:
        canonical = normalize_path(path)
        if canonical in self._files:
            raise FileAlreadyExistsError(f"DFS path already exists: {canonical}")
        dfs_file = DfsFile(path=canonical, blocks=tuple(blocks))
        self._files[canonical] = dfs_file
        return dfs_file

    def get_file(self, path: str) -> DfsFile:
        canonical = normalize_path(path)
        try:
            return self._files[canonical]
        except KeyError:
            raise FileNotFoundInDfsError(f"no such DFS file: {canonical}") from None

    def exists(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def delete(self, path: str) -> None:
        canonical = normalize_path(path)
        if canonical not in self._files:
            raise FileNotFoundInDfsError(f"no such DFS file: {canonical}")
        del self._files[canonical]

    def list_files(self, prefix: str = "/") -> list[str]:
        canonical = normalize_path(prefix) if prefix != "/" else "/"
        if canonical == "/":
            return sorted(self._files)
        return sorted(
            path
            for path in self._files
            if path == canonical or path.startswith(canonical + "/")
        )

    @property
    def num_files(self) -> int:
        return len(self._files)
