"""Block placement policies.

The paper requires "a balanced distribution of load across the 40 disks
... input data evenly distributed across the disks with no replication"
(§V-B); :class:`RoundRobinPlacement` realizes exactly that.
:class:`RandomPlacement` is provided for sensitivity experiments.
"""

from __future__ import annotations

import random

from repro.dfs.block import StorageLocation
from repro.errors import DfsError


class PlacementPolicy:
    """Assigns storage locations to each block of a new file."""

    def place(self, num_blocks: int, locations: list[StorageLocation]) -> list[StorageLocation]:
        """Return one primary location per block (length ``num_blocks``)."""
        raise NotImplementedError

    def place_replicas(
        self,
        num_blocks: int,
        locations: list[StorageLocation],
        replication: int,
    ) -> list[tuple[StorageLocation, ...]]:
        """Return ``replication`` distinct-node locations per block.

        The primary comes from :meth:`place`; additional replicas walk
        the location list from the primary onward, taking the next
        locations on nodes not already holding a copy (HDFS places
        replicas on distinct nodes).
        """
        if replication < 1:
            raise DfsError(f"replication must be >= 1, got {replication}")
        primaries = self.place(num_blocks, locations)
        if replication == 1:
            return [(primary,) for primary in primaries]
        distinct_nodes = len({loc.node_id for loc in locations})
        if replication > distinct_nodes:
            raise DfsError(
                f"replication {replication} exceeds the {distinct_nodes} "
                "distinct storage nodes"
            )
        placed = []
        for primary in primaries:
            replicas = [primary]
            used_nodes = {primary.node_id}
            start = locations.index(primary)
            offset = 1
            while len(replicas) < replication:
                candidate = locations[(start + offset) % len(locations)]
                offset += 1
                if candidate.node_id not in used_nodes:
                    replicas.append(candidate)
                    used_nodes.add(candidate.node_id)
            placed.append(tuple(replicas))
        return placed


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through the available (node, disk) locations in order.

    With ``num_blocks`` a multiple of the location count this yields the
    paper's perfectly even spread; otherwise the remainder lands on the
    head of the cycle. ``start_offset`` rotates the cycle so consecutive
    files do not all start on the same disk.
    """

    def __init__(self, start_offset: int = 0) -> None:
        self._offset = start_offset

    def place(self, num_blocks: int, locations: list[StorageLocation]) -> list[StorageLocation]:
        if not locations:
            raise DfsError("cannot place blocks: no storage locations")
        placed = [
            locations[(self._offset + i) % len(locations)] for i in range(num_blocks)
        ]
        self._offset = (self._offset + num_blocks) % len(locations)
        return placed


class RandomPlacement(PlacementPolicy):
    """Independent uniform choice per block (HDFS default-like)."""

    def __init__(self, rng: random.Random | None = None) -> None:
        self._rng = rng or random.Random(0)

    def place(self, num_blocks: int, locations: list[StorageLocation]) -> list[StorageLocation]:
        if not locations:
            raise DfsError("cannot place blocks: no storage locations")
        return [self._rng.choice(locations) for _ in range(num_blocks)]
