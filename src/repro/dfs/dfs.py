"""The DistributedFileSystem facade.

Ties together the namenode, a placement policy, and the storage
locations exported by the cluster topology. Datasets built by
:mod:`repro.data.datasets` are written in as one block per partition;
jobs read them back as :class:`~repro.dfs.split.InputSplit` lists.
"""

from __future__ import annotations

import itertools

from repro.data.datasets import PartitionedDataset
from repro.dfs.block import Block, StorageLocation
from repro.dfs.namenode import DfsFile, NameNode
from repro.dfs.placement import PlacementPolicy, RoundRobinPlacement
from repro.dfs.split import InputSplit
from repro.errors import DfsError


class DistributedFileSystem:
    """Namespace + placement over a fixed set of storage locations."""

    def __init__(
        self,
        storage_locations: list[StorageLocation],
        placement: PlacementPolicy | None = None,
        replication: int = 1,
    ) -> None:
        if not storage_locations:
            raise DfsError("a DFS needs at least one storage location")
        if replication < 1:
            raise DfsError(f"replication must be >= 1, got {replication}")
        self._locations = list(storage_locations)
        self._placement = placement or RoundRobinPlacement()
        self.replication = replication
        self._namenode = NameNode()
        self._block_counter = itertools.count()

    @property
    def namenode(self) -> NameNode:
        return self._namenode

    @property
    def storage_locations(self) -> list[StorageLocation]:
        return list(self._locations)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write_dataset(
        self,
        path: str,
        dataset: PartitionedDataset,
        *,
        replication: int | None = None,
    ) -> DfsFile:
        """Store a partitioned dataset as one file, one block per partition.

        ``replication`` overrides the filesystem default for this file.
        """
        factor = self.replication if replication is None else replication
        placements = self._placement.place_replicas(
            len(dataset.partitions), self._locations, factor
        )
        blocks = [
            Block(
                block_id=f"blk_{next(self._block_counter):08d}",
                file_path=path,
                index=partition.index,
                num_bytes=partition.num_bytes,
                location=replicas[0],
                payload=partition,
                replicas=replicas,
            )
            for partition, replicas in zip(dataset.partitions, placements)
        ]
        return self._namenode.create_file(path, blocks)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def open_splits(self, path: str) -> list[InputSplit]:
        """The input splits of a file, one per block, in file order."""
        dfs_file = self._namenode.get_file(path)
        return [
            InputSplit(split_id=f"{dfs_file.path}:{block.index}", block=block)
            for block in dfs_file.blocks
        ]

    def file_info(self, path: str) -> DfsFile:
        return self._namenode.get_file(path)

    def exists(self, path: str) -> bool:
        return self._namenode.exists(path)

    def delete(self, path: str) -> None:
        self._namenode.delete(path)
