"""Blocks and storage locations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import PartitionData
from repro.errors import DfsError


@dataclass(frozen=True)
class StorageLocation:
    """A (node, disk) pair that physically holds a block.

    Node and disk identifiers are opaque strings/ints owned by the cluster
    model; the DFS never interprets them beyond equality.
    """

    node_id: str
    disk_id: int

    def __str__(self) -> str:
        return f"{self.node_id}/disk{self.disk_id}"


@dataclass(frozen=True)
class Block:
    """One immutable block of a DFS file.

    A block has one or more replica locations (HDFS-style). The paper's
    datasets are unreplicated, so the default replication factor is 1
    and ``location`` names the single/primary replica. ``payload``
    carries the partition's data or profile
    (:class:`~repro.data.datasets.PartitionData`).
    """

    block_id: str
    file_path: str
    index: int
    num_bytes: int
    location: StorageLocation
    payload: PartitionData
    replicas: tuple[StorageLocation, ...] = ()

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise DfsError(f"block {self.block_id}: negative size {self.num_bytes}")
        if self.index < 0:
            raise DfsError(f"block {self.block_id}: negative index {self.index}")
        if not self.replicas:
            object.__setattr__(self, "replicas", (self.location,))
        elif self.replicas[0] != self.location:
            raise DfsError(
                f"block {self.block_id}: primary location must be replicas[0]"
            )
        nodes = [replica.node_id for replica in self.replicas]
        if len(set(nodes)) != len(nodes):
            raise DfsError(
                f"block {self.block_id}: replicas must land on distinct nodes"
            )

    @property
    def num_records(self) -> int:
        return self.payload.num_records

    @property
    def replication(self) -> int:
        return len(self.replicas)

    def is_local_to(self, node_id: str) -> bool:
        return any(replica.node_id == node_id for replica in self.replicas)

    def replica_on(self, node_id: str) -> StorageLocation | None:
        """The replica stored on ``node_id``, if any."""
        for replica in self.replicas:
            if replica.node_id == node_id:
                return replica
        return None
