"""Input splits.

A split is the unit of work of a map task. In this reproduction splits
correspond 1:1 with DFS blocks (as they do for the paper's unindexed,
unreplicated datasets), and they surface the block's record/byte counts,
per-predicate match counts, and — when the dataset is materialized — the
actual rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.data.record import Row
from repro.dfs.block import Block, StorageLocation
from repro.errors import DfsError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.scan.columnar import ColumnBatch


@dataclass(frozen=True)
class InputSplit:
    """A map task's input: one block of one file."""

    split_id: str
    block: Block

    @property
    def num_bytes(self) -> int:
        return self.block.num_bytes

    @property
    def num_records(self) -> int:
        return self.block.num_records

    @property
    def location(self) -> StorageLocation:
        """The primary replica's location."""
        return self.block.location

    @property
    def replicas(self) -> tuple[StorageLocation, ...]:
        return self.block.replicas

    def replica_on(self, node_id: str) -> StorageLocation | None:
        return self.block.replica_on(node_id)

    @property
    def file_path(self) -> str:
        return self.block.file_path

    @property
    def index(self) -> int:
        """Position of this split within its file."""
        return self.block.index

    @property
    def materialized(self) -> bool:
        return self.block.payload.materialized

    @property
    def mmap_ref(self):
        """The split's file-range reference
        (:class:`~repro.scan.mmapstore.MmapSplitRef`) when its partition
        lives in an on-disk mmap dataset, else None. This is the
        split ↔ file-range mapping process map workers receive instead
        of rows."""
        return self.block.payload.mmap_ref

    def matches_for(self, predicate_name: str) -> int:
        """Known matching-record count for a controlled predicate."""
        return self.block.payload.matches_for(predicate_name)

    def iter_rows(self) -> Iterator[Row]:
        """Iterate the split's rows (materialized splits only)."""
        payload = self.block.payload
        if not payload.materialized:
            raise DfsError(
                f"split {self.split_id} is profile-only; rows are not materialized"
            )
        return payload.iter_rows()

    def iter_batches(self, size: int = 4096) -> "Iterator[ColumnBatch]":
        """Column-major batches of up to ``size`` rows (materialized only).

        Batches are views over the split's :class:`ColumnStore` — built
        natively for columnar datasets, transposed once and cached for
        row-major ones — so the scan engine's batch loop touches tuples
        of arrays instead of per-row dicts.
        """
        payload = self.block.payload
        if not payload.materialized:
            raise DfsError(
                f"split {self.split_id} is profile-only; rows are not materialized"
            )
        return payload.column_store().iter_batches(size)

    def is_local_to(self, node_id: str) -> bool:
        return self.block.is_local_to(node_id)

    def __str__(self) -> str:
        return f"{self.split_id}@{self.location}"
