"""Predicate objects.

Two concerns meet here:

1. *Evaluation* — the sampling map task needs a fast ``matches(row)``
   callable; the Hive layer compiles WHERE clauses down to these objects.
2. *Controlled generation* — the paper's experiments fix overall predicate
   selectivity at exactly 0.05% and control the per-partition placement of
   matching records. :class:`MarkerEquals` supports that: it matches a
   marker value placed just outside a column's normal TPC-H domain, so the
   generator can mint matching and non-matching rows at will.

The paper's Table III (one predicate per skew level) does not print the
concrete predicates; :func:`predicate_for_skew` defines our substitution
(documented in DESIGN.md section 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.data.record import Row
from repro.errors import DataGenerationError

PAPER_SELECTIVITY = 0.0005
"""Overall fraction of matching records in every experiment (0.05%)."""

def _null_safe(op: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    """SQL comparison semantics: any comparison against NULL is not true.

    Without the guard, ``None != x`` would be *true* under Python and the
    ordering operators would raise ``TypeError``; with it, every operator
    uniformly evaluates false when either operand is NULL (three-valued
    logic collapsed to false at the comparison, the usual WHERE-clause
    treatment).
    """

    def compare(a: object, b: object) -> bool:
        if a is None or b is None:
            return False
        return op(a, b)

    return compare


_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": _null_safe(lambda a, b: a == b),
    "!=": _null_safe(lambda a, b: a != b),
    "<": _null_safe(lambda a, b: a < b),
    "<=": _null_safe(lambda a, b: a <= b),
    ">": _null_safe(lambda a, b: a > b),
    ">=": _null_safe(lambda a, b: a >= b),
}


class Predicate:
    """Base class: a boolean condition over a row."""

    name: str = "predicate"

    def matches(self, row: Mapping) -> bool:
        raise NotImplementedError

    def __call__(self, row: Mapping) -> bool:
        return self.matches(row)

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (used for plain scans)."""

    name: str = "true"

    def matches(self, row: Mapping) -> bool:
        return True

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class ColumnCompare(Predicate):
    """``column <op> literal`` for op in ``= != < <= > >=``."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise DataGenerationError(f"unsupported comparison operator {self.op!r}")

    @property
    def name(self) -> str:
        return f"{self.column}{self.op}{self.value}"

    def matches(self, row: Mapping) -> bool:
        return _OPERATORS[self.op](row[self.column], self.value)

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class And(Predicate):
    children: tuple[Predicate, ...]

    @property
    def name(self) -> str:
        return " AND ".join(c.name for c in self.children)

    def matches(self, row: Mapping) -> bool:
        return all(child.matches(row) for child in self.children)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    children: tuple[Predicate, ...]

    @property
    def name(self) -> str:
        return " OR ".join(c.name for c in self.children)

    def matches(self, row: Mapping) -> bool:
        return any(child.matches(row) for child in self.children)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    child: Predicate

    @property
    def name(self) -> str:
        return f"NOT {self.child.name}"

    def matches(self, row: Mapping) -> bool:
        return not self.child.matches(row)

    def __str__(self) -> str:
        return f"(NOT {self.child})"


@dataclass(frozen=True)
class FunctionPredicate(Predicate):
    """Wraps an arbitrary callable; used by the Hive expression compiler."""

    fn: Callable[[Mapping], bool]
    label: str

    @property
    def name(self) -> str:
        return self.label

    def matches(self, row: Mapping) -> bool:
        return bool(self.fn(row))

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class MarkerEquals(Predicate):
    """``column = marker`` where ``marker`` lies outside the column's
    normal generated domain.

    Because no organically generated row carries the marker, the data
    builder controls selectivity and placement exactly: it stamps the
    marker onto designated rows (:meth:`make_matching`) and leaves all
    other rows untouched (they cannot match by construction).
    """

    column: str
    marker: object

    @property
    def name(self) -> str:
        return f"{self.column}={self.marker}"

    def matches(self, row: Mapping) -> bool:
        return _OPERATORS["="](row[self.column], self.marker)

    def make_matching(self, row: Row) -> Row:
        """Stamp the marker onto ``row`` (in place) and return it."""
        row[self.column] = self.marker
        return row

    def ensure_non_matching(self, row: Row, rng: random.Random) -> Row:
        """Guarantee ``row`` does not match (no-op for marker values by design)."""
        if row[self.column] == self.marker:
            raise DataGenerationError(
                f"generator produced marker value {self.marker!r} organically "
                f"for column {self.column}; marker domain is not disjoint"
            )
        return row

    def __str__(self) -> str:
        return f"{self.column} = {self.marker!r}"


# ---------------------------------------------------------------------------
# The paper's Table III predicates (our substitution; see DESIGN.md §3).
# Marker values sit one notch outside each column's TPC-H domain:
#   l_discount in {0.00..0.10}  -> marker 0.11
#   l_tax      in {0.00..0.08}  -> marker 0.09
#   l_quantity in {1..50}       -> marker 51
# ---------------------------------------------------------------------------
_SKEW_PREDICATES: dict[int, MarkerEquals] = {
    0: MarkerEquals("l_discount", 0.11),
    1: MarkerEquals("l_tax", 0.09),
    2: MarkerEquals("l_quantity", 51),
}


def predicate_for_skew(z: int | float) -> MarkerEquals:
    """The Table III predicate associated with Zipf exponent ``z`` (0, 1 or 2)."""
    key = int(z)
    if key != z or key not in _SKEW_PREDICATES:
        raise DataGenerationError(
            f"no Table III predicate for skew z={z}; choose z in {sorted(_SKEW_PREDICATES)}"
        )
    return _SKEW_PREDICATES[key]
