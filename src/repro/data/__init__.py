"""Data substrate: schemas, TPC-H LINEITEM generation, skew modeling, predicates.

The paper evaluates on TPC-H LINEITEM data at scales 5-100 with the
matching records for each test predicate placed across input partitions
according to a Zipfian distribution (paper section V-B). This package
provides:

* :mod:`repro.data.schema` / :mod:`repro.data.record` — column metadata and
  row validation (rows themselves are plain dicts for speed).
* :mod:`repro.data.tpch` — a dbgen-style LINEITEM row generator.
* :mod:`repro.data.zipf` — the Zipfian distribution of paper equation (1).
* :mod:`repro.data.skew` — placement of matching records across partitions.
* :mod:`repro.data.predicates` — predicate objects, including the
  marker-value predicates used to control selectivity exactly.
* :mod:`repro.data.datasets` — dataset specs (Table II) and builders for
  materialized (small, real rows) and profiled (paper-scale, metadata-only)
  partitioned datasets.
"""

from repro.data.datasets import (
    DatasetSpec,
    PartitionData,
    PartitionedDataset,
    build_materialized_dataset,
    build_profiled_dataset,
    dataset_spec_for_scale,
    TABLE2_SCALES,
)
from repro.data.predicates import (
    And,
    ColumnCompare,
    MarkerEquals,
    Not,
    Or,
    Predicate,
    TruePredicate,
    predicate_for_skew,
    PAPER_SELECTIVITY,
)
from repro.data.record import Row
from repro.data.schema import Field, Schema
from repro.data.skew import MatchPlacement, place_matches
from repro.data.tpch import LINEITEM_SCHEMA, LineItemGenerator, ROWS_PER_SCALE_FACTOR
from repro.data.zipf import ZipfDistribution

__all__ = [
    "And",
    "ColumnCompare",
    "DatasetSpec",
    "Field",
    "LINEITEM_SCHEMA",
    "LineItemGenerator",
    "MarkerEquals",
    "MatchPlacement",
    "Not",
    "Or",
    "PAPER_SELECTIVITY",
    "PartitionData",
    "PartitionedDataset",
    "Predicate",
    "ROWS_PER_SCALE_FACTOR",
    "Row",
    "Schema",
    "TABLE2_SCALES",
    "TruePredicate",
    "ZipfDistribution",
    "build_materialized_dataset",
    "build_profiled_dataset",
    "dataset_spec_for_scale",
    "place_matches",
    "predicate_for_skew",
]
