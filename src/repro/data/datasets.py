"""Dataset specifications and builders (paper Table II).

The paper generates LINEITEM at scales 5, 10, 20, 40 and 100 and stores
each dataset evenly across the cluster's 40 disks with no replication; the
5x dataset occupies 40 partitions (paper §V-B and Figure 4), which fixes
the partitioning rule at ``8 x scale`` partitions (one ~94 MB partition
per disk per 5 scale units).

Two builders are provided:

* :func:`build_profiled_dataset` — metadata-only partitions at any scale
  (used for paper-scale performance experiments). Each partition knows its
  record count, byte size, and exact matching-record count per predicate.
* :func:`build_materialized_dataset` — real rows (small scales only), with
  matching rows stamped by marker predicates at the positions dictated by
  the same placement logic. Used by the local runtime, tests, and examples.

A materialized dataset is also a valid profiled dataset: its partitions
carry the same metadata, so both execution substrates accept either.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.predicates import MarkerEquals, PAPER_SELECTIVITY
from repro.data.record import Row
from repro.data.skew import MatchPlacement, place_matches
from repro.data.tpch import LINEITEM_SCHEMA, LineItemGenerator
from repro.errors import DataGenerationError

TABLE2_SCALES = (5, 10, 20, 40, 100)
"""The dataset scales evaluated in the paper."""

PARTITIONS_PER_SCALE_UNIT = 8
"""Input partitions per unit of scale (5x -> 40 partitions, 100x -> 800)."""


@dataclass(frozen=True)
class DatasetSpec:
    """Static properties of a generated dataset (one Table II row)."""

    name: str
    scale: float
    num_rows: int
    num_partitions: int
    avg_row_bytes: int

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise DataGenerationError(f"num_rows must be >= 0, got {self.num_rows}")
        if self.num_partitions < 1:
            raise DataGenerationError(
                f"num_partitions must be >= 1, got {self.num_partitions}"
            )

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.avg_row_bytes

    @property
    def rows_per_partition(self) -> int:
        """Average rows per partition (individual partitions may differ by 1)."""
        return self.num_rows // self.num_partitions

    @property
    def bytes_per_partition(self) -> int:
        return self.total_bytes // self.num_partitions

    def partition_row_counts(self) -> list[int]:
        """Exact per-partition row counts (remainder spread over the head)."""
        base = self.num_rows // self.num_partitions
        remainder = self.num_rows % self.num_partitions
        return [base + (1 if i < remainder else 0) for i in range(self.num_partitions)]


def dataset_spec_for_scale(
    scale: float,
    *,
    name: str | None = None,
    num_partitions: int | None = None,
) -> DatasetSpec:
    """Spec for LINEITEM at ``scale`` using the paper's partitioning rule."""
    if scale <= 0:
        raise DataGenerationError(f"scale must be positive, got {scale}")
    rows = LineItemGenerator.rows_for_scale(scale)
    partitions = num_partitions
    if partitions is None:
        partitions = max(1, round(PARTITIONS_PER_SCALE_UNIT * scale))
    return DatasetSpec(
        name=name or f"lineitem_{scale:g}x",
        scale=scale,
        num_rows=rows,
        num_partitions=partitions,
        avg_row_bytes=LINEITEM_SCHEMA.avg_row_bytes,
    )


@dataclass
class PartitionData:
    """One input partition: metadata always, data only when materialized.

    Materialized partitions store their data in one of three layouts:
    row-major (``rows``, the original list of dicts), column-major
    (``columns``, a :class:`~repro.scan.columnar.ColumnStore`), or
    on-disk binary columnar (``mmap_ref``, a file-range reference into
    an :mod:`repro.scan.mmapstore` dataset file opened read-only via
    ``mmap``). Any layout serves both access patterns — :meth:`iter_rows`
    synthesizes dicts from a column store, and :meth:`column_store`
    transposes rows (or maps the file region, zero-copy) on first use —
    so the scan engine's batch path works on any materialized partition
    regardless of how it was built.
    """

    index: int
    num_records: int
    num_bytes: int
    match_counts: dict[str, int] = field(default_factory=dict)
    rows: list[Row] | None = None
    columns: "ColumnStore | None" = None
    mmap_ref: "MmapSplitRef | None" = None

    @property
    def materialized(self) -> bool:
        return (
            self.rows is not None
            or self.columns is not None
            or self.mmap_ref is not None
        )

    def matches_for(self, predicate_name: str) -> int:
        """Matching-record count for a predicate (0 if never placed)."""
        return self.match_counts.get(predicate_name, 0)

    def iter_rows(self):
        """The partition's rows as dicts, whichever layout holds them."""
        if self.rows is not None:
            return iter(self.rows)
        if self.columns is not None or self.mmap_ref is not None:
            return self.column_store().iter_rows()
        raise DataGenerationError(
            f"partition {self.index} is profile-only; rows are not materialized"
        )

    def column_store(self) -> "ColumnStore":
        """The column-major view, transposed from rows (once) if needed.

        mmap-backed partitions return the store of lazy zero-copy views
        over the mapped file — no column data is duplicated; values
        decode straight out of the page cache on access.
        """
        if self.columns is None:
            if self.mmap_ref is not None:
                from repro.scan.mmapstore import open_mmap_dataset

                self.columns = open_mmap_dataset(
                    self.mmap_ref.path
                ).partition_store(self.mmap_ref.partition)
                return self.columns
            from repro.scan.columnar import ColumnStore

            if self.rows is None:
                raise DataGenerationError(
                    f"partition {self.index} is profile-only; "
                    "no columnar view exists"
                )
            self.columns = ColumnStore.from_rows(self.rows)
        return self.columns

    def to_columnar(self) -> "PartitionData":
        """Switch this partition to column-major storage (drops the row dicts)."""
        self.column_store()
        self.rows = None
        return self


@dataclass
class PartitionedDataset:
    """A partitioned dataset plus the predicates whose placement it controls."""

    spec: DatasetSpec
    partitions: list[PartitionData]
    placements: dict[str, MatchPlacement]
    predicates: dict[str, MarkerEquals]
    seed: int

    @property
    def materialized(self) -> bool:
        return all(p.materialized for p in self.partitions)

    @property
    def total_records(self) -> int:
        return sum(p.num_records for p in self.partitions)

    @property
    def total_bytes(self) -> int:
        return sum(p.num_bytes for p in self.partitions)

    def total_matches(self, predicate_name: str) -> int:
        return sum(p.matches_for(predicate_name) for p in self.partitions)

    def placement_for(self, predicate_name: str) -> MatchPlacement:
        try:
            return self.placements[predicate_name]
        except KeyError:
            raise DataGenerationError(
                f"dataset {self.spec.name} has no controlled placement for "
                f"predicate {predicate_name!r}; known: {sorted(self.placements)}"
            ) from None

    def iter_rows(self):
        """All rows across partitions (materialized datasets only)."""
        for partition in self.partitions:
            if not partition.materialized:
                raise DataGenerationError(
                    f"partition {partition.index} of {self.spec.name} is not materialized"
                )
            yield from partition.iter_rows()


def _match_total(spec: DatasetSpec, selectivity: float) -> int:
    if not 0 <= selectivity <= 1:
        raise DataGenerationError(f"selectivity must be in [0, 1], got {selectivity}")
    return round(spec.num_rows * selectivity)


def build_profiled_dataset(
    spec: DatasetSpec,
    skew_by_predicate: dict[MarkerEquals, float],
    seed: int = 0,
    *,
    selectivity: float = PAPER_SELECTIVITY,
    placement_method: str = "multinomial",
) -> PartitionedDataset:
    """Metadata-only dataset with controlled match placement per predicate.

    ``skew_by_predicate`` maps each marker predicate to its Zipf exponent.
    Works at any scale because no rows are materialized.
    """
    rng = random.Random(seed)
    row_counts = spec.partition_row_counts()
    total_matches = _match_total(spec, selectivity)

    placements: dict[str, MatchPlacement] = {}
    predicates: dict[str, MarkerEquals] = {}
    for predicate, z in skew_by_predicate.items():
        placement = place_matches(
            spec.num_partitions, total_matches, z, rng, method=placement_method
        )
        _check_placement_fits(placement, row_counts, predicate)
        placements[predicate.name] = placement
        predicates[predicate.name] = predicate

    partitions = [
        PartitionData(
            index=i,
            num_records=row_counts[i],
            num_bytes=row_counts[i] * spec.avg_row_bytes,
            match_counts={
                name: int(placement.counts[i]) for name, placement in placements.items()
            },
        )
        for i in range(spec.num_partitions)
    ]
    return PartitionedDataset(
        spec=spec,
        partitions=partitions,
        placements=placements,
        predicates=predicates,
        seed=seed,
    )


DATASET_LAYOUTS = ("row", "columnar", "mmap")
"""The materialized-dataset layouts the builders understand."""


def build_materialized_dataset(
    spec: DatasetSpec,
    skew_by_predicate: dict[MarkerEquals, float],
    seed: int = 0,
    *,
    selectivity: float = PAPER_SELECTIVITY,
    placement_method: str = "multinomial",
    max_rows: int = 5_000_000,
    layout: str = "row",
    mmap_path: "str | None" = None,
    stats: bool = False,
    bloom_bits: "int | None" = None,
) -> PartitionedDataset:
    """Real-row dataset with matching rows stamped per the controlled placement.

    The in-memory layouts refuse to materialize more than ``max_rows``
    rows — paper-scale experiments must use :func:`build_profiled_dataset`
    instead.

    ``layout="columnar"`` stores each partition column-major (the scan
    engine's native layout) instead of as row dicts. ``layout="mmap"``
    streams each partition into the binary columnar file at ``mmap_path``
    (required) as it is generated and drops the rows immediately, so peak
    memory stays bounded by one partition no matter the scale — the
    ``max_rows`` guard does not apply. All layouts yield identical rows
    in identical order.

    ``stats=True`` (mmap layout only) makes the writer accumulate the
    per-partition zone maps and bloom filters for the footer STATS
    section as each partition streams through; ``bloom_bits`` overrides
    the default filter width. Stats never change the row data — only
    the file footer grows.
    """
    if layout not in DATASET_LAYOUTS:
        raise DataGenerationError(
            f"unknown dataset layout {layout!r}; one of {DATASET_LAYOUTS}"
        )
    if layout == "mmap" and mmap_path is None:
        raise DataGenerationError(
            "layout='mmap' needs mmap_path= naming the dataset file to write"
        )
    if stats and layout != "mmap":
        raise DataGenerationError(
            "split statistics are stored in the mmap file footer; "
            "stats=True needs layout='mmap'"
        )
    if layout != "mmap" and spec.num_rows > max_rows:
        raise DataGenerationError(
            f"refusing to materialize {spec.num_rows} rows (> {max_rows}); "
            "use build_profiled_dataset for paper-scale data, or "
            "layout='mmap' to stream rows to disk"
        )
    dataset = build_profiled_dataset(
        spec,
        skew_by_predicate,
        seed,
        selectivity=selectivity,
        placement_method=placement_method,
    )
    generator = LineItemGenerator(scale_factor=max(spec.scale, 0.01))
    gen_rng = random.Random(seed + 0x5EED)
    marker_predicates = list(dataset.predicates.values())

    writer = None
    if layout == "mmap":
        from repro.scan.mmapstore import (
            DEFAULT_BLOOM_BITS,
            MmapDatasetWriter,
            column_types_for_schema,
            dataset_meta,
        )

        writer = MmapDatasetWriter(
            mmap_path,
            LINEITEM_SCHEMA.field_names,
            column_types_for_schema(LINEITEM_SCHEMA),
            meta=dataset_meta(dataset),
            stats=stats,
            bloom_bits=DEFAULT_BLOOM_BITS if bloom_bits is None else bloom_bits,
        )

    for partition in dataset.partitions:
        rows = [generator.generate_row(gen_rng) for _ in range(partition.num_records)]
        for predicate in marker_predicates:
            for row in rows:
                predicate.ensure_non_matching(row, gen_rng)
            count = partition.matches_for(predicate.name)
            if count > len(rows):
                raise DataGenerationError(
                    f"partition {partition.index}: {count} matches for "
                    f"{predicate.name} exceed its {len(rows)} rows"
                )
            chosen = gen_rng.sample(range(len(rows)), count)
            for row_index in chosen:
                predicate.make_matching(rows[row_index])
        partition.num_bytes = partition.num_records * spec.avg_row_bytes
        if writer is not None:
            columns = {
                name: [row[name] for row in rows] for name in writer.names
            }
            partition.mmap_ref = writer.write_partition(
                columns, partition.num_records
            )
        else:
            partition.rows = rows
            if layout == "columnar":
                partition.to_columnar()
    if writer is not None:
        writer.close()
    return dataset


def _check_placement_fits(
    placement: MatchPlacement, row_counts: list[int], predicate: MarkerEquals
) -> None:
    for i, count in enumerate(placement.counts):
        if count > row_counts[i]:
            raise DataGenerationError(
                f"placement for {predicate.name} puts {int(count)} matches in "
                f"partition {i}, which has only {row_counts[i]} rows; "
                "increase dataset scale or reduce selectivity/skew"
            )
