"""Column schemas.

Rows are plain dicts (see :mod:`repro.data.record`); a :class:`Schema`
carries the column metadata needed by the query layer (name resolution,
type checking) and by the data generators (row sizing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class Field:
    """A single column: name, Python type, and an average encoded width.

    ``avg_bytes`` approximates the column's width in the text-serialized
    form Hive tables use; it feeds the dataset size estimates of Table II.
    """

    name: str
    py_type: type
    avg_bytes: int

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise DataGenerationError(f"invalid field name {self.name!r}")
        if self.avg_bytes <= 0:
            raise DataGenerationError(
                f"field {self.name}: avg_bytes must be positive, got {self.avg_bytes}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Field` objects."""

    name: str
    fields: tuple[Field, ...]
    _by_name: dict[str, Field] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise DataGenerationError(f"schema {self.name}: duplicate field names")
        object.__setattr__(self, "_by_name", {f.name: f for f in self.fields})

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def avg_row_bytes(self) -> int:
        """Average serialized row width, including one delimiter per column."""
        return sum(f.avg_bytes for f in self.fields) + len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def field_named(self, name: str) -> Field:
        """Look up a field by (case-insensitive) name."""
        found = self._by_name.get(name)
        if found is None:
            found = self._by_name.get(name.lower())
        if found is None:
            raise DataGenerationError(f"schema {self.name}: no field named {name!r}")
        return found

    def validate_row(self, row: dict) -> None:
        """Raise if ``row`` is missing columns or holds mistyped values.

        bool is rejected where int is expected (a common silent bug).
        """
        for f in self.fields:
            if f.name not in row:
                raise DataGenerationError(f"row missing column {f.name!r}")
            value = row[f.name]
            if f.py_type is float and isinstance(value, int) and not isinstance(value, bool):
                continue  # ints are acceptable where floats are expected
            if not isinstance(value, f.py_type) or (
                f.py_type is int and isinstance(value, bool)
            ):
                raise DataGenerationError(
                    f"column {f.name!r}: expected {f.py_type.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )

    def __len__(self) -> int:
        return len(self.fields)
