"""The Zipfian distribution of paper equation (1).

    f(k; z, N) = (1 / k^z) / sum_{n=1..N} (1 / n^z)

``z = 0`` degenerates to the uniform distribution; larger ``z``
concentrates probability mass on low ranks. The paper draws the containing
partition of every matching record from this distribution to model skewed
placement (section V-B, "Modeling data skew").
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import DataGenerationError


class ZipfDistribution:
    """Zipf over ranks ``1..n`` with exponent ``z``."""

    def __init__(self, n: int, z: float) -> None:
        if n < 1:
            raise DataGenerationError(f"Zipf population must have n >= 1, got {n}")
        if z < 0:
            raise DataGenerationError(f"Zipf exponent must be >= 0, got {z}")
        self.n = n
        self.z = float(z)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.z)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating point leaving the last cdf entry below 1.
        self._cdf[-1] = 1.0

    def pmf(self, rank: int) -> float:
        """Probability of rank ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise DataGenerationError(f"rank {rank} outside 1..{self.n}")
        return float(self._pmf[rank - 1])

    def pmf_vector(self) -> np.ndarray:
        """The full probability vector, index 0 = rank 1."""
        return self._pmf.copy()

    def sample_rank(self, rng: random.Random) -> int:
        """Draw one rank (1-based) via inverse-CDF sampling."""
        u = rng.random()
        return int(np.searchsorted(self._cdf, u, side="right")) + 1

    def sample_counts(self, total: int, rng: random.Random) -> np.ndarray:
        """Multinomial draw: how many of ``total`` items land on each rank.

        This mirrors the paper's procedure of drawing each matching
        record's partition independently from the Zipfian.
        """
        if total < 0:
            raise DataGenerationError(f"total must be non-negative, got {total}")
        np_rng = np.random.default_rng(rng.getrandbits(64))
        return np_rng.multinomial(total, self._pmf)

    def expected_counts(self, total: int) -> np.ndarray:
        """Deterministic expected counts, largest-remainder rounded to sum to total."""
        if total < 0:
            raise DataGenerationError(f"total must be non-negative, got {total}")
        exact = self._pmf * total
        floors = np.floor(exact).astype(np.int64)
        remainder = int(total - floors.sum())
        if remainder > 0:
            fractional = exact - floors
            # Stable sort on the negated fractions: ties go to the lower
            # rank, keeping counts non-increasing in rank even at z = 0.
            top = np.argsort(-fractional, kind="stable")[:remainder]
            floors[top] += 1
        return floors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfDistribution(n={self.n}, z={self.z})"
