"""TPC-H LINEITEM row generation (dbgen-style).

The paper derives all test data from the TPC-H LINEITEM table generated at
scale factors 5, 10, 20, 40 and 100 (paper section V-B). This module is a
from-scratch Python analogue of the relevant slice of dbgen: it produces
rows with the LINEITEM columns, realistic value domains, and roughly the
canonical ~125-byte average serialized width, without requiring the
proprietary dbgen binary.

Fidelity notes (vs. TPC-H spec 2.x):

* Column domains (quantity 1-50, discount 0.00-0.10, tax 0.00-0.08, the
  flag/status/instruction/mode vocabularies, 1992-1998 dates) follow the
  spec.
* Rows are generated independently rather than via the ORDERS cascade;
  the paper's experiments only scan LINEITEM, so order-lineitem
  referential structure is irrelevant to the reproduction.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.data.record import Row
from repro.data.schema import Field, Schema
from repro.errors import DataGenerationError

ROWS_PER_SCALE_FACTOR = 6_000_000
"""LINEITEM cardinality per TPC-H scale factor (spec: SF x 6,000,000)."""

LINEITEM_SCHEMA = Schema(
    name="lineitem",
    fields=(
        Field("l_orderkey", int, 7),
        Field("l_partkey", int, 6),
        Field("l_suppkey", int, 5),
        Field("l_linenumber", int, 1),
        Field("l_quantity", int, 2),
        Field("l_extendedprice", float, 8),
        Field("l_discount", float, 4),
        Field("l_tax", float, 4),
        Field("l_returnflag", str, 1),
        Field("l_shipdate", str, 10),
        Field("l_commitdate", str, 10),
        Field("l_receiptdate", str, 10),
        Field("l_shipinstruct", str, 12),
        Field("l_shipmode", str, 4),
        Field("l_comment", str, 27),
        Field("l_linestatus", str, 1),
    ),
)

_RETURN_FLAGS = ("R", "A", "N")
_LINE_STATUSES = ("O", "F")
_SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
_SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_COMMENT_WORDS = (
    "blithely", "carefully", "quickly", "slyly", "furiously", "ironic",
    "final", "pending", "regular", "express", "bold", "even", "special",
    "requests", "deposits", "packages", "instructions", "accounts", "ideas",
    "foxes", "pinto", "beans", "theodolites", "platelets", "asymptotes",
)

_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _random_date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, _DAYS_PER_MONTH[month - 1])
    return f"{year:04d}-{month:02d}-{day:02d}"


def _random_comment(rng: random.Random) -> str:
    count = rng.randint(3, 5)
    return " ".join(rng.choice(_COMMENT_WORDS) for _ in range(count))


class LineItemGenerator:
    """Generates LINEITEM rows with TPC-H value domains.

    Parameters
    ----------
    scale_factor:
        TPC-H scale factor; bounds the orderkey/partkey/suppkey domains the
        way dbgen does (orders = SF x 1.5M, parts = SF x 200K, suppliers =
        SF x 10K).
    """

    def __init__(self, scale_factor: float = 1.0) -> None:
        if scale_factor <= 0:
            raise DataGenerationError(f"scale factor must be positive, got {scale_factor}")
        self.scale_factor = scale_factor
        self._max_orderkey = max(1, int(scale_factor * 1_500_000))
        self._max_partkey = max(1, int(scale_factor * 200_000))
        self._max_suppkey = max(1, int(scale_factor * 10_000))

    def generate_row(self, rng: random.Random) -> Row:
        """One LINEITEM row drawn from the TPC-H domains."""
        quantity = rng.randint(1, 50)
        # dbgen: extendedprice = quantity * part retail price (900..2098.99)
        unit_price = rng.uniform(900.0, 2098.99)
        return {
            "l_orderkey": rng.randint(1, self._max_orderkey),
            "l_partkey": rng.randint(1, self._max_partkey),
            "l_suppkey": rng.randint(1, self._max_suppkey),
            "l_linenumber": rng.randint(1, 7),
            "l_quantity": quantity,
            "l_extendedprice": round(quantity * unit_price, 2),
            "l_discount": round(rng.randint(0, 10) / 100.0, 2),
            "l_tax": round(rng.randint(0, 8) / 100.0, 2),
            "l_returnflag": rng.choice(_RETURN_FLAGS),
            "l_shipdate": _random_date(rng),
            "l_commitdate": _random_date(rng),
            "l_receiptdate": _random_date(rng),
            "l_shipinstruct": rng.choice(_SHIP_INSTRUCTIONS),
            "l_shipmode": rng.choice(_SHIP_MODES),
            "l_comment": _random_comment(rng),
            "l_linestatus": rng.choice(_LINE_STATUSES),
        }

    def generate(self, count: int, rng: random.Random) -> Iterator[Row]:
        """Yield ``count`` independent rows."""
        if count < 0:
            raise DataGenerationError(f"row count must be non-negative, got {count}")
        for _ in range(count):
            yield self.generate_row(rng)

    @staticmethod
    def rows_for_scale(scale_factor: float) -> int:
        """LINEITEM cardinality at ``scale_factor`` (spec: SF x 6M)."""
        return int(scale_factor * ROWS_PER_SCALE_FACTOR)
