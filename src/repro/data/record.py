"""Row representation.

Rows are plain ``dict[str, value]`` objects: the local MapReduce runtime
iterates millions of them and a class wrapper would roughly double the
per-row cost for no semantic gain. ``Row`` is the type alias used in
signatures throughout the library; helpers here cover projection and
stable serialization (used to estimate row widths and to write samples
out of examples).
"""

from __future__ import annotations

from typing import Mapping

Row = dict
"""A table row: column name -> value."""


def project(row: Mapping, columns: tuple[str, ...]) -> Row:
    """Return a new row containing only ``columns`` (in the given order)."""
    return {name: row[name] for name in columns}


def row_at(names: tuple[str, ...], columns: Mapping[str, list], index: int) -> Row:
    """Synthesize the row dict at ``index`` of a column-major store.

    The inverse of transposing rows into per-column lists; ``names``
    fixes the key order so synthesized rows match the originals exactly.
    """
    return {name: columns[name][index] for name in names}


def serialize(row: Mapping, columns: tuple[str, ...] | None = None) -> str:
    """Pipe-delimited text form of a row, dbgen style."""
    names = columns if columns is not None else tuple(row.keys())
    return "|".join(_format_value(row[name]) for name in names)


def serialized_bytes(row: Mapping) -> int:
    """Byte length of the serialized row (plus trailing newline)."""
    return len(serialize(row)) + 1


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
