"""Placement of matching records across input partitions (paper §V-B).

Given a dataset with ``N`` partitions, a predicate with overall selectivity
``rho``, and a Zipf exponent ``z``, the paper assigns each matching record
to a partition drawn from Zipf(z, N). Ranks are then mapped onto physical
partitions in a random permutation so the "hot" partition is not always
partition 0 (the paper stores partitions evenly across 40 disks; which
disk holds the hot partition is arbitrary).

Figure 4 of the paper visualizes the result for the 5x dataset (40
partitions, 15 000 matching records): z=0 gives an even ~375 per
partition; z=1 puts ~3.1K in the hottest partition; z=2 puts ~8.7K there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.data.zipf import ZipfDistribution
from repro.errors import DataGenerationError


@dataclass(frozen=True)
class MatchPlacement:
    """How many matching records each physical partition holds.

    ``counts[i]`` is the number of matching records in partition ``i``.
    ``rank_of_partition[i]`` is the Zipf rank (1-based) that partition ``i``
    was assigned; rank 1 is the hottest.
    """

    counts: np.ndarray
    rank_of_partition: np.ndarray
    z: float
    total_matches: int

    @property
    def num_partitions(self) -> int:
        return len(self.counts)

    @property
    def max_count(self) -> int:
        return int(self.counts.max()) if len(self.counts) else 0

    @property
    def nonzero_partitions(self) -> int:
        return int(np.count_nonzero(self.counts))

    def sorted_counts(self) -> np.ndarray:
        """Counts ordered by rank — the series Figure 4 plots."""
        order = np.argsort(self.rank_of_partition)
        return self.counts[order]

    def gini(self) -> float:
        """Gini coefficient of the placement — a scalar skew summary."""
        if self.total_matches == 0:
            return 0.0
        sorted_counts = np.sort(self.counts).astype(np.float64)
        n = len(sorted_counts)
        cum = np.cumsum(sorted_counts)
        return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def place_matches(
    num_partitions: int,
    total_matches: int,
    z: float,
    rng: random.Random,
    *,
    method: str = "multinomial",
    shuffle_ranks: bool = True,
) -> MatchPlacement:
    """Distribute ``total_matches`` matching records over partitions.

    Parameters
    ----------
    method:
        ``"multinomial"`` draws each record's partition independently from
        the Zipfian (the paper's procedure); ``"expected"`` uses the
        deterministic expected counts (useful for exact-shape tests).
    shuffle_ranks:
        Randomly permute which physical partition receives which rank.
    """
    if num_partitions < 1:
        raise DataGenerationError(f"need at least one partition, got {num_partitions}")
    if total_matches < 0:
        raise DataGenerationError(f"total_matches must be >= 0, got {total_matches}")
    zipf = ZipfDistribution(num_partitions, z)
    if method == "multinomial":
        by_rank = zipf.sample_counts(total_matches, rng)
    elif method == "expected":
        by_rank = zipf.expected_counts(total_matches)
    else:
        raise DataGenerationError(f"unknown placement method {method!r}")

    partitions_for_rank = np.arange(num_partitions)
    if shuffle_ranks:
        rng.shuffle(partitions_for_rank)  # type: ignore[arg-type]
    counts = np.zeros(num_partitions, dtype=np.int64)
    rank_of_partition = np.zeros(num_partitions, dtype=np.int64)
    for rank_index, partition in enumerate(partitions_for_rank):
        counts[partition] = by_rank[rank_index]
        rank_of_partition[partition] = rank_index + 1
    placement = MatchPlacement(
        counts=counts,
        rank_of_partition=rank_of_partition,
        z=float(z),
        total_matches=int(total_matches),
    )
    assert placement.counts.sum() == total_matches
    return placement
