"""Compute nodes: cores, disks, and slot accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterConfigError


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware/configuration description of one node."""

    node_id: str
    cores: int = 4
    disks: int = 4
    map_slots: int = 4
    reduce_slots: int = 2

    def __post_init__(self) -> None:
        for attr in ("cores", "disks", "map_slots", "reduce_slots"):
            if getattr(self, attr) < 1 and attr != "reduce_slots":
                raise ClusterConfigError(f"node {self.node_id}: {attr} must be >= 1")
        if self.reduce_slots < 0:
            raise ClusterConfigError(f"node {self.node_id}: reduce_slots must be >= 0")


@dataclass
class RunningTask:
    """A task occupying a slot on a node, with its resource signature.

    ``read_rate_bps`` is the task's effective disk/network read rate and
    ``cpu_fraction`` the number of cores it can use (map tasks: 1.0);
    both feed the metrics monitor's utilization samples.
    """

    attempt_id: str
    kind: str  # "map" | "reduce"
    disk_id: int | None
    read_rate_bps: float
    cpu_fraction: float
    start_time: float


class Node:
    """Dynamic state of one node: occupied slots, per-disk readers."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self._running: dict[str, RunningTask] = {}
        self._disk_readers: list[int] = [0] * spec.disks
        self.local_map_tasks = 0
        self.remote_map_tasks = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self.spec.node_id

    @property
    def running_map_tasks(self) -> int:
        return sum(1 for t in self._running.values() if t.kind == "map")

    @property
    def running_reduce_tasks(self) -> int:
        return sum(1 for t in self._running.values() if t.kind == "reduce")

    @property
    def free_map_slots(self) -> int:
        return self.spec.map_slots - self.running_map_tasks

    @property
    def free_reduce_slots(self) -> int:
        return self.spec.reduce_slots - self.running_reduce_tasks

    def disk_readers(self, disk_id: int) -> int:
        """Tasks currently reading from ``disk_id`` (including remote readers)."""
        return self._disk_readers[disk_id]

    @property
    def cpu_demand(self) -> float:
        """Total core-fractions demanded by running tasks."""
        return sum(t.cpu_fraction for t in self._running.values())

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the node's cores in use, in [0, 1]."""
        if self.spec.cores == 0:
            return 0.0
        return min(1.0, self.cpu_demand / self.spec.cores)

    @property
    def disk_read_rate_bps(self) -> float:
        """Aggregate read rate of tasks running on this node."""
        return sum(t.read_rate_bps for t in self._running.values())

    # ------------------------------------------------------------------
    # Slot lifecycle (driven by the TaskTracker)
    # ------------------------------------------------------------------
    def start_task(self, task: RunningTask) -> None:
        if task.attempt_id in self._running:
            raise ClusterConfigError(
                f"attempt {task.attempt_id} already running on {self.node_id}"
            )
        if task.kind == "map" and self.free_map_slots <= 0:
            raise ClusterConfigError(f"{self.node_id}: no free map slot")
        if task.kind == "reduce" and self.free_reduce_slots <= 0:
            raise ClusterConfigError(f"{self.node_id}: no free reduce slot")
        self._running[task.attempt_id] = task

    def finish_task(self, attempt_id: str) -> RunningTask:
        try:
            return self._running.pop(attempt_id)
        except KeyError:
            raise ClusterConfigError(
                f"attempt {attempt_id} is not running on {self.node_id}"
            ) from None

    # ------------------------------------------------------------------
    # Disk reader accounting (a remote map task registers as a reader on
    # the node that stores its split, not the node it computes on)
    # ------------------------------------------------------------------
    def add_disk_reader(self, disk_id: int) -> None:
        self._check_disk(disk_id)
        self._disk_readers[disk_id] += 1

    def remove_disk_reader(self, disk_id: int) -> None:
        self._check_disk(disk_id)
        if self._disk_readers[disk_id] <= 0:
            raise ClusterConfigError(
                f"{self.node_id}: disk {disk_id} has no readers to remove"
            )
        self._disk_readers[disk_id] -= 1

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < self.spec.disks:
            raise ClusterConfigError(
                f"{self.node_id}: no disk {disk_id} (has {self.spec.disks})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.node_id}, maps={self.running_map_tasks}/{self.spec.map_slots}, "
            f"reduces={self.running_reduce_tasks}/{self.spec.reduce_slots})"
        )
