"""The task cost model.

Converts a task's input volume, locality, and the contention it meets
into a simulated duration. The constants below are calibrated to
2011-era commodity hardware and Hadoop 0.20 overheads (the paper's
testbed): ~90 MB/s sequential disk reads, gigabit Ethernet, multi-second
JVM/task launch costs, and a map function throughput of a few MB/s once
deserialization and predicate evaluation are included.

Experimental *shapes* (which policy wins, crossover points) are
insensitive to these constants within a factor of ~2; this is checked by
the TestCostSensitivity suite in
``tests/integration/test_simulated_cluster.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ClusterConfigError


@dataclass(frozen=True)
class CostModel:
    """Timing constants plus the duration formulas that use them."""

    disk_bandwidth_bps: float = 90e6
    """Sequential read bandwidth of one disk, shared among its readers."""

    network_bandwidth_bps: float = 100e6
    """Per-stream cap for a remote (non-local) split read."""

    cpu_seconds_per_record: float = 8e-6
    """Map-side per-record cost: deserialize + predicate evaluation.

    Calibration notes: a ~94 MB LINEITEM split holds ~750 K records, so a
    solo map task costs ~6 s of CPU on top of ~1 s of sequential disk
    read — matching Hadoop-0.20-era task times of roughly 8 s uncontended
    and ~25 s in the 16-slots-per-4-core multi-user configuration. Under
    load the cluster saturates on CPU-seconds, so wasted partitions
    translate directly into lost throughput (the Figure 6 effect).
    """

    map_task_overhead: float = 2.0
    """Slot acquisition + JVM/task launch + commit, per map task."""

    reduce_cpu_seconds_per_record: float = 5e-6
    """Reduce-side per-record cost over the shuffled values."""

    reduce_task_overhead: float = 3.0
    """Reduce launch + sort/merge + output commit."""

    shuffle_bandwidth_bps: float = 60e6
    """Effective rate at which map output moves to the reducer."""

    job_setup_seconds: float = 4.0
    """Job submission, split computation, JobTracker initialization."""

    job_cleanup_seconds: float = 2.0
    """Job finalization after the last reduce."""

    output_record_bytes: int = 24
    """Serialized size of one sampled output record (3 int columns + key)."""

    def __post_init__(self) -> None:
        for attr in (
            "disk_bandwidth_bps",
            "network_bandwidth_bps",
            "cpu_seconds_per_record",
            "reduce_cpu_seconds_per_record",
            "shuffle_bandwidth_bps",
        ):
            if getattr(self, attr) <= 0:
                raise ClusterConfigError(f"cost model: {attr} must be positive")
        for attr in (
            "map_task_overhead",
            "reduce_task_overhead",
            "job_setup_seconds",
            "job_cleanup_seconds",
        ):
            if getattr(self, attr) < 0:
                raise ClusterConfigError(f"cost model: {attr} must be >= 0")

    # ------------------------------------------------------------------
    # Map tasks
    # ------------------------------------------------------------------
    def map_read_rate_bps(self, *, local: bool, disk_readers: int) -> float:
        """Effective read rate for one map task.

        The storage disk's bandwidth is split evenly among its concurrent
        readers; a remote read is additionally capped by the per-stream
        network bandwidth.
        """
        readers = max(1, disk_readers)
        rate = self.disk_bandwidth_bps / readers
        if not local:
            rate = min(rate, self.network_bandwidth_bps)
        return rate

    def map_task_duration(
        self,
        *,
        split_bytes: int,
        split_records: int,
        local: bool,
        disk_readers: int,
        cpu_contention: float = 1.0,
    ) -> float:
        """Simulated wall-clock seconds for one map task.

        Reading and computing are pipelined, so the data-path time is the
        max of I/O time and CPU time; ``cpu_contention`` (>= 1) stretches
        the CPU term when more slots than cores are configured.
        """
        if cpu_contention < 1.0:
            raise ClusterConfigError(
                f"cpu_contention must be >= 1.0, got {cpu_contention}"
            )
        io_seconds = split_bytes / self.map_read_rate_bps(
            local=local, disk_readers=disk_readers
        )
        cpu_seconds = split_records * self.cpu_seconds_per_record * cpu_contention
        return self.map_task_overhead + max(io_seconds, cpu_seconds)

    # ------------------------------------------------------------------
    # Reduce tasks
    # ------------------------------------------------------------------
    def reduce_task_duration(self, *, shuffle_records: int) -> float:
        """Simulated seconds for the lone reduce task of a sampling job."""
        shuffle_bytes = shuffle_records * self.output_record_bytes
        shuffle_seconds = shuffle_bytes / self.shuffle_bandwidth_bps
        cpu_seconds = shuffle_records * self.reduce_cpu_seconds_per_record
        return self.reduce_task_overhead + shuffle_seconds + cpu_seconds

    # ------------------------------------------------------------------
    # Scaling helper
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "CostModel":
        """A cost model with all data-path rates divided by ``factor``.

        ``factor > 1`` models uniformly slower hardware. Used by the
        cost-sensitivity tests.
        """
        if factor <= 0:
            raise ClusterConfigError(f"scale factor must be positive, got {factor}")
        return CostModel(
            disk_bandwidth_bps=self.disk_bandwidth_bps / factor,
            network_bandwidth_bps=self.network_bandwidth_bps / factor,
            cpu_seconds_per_record=self.cpu_seconds_per_record * factor,
            map_task_overhead=self.map_task_overhead,
            reduce_cpu_seconds_per_record=self.reduce_cpu_seconds_per_record * factor,
            reduce_task_overhead=self.reduce_task_overhead,
            shuffle_bandwidth_bps=self.shuffle_bandwidth_bps / factor,
            job_setup_seconds=self.job_setup_seconds,
            job_cleanup_seconds=self.job_cleanup_seconds,
            output_record_bytes=self.output_record_bytes,
        )


class StragglerModel:
    """Task-duration variance: jitter plus occasional stragglers.

    The deterministic cost model makes every wave finish in lockstep;
    real Hadoop waves are ragged — most tasks vary a little, and a small
    fraction straggle badly (slow disk, contended node, lost heartbeats).
    The model multiplies a task's data-path time by

    * a lognormal jitter with ``log``-space standard deviation ``sigma``
      (median 1.0), and
    * with probability ``straggler_probability``, an additional
      ``straggler_factor``.

    Draws come from a dedicated seeded stream, so runs remain
    reproducible and the noise does not perturb any other randomness.
    """

    def __init__(
        self,
        *,
        sigma: float = 0.1,
        straggler_probability: float = 0.01,
        straggler_factor: float = 3.0,
        seed: int = 0,
    ) -> None:
        if sigma < 0:
            raise ClusterConfigError(f"sigma must be >= 0, got {sigma}")
        if not 0.0 <= straggler_probability <= 1.0:
            raise ClusterConfigError(
                f"straggler_probability must be in [0, 1], got {straggler_probability}"
            )
        if straggler_factor < 1.0:
            raise ClusterConfigError(
                f"straggler_factor must be >= 1, got {straggler_factor}"
            )
        self.sigma = sigma
        self.straggler_probability = straggler_probability
        self.straggler_factor = straggler_factor
        self._rng = random.Random(seed)
        self.stragglers_drawn = 0

    def multiplier(self) -> float:
        """One duration multiplier (> 0, median ~1.0 for small sigma)."""
        value = math.exp(self._rng.gauss(0.0, self.sigma)) if self.sigma else 1.0
        if (
            self.straggler_probability > 0.0
            and self._rng.random() < self.straggler_probability
        ):
            self.stragglers_drawn += 1
            value *= self.straggler_factor
        return value
