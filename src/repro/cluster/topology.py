"""Cluster topology: the collection of nodes and derived facts."""

from __future__ import annotations

from repro.cluster.node import Node, NodeSpec
from repro.dfs.block import StorageLocation
from repro.errors import ClusterConfigError


class ClusterTopology:
    """A fixed set of nodes plus aggregate slot/storage views."""

    def __init__(self, specs: list[NodeSpec]) -> None:
        if not specs:
            raise ClusterConfigError("a cluster needs at least one node")
        ids = [s.node_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ClusterConfigError("duplicate node ids in topology")
        self._nodes = {spec.node_id: Node(spec) for spec in specs}
        self._order = ids

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return [self._nodes[node_id] for node_id in self._order]

    @property
    def num_nodes(self) -> int:
        return len(self._order)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterConfigError(f"no such node: {node_id}") from None

    @property
    def total_map_slots(self) -> int:
        return sum(n.spec.map_slots for n in self._nodes.values())

    @property
    def total_reduce_slots(self) -> int:
        return sum(n.spec.reduce_slots for n in self._nodes.values())

    @property
    def available_map_slots(self) -> int:
        return sum(n.free_map_slots for n in self._nodes.values())

    @property
    def running_map_tasks(self) -> int:
        return sum(n.running_map_tasks for n in self._nodes.values())

    @property
    def slot_occupancy(self) -> float:
        """Fraction of the cluster's map slots in use, in [0, 1]."""
        total = self.total_map_slots
        if total == 0:
            return 0.0
        return self.running_map_tasks / total

    def storage_locations(self) -> list[StorageLocation]:
        """All (node, disk) pairs, interleaved disk-major across nodes.

        Interleaving (disk 0 of every node, then disk 1 of every node, …)
        means round-robin block placement spreads a file across *nodes*
        first, matching the paper's even distribution over the 40 disks.
        """
        max_disks = max(n.spec.disks for n in self._nodes.values())
        locations = []
        for disk_id in range(max_disks):
            for node_id in self._order:
                if disk_id < self._nodes[node_id].spec.disks:
                    locations.append(StorageLocation(node_id=node_id, disk_id=disk_id))
        return locations


def paper_topology(
    *,
    num_nodes: int = 10,
    cores_per_node: int = 4,
    disks_per_node: int = 4,
    map_slots_per_node: int = 4,
    reduce_slots_per_node: int = 2,
) -> ClusterTopology:
    """The paper's 10-node test cluster (§V-A).

    Single-user experiments use the default 4 map slots per node; the
    multi-user experiments raise that to 16 (§V-D).
    """
    specs = [
        NodeSpec(
            node_id=f"node{i:02d}",
            cores=cores_per_node,
            disks=disks_per_node,
            map_slots=map_slots_per_node,
            reduce_slots=reduce_slots_per_node,
        )
        for i in range(num_nodes)
    ]
    return ClusterTopology(specs)
