"""Cluster model: nodes, slots, disks, the task cost model, and metrics.

Models the paper's testbed — a 10-node IBM x3650 cluster, each node with
four cores, four disks, and a configured number of map/reduce slots
(4 per node in the single-user experiments, 16 per node in the multi-user
experiments). The :class:`~repro.cluster.costmodel.CostModel` converts a
task's input size, locality, and the contention it encounters into a
simulated duration; :class:`~repro.cluster.metrics.MetricsMonitor`
samples CPU utilization and disk read rates at a fixed interval the way
the paper's monitoring did (30-second samples, §V-D).
"""

from repro.cluster.costmodel import CostModel
from repro.cluster.metrics import ClusterMetrics, MetricsMonitor
from repro.cluster.node import Node, NodeSpec, RunningTask
from repro.cluster.topology import ClusterTopology, paper_topology

__all__ = [
    "ClusterMetrics",
    "ClusterTopology",
    "CostModel",
    "MetricsMonitor",
    "Node",
    "NodeSpec",
    "RunningTask",
    "paper_topology",
]
