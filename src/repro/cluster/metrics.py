"""Cluster-wide metrics collection.

The paper monitors CPU utilization (%) and disk reads (KB/s) on every
node at 30-second intervals (§V-D) and reports averages over the 40 cores
and 40 disks, plus map-task locality % and slot occupancy % for the
scheduler comparison (§V-F). :class:`MetricsMonitor` reproduces that
methodology against the simulated cluster.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterTopology
from repro.errors import ClusterConfigError
from repro.obs.metrics import MetricsRegistry
from repro.sim.simulator import PeriodicTask, Simulator


class ClusterMetrics:
    """Accumulated samples and counters for one measurement window.

    Backed by a :class:`repro.obs.metrics.MetricsRegistry` (the locality
    counters and per-sample distributions live there, exportable via
    ``snapshot()``); the raw sample lists are kept alongside because the
    paper's figures average them in specific units.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry(scope="cluster")
        self._local = self.registry.counter("local_map_tasks")
        self._remote = self.registry.counter("remote_map_tasks")
        self._cpu = self.registry.histogram("cpu_utilization")
        self._disk = self.registry.histogram("disk_read_bps")
        self._occupancy = self.registry.histogram("slot_occupancy")
        self.sample_times: list[float] = []
        self.cpu_utilization_samples: list[float] = []
        self.disk_read_bps_samples: list[float] = []
        self.slot_occupancy_samples: list[float] = []

    # ------------------------------------------------------------------
    @property
    def local_map_tasks(self) -> int:
        return self._local.value

    @property
    def remote_map_tasks(self) -> int:
        return self._remote.value

    @property
    def num_samples(self) -> int:
        return len(self.sample_times)

    @property
    def avg_cpu_utilization_pct(self) -> float:
        """Average CPU utilization over all samples, as a percentage."""
        return 100.0 * _mean(self.cpu_utilization_samples)

    @property
    def avg_disk_read_kbps(self) -> float:
        """Average per-node disk read rate, in KB/s (paper's Figure 6 unit)."""
        return _mean(self.disk_read_bps_samples) / 1000.0

    @property
    def avg_slot_occupancy_pct(self) -> float:
        return 100.0 * _mean(self.slot_occupancy_samples)

    @property
    def locality_pct(self) -> float:
        """% of finished map tasks that read their split from a local disk."""
        total = self.local_map_tasks + self.remote_map_tasks
        if total == 0:
            return 0.0
        return 100.0 * self.local_map_tasks / total

    def record_map_task(self, *, local: bool) -> None:
        (self._local if local else self._remote).inc()

    def record_sample(
        self, time: float, *, cpu: float, disk_bps: float, occupancy: float
    ) -> None:
        self.sample_times.append(time)
        self.cpu_utilization_samples.append(cpu)
        self.disk_read_bps_samples.append(disk_bps)
        self.slot_occupancy_samples.append(occupancy)
        self._cpu.observe(cpu)
        self._disk.observe(disk_bps)
        self._occupancy.observe(occupancy)

    def snapshot(self) -> dict:
        """Registry snapshot (for trace export / ``repro metrics``)."""
        return self.registry.snapshot()


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


class MetricsMonitor:
    """Samples cluster state on a fixed simulated-time period."""

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        *,
        interval: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise ClusterConfigError(f"metrics interval must be positive, got {interval}")
        self._sim = sim
        self._topology = topology
        self._interval = interval
        self.metrics = ClusterMetrics()
        self._task: PeriodicTask | None = None

    def start(self) -> None:
        if self._task is not None and not self._task.cancelled:
            raise ClusterConfigError("metrics monitor already started")
        self._task = PeriodicTask(
            self._sim, self._interval, self._sample, start_delay=self._interval,
            label="metrics-sample",
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()

    def _sample(self) -> None:
        nodes = self._topology.nodes
        self.metrics.record_sample(
            self._sim.now,
            cpu=_mean([node.cpu_utilization for node in nodes]),
            disk_bps=_mean([node.disk_read_rate_bps for node in nodes]),
            occupancy=self._topology.slot_occupancy,
        )
