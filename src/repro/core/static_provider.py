"""The processes-everything Input Provider.

Models Hadoop's classic execution: all input partitions are added in a
single step at submission and input is immediately complete. A dynamic
job configured with the 'Hadoop' policy behaves identically through the
sampling provider (its GrabLimit is infinite), but non-sampling jobs and
tests use this provider directly.
"""

from __future__ import annotations

from repro.core.input_provider import InputProvider, ProviderResponse
from repro.core.protocol import ClusterStatus, JobProgress


class StaticInputProvider(InputProvider):
    """Adds the entire input up front; never grows the job afterwards."""

    def initial_input(self, cluster: ClusterStatus) -> tuple[list, bool]:
        taken = self.take_all()
        return taken, True

    def evaluate(
        self, progress: JobProgress, cluster: ClusterStatus
    ) -> ProviderResponse:
        return ProviderResponse.end_of_input()
