"""A statistics-aware sampling Input Provider (HAIL-style split pruning).

Extends :class:`~repro.core.sampling_provider.SamplingInputProvider`
with the split statistics written into mmap dataset footers (zone maps +
bloom filters, :mod:`repro.scan.mmapstore`): splits the static analyzer
(:mod:`repro.scan.prune`) proves empty for the job's predicate are
retired *without dispatch* — counted as processed-with-zero-matches via
the ``splits_pruned`` counter that the trace/audit layer folds into the
splits-accounting invariant.

The ``sampling.stats.mode`` JobConf parameter selects how far the
provider leans on statistics:

``off``
    Exact baseline behavior. No stats are read, no extra RNG draws are
    made; results are byte-identical to the plain sampling provider.
``prune``
    Provably-empty splits are removed from the pool up front; grabs stay
    uniformly random over the remainder. Because pruning is sound (a
    pruned split contains no matching row), the produced sample's
    distribution over matching records is unchanged.
``rank``
    Pruning as above, plus grabs are ordered by the zone-map estimate of
    matching rows per split (descending), and the estimate seeds the
    selectivity estimator's prior so the very first evaluations can
    bound their need. Fastest time-to-k; grab order is no longer
    uniform, so use it when sampling-order neutrality is not required.
``stratified``
    Prune only, never reorder: the pool and the RNG stream are exactly
    those of ``off`` — grabs are drawn uniformly from *all* unprocessed
    splits, and any grabbed split that is provably empty is retired on
    the spot (re-grabbing within the same evaluation so an all-pruned
    draw cannot starve the scheduler). Sampling stays provably uniform
    while empty splits still skip the scan.

Splits without statistics (non-mmap layouts, version-1 files, sim
substrate profiles) are never pruned — every mode degrades gracefully
to the baseline behavior on them.
"""

from __future__ import annotations

import math

from repro.core.sampling_provider import SamplingInputProvider
from repro.core.selectivity import SelectivityEstimator
from repro.dfs.split import InputSplit


class StatsAwareProvider(SamplingInputProvider):
    """Sampling provider that prunes and ranks splits via split statistics."""

    def on_initialize(self) -> None:
        super().on_initialize()
        self.splits_pruned = 0
        self._mode = self.conf.stats_mode
        self._lazy_prunable: set = set()
        self._estimates: dict = {}
        if self._mode == "off":
            return
        predicate = self.conf.predicate
        if predicate is None:
            return

        from repro.scan import prune

        prunable: list[InputSplit] = []
        surveyed_rows = 0
        surveyed_matches = 0.0
        surveyed = 0
        for split in self._remaining:
            stats = prune.split_stats(split)
            if stats is None:
                continue
            if not prune.may_match(predicate, stats):
                prunable.append(split)
                continue
            if self._mode == "rank":
                estimate = prune.estimate_matches(predicate, stats)
                self._estimates[split.split_id] = estimate
                surveyed += 1
                surveyed_rows += prune.partition_rows(stats)
                surveyed_matches += estimate

        if self._mode == "stratified":
            # Lazy: pruning happens at grab time so the grab stream over
            # the untouched pool is identical to off mode.
            self._lazy_prunable = {split.split_id for split in prunable}
            return
        pruned_ids = {split.split_id for split in prunable}
        self._remaining = [
            split for split in self._remaining if split.split_id not in pruned_ids
        ]
        self.splits_pruned = len(prunable)
        if (
            self._mode == "rank"
            and surveyed_rows > 0
            and surveyed_matches > 0
            and math.isfinite(surveyed_matches)
        ):
            # Seed the selectivity estimator with one average split's
            # worth of zone-map evidence: enough for the first
            # evaluations to bound their need, weak enough for observed
            # scan results to dominate quickly. Zero (or non-finite)
            # zone-map evidence is *not* seeded: a zero match prior
            # would pin the estimate at 0.0 — claiming certainty that
            # nothing matches — instead of leaving the estimator
            # honestly uninformed (estimate None) until scans report.
            average_rows = surveyed_rows / surveyed
            self._estimator = SelectivityEstimator(
                prior_matches=(surveyed_matches / surveyed_rows) * average_rows,
                prior_records=average_rows,
            )

    @property
    def stats_mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------
    # Grab overrides
    # ------------------------------------------------------------------
    def take_random(self, count: float) -> list[InputSplit]:
        if self._mode == "stratified" and self._lazy_prunable:
            while True:
                taken = super().take_random(count)
                if not taken:
                    return []
                kept = self._retire_pruned(taken)
                if kept:
                    return kept
                # The whole draw was provably empty: retire it and draw
                # again inside the same evaluation (each round shrinks
                # the pool, so this terminates) instead of answering
                # NO_INPUT and tripping the runner's livelock guard.
        if self._mode == "rank" and self._estimates:
            return self._take_ranked(count)
        return super().take_random(count)

    def take_all(self) -> list[InputSplit]:
        taken = super().take_all()
        if self._mode == "stratified" and self._lazy_prunable:
            return self._retire_pruned(taken)
        if self._mode == "rank" and self._estimates:
            taken.sort(key=self._estimate_for, reverse=True)
        return taken

    # ------------------------------------------------------------------
    def _retire_pruned(self, taken: list[InputSplit]) -> list[InputSplit]:
        kept = []
        for split in taken:
            if split.split_id in self._lazy_prunable:
                self._lazy_prunable.discard(split.split_id)
                self.splits_pruned += 1
            else:
                kept.append(split)
        return kept

    def _estimate_for(self, split: InputSplit) -> float:
        estimate = self._estimates.get(split.split_id)
        if estimate is None:
            # Splits without stats cannot be ranked; give them the mean
            # estimate so they sort between the rich and the poor ones.
            known = self._estimates.values()
            return sum(known) / len(self._estimates) if self._estimates else 0.0
        return estimate

    def _take_ranked(self, count: float) -> list[InputSplit]:
        if count <= 0 or not self._remaining:
            return []
        if math.isinf(count) or count >= len(self._remaining):
            return self.take_all()
        # Stable sort on the (insertion-ordered) pool: deterministic
        # ranking, best expected yield first.
        ordered = sorted(self._remaining, key=self._estimate_for, reverse=True)
        taken = ordered[: int(count)]
        taken_ids = {split.split_id for split in taken}
        self._remaining = [
            split for split in self._remaining if split.split_id not in taken_ids
        ]
        return taken
