"""Predicate-based sampling as a MapReduce job (paper §II-B).

Algorithm 1 (map): evaluate the predicate on each record; output up to k
matching records under a single dummy key. Each map task caps its own
output at k because, processing its partition in isolation, it must
assume no other task finds anything.

Algorithm 2 (reduce): the single dummy key funnels every candidate to one
reduce task, which outputs the first k values (all of them if fewer).

The JobConf builders attach the dynamic-job parameters of §IV and the
profile-output functions that let the same job run on metadata-only
splits in the simulated substrate.
"""

from __future__ import annotations

import math
import random
from typing import Any

from repro.data.predicates import Predicate
from repro.data.record import project
from repro.dfs.split import InputSplit
from repro.engine.jobconf import (
    DYNAMIC_INPUT_PROVIDER,
    DYNAMIC_JOB,
    DYNAMIC_JOB_POLICY,
    SAMPLE_SIZE,
    SAMPLING_PREDICATE,
    STATS_MODE,
    STATS_MODES,
    JobConf,
)
from repro.engine.mapreduce import MapContext, Mapper, ReduceContext, Reducer
from repro.errors import JobConfError
from repro.scan.codegen import (
    batch_matcher_source,
    compile_batch_matcher,
    compile_row_matcher,
)

DUMMY_KEY = "k_dummy"
"""The single intermediate key shared by all sampling map output."""


class SamplingMapper(Mapper):
    """Algorithm 1: emit up to ``k`` predicate-matching records.

    The record loop stops scanning the moment the task's own ``k`` is
    reached — exactly Algorithm 1's premise that a task processing its
    partition in isolation needs at most ``k`` matches; any further rows
    cannot change its output. ``records_read`` therefore reflects only
    rows actually scanned, which the Input Provider's selectivity
    estimator consumes. All three scan modes (interpreted / compiled /
    batch) share this semantics and produce byte-identical output.
    """

    def __init__(
        self,
        predicate: Predicate,
        k: int,
        columns: tuple[str, ...] | None = None,
    ) -> None:
        if k <= 0:
            raise JobConfError(f"sample size must be positive, got {k}")
        self._predicate = predicate
        self._k = k
        self._columns = columns
        self._found_records = 0
        self._match = predicate.matches
        self._batch_matcher = None

    def prepare_scan(self, mode: str) -> None:
        if mode != "interpreted":
            self._match = compile_row_matcher(self._predicate)

    def scan_task_spec(self):
        from repro.scan.proc import ScanTaskSpec

        source, namespace = batch_matcher_source(self._predicate)
        return ScanTaskSpec(
            source=source,
            namespace=namespace,
            limit=self._k,
            columns=self._columns,
            fixed_key=DUMMY_KEY,
        )

    def map(self, key: Any, value: Any, context: MapContext) -> None:
        if self._found_records < self._k and self._match(value):
            self._found_records += 1
            output = (
                project(value, self._columns) if self._columns is not None else value
            )
            context.emit(DUMMY_KEY, output)

    def run(self, records, context: MapContext) -> None:
        self.setup(context)
        k = self._k
        match = self._match
        columns = self._columns
        for _key, value in records:
            context.records_read += 1
            if match(value):
                self._found_records += 1
                context.emit(
                    DUMMY_KEY,
                    project(value, columns) if columns is not None else value,
                )
                if self._found_records >= k:
                    break  # LIMIT short-circuit: stop scanning mid-split
        self.cleanup(context)

    def run_batch(self, batch, context: MapContext) -> bool:
        if self._batch_matcher is None:
            self._batch_matcher = compile_batch_matcher(self._predicate)
        remaining = self._k - self._found_records
        if remaining <= 0:
            return True
        hits: list[int] = []
        scanned = self._batch_matcher(
            batch.columns, batch.start, batch.stop, remaining, hits.append
        )
        context.records_read += scanned
        columns = self._columns
        for index in hits:
            context.emit(DUMMY_KEY, batch.row(index, columns))
        self._found_records += len(hits)
        return self._found_records >= self._k


class SamplingReducer(Reducer):
    """Algorithm 2: pass through the first ``k`` candidate values."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise JobConfError(f"sample size must be positive, got {k}")
        self._k = k

    def reduce(self, key: Any, values: list, context: ReduceContext) -> None:
        for value in values[: self._k]:
            context.emit(key, value)


class ReservoirSamplingReducer(Reducer):
    """The paper's footnote variant: "One could do a 'random' k instead,
    to get more random results, in cases where more randomness is
    desired."

    Uses Vitter's Algorithm R over the candidate list, so every candidate
    the map phase surfaced has equal probability of entering the final
    sample — removing the head bias of taking the *first* k (candidates
    from earlier-finishing map tasks win under Algorithm 2).
    """

    def __init__(self, k: int, rng: random.Random | None = None) -> None:
        if k <= 0:
            raise JobConfError(f"sample size must be positive, got {k}")
        self._k = k
        self._rng = rng or random.Random(0)

    def reduce(self, key: Any, values: list, context: ReduceContext) -> None:
        reservoir: list = []
        for index, value in enumerate(values):
            if index < self._k:
                reservoir.append(value)
            else:
                slot = self._rng.randint(0, index)
                if slot < self._k:
                    reservoir[slot] = value
        for value in reservoir:
            context.emit(key, value)


class ScanMapper(Mapper):
    """Select-project mapper for the Non-Sampling workload class (§V-E):
    emits every matching record, projected, with no cap."""

    def __init__(
        self, predicate: Predicate, columns: tuple[str, ...] | None = None
    ) -> None:
        self._predicate = predicate
        self._columns = columns
        self._match = predicate.matches
        self._batch_matcher = None

    def prepare_scan(self, mode: str) -> None:
        if mode != "interpreted":
            self._match = compile_row_matcher(self._predicate)

    def scan_task_spec(self):
        from repro.scan.proc import ScanTaskSpec

        source, namespace = batch_matcher_source(self._predicate)
        return ScanTaskSpec(
            source=source,
            namespace=namespace,
            limit=None,
            columns=self._columns,
            fixed_key=None,
        )

    def map(self, key: Any, value: Any, context: MapContext) -> None:
        if self._match(value):
            output = (
                project(value, self._columns) if self._columns is not None else value
            )
            context.emit(key, output)

    def run_batch(self, batch, context: MapContext) -> bool:
        if self._batch_matcher is None:
            self._batch_matcher = compile_batch_matcher(self._predicate)
        hits: list[int] = []
        scanned = self._batch_matcher(
            batch.columns, batch.start, batch.stop, None, hits.append
        )
        context.records_read += scanned
        columns = self._columns
        for index in hits:
            context.emit(index, batch.row(index, columns))
        return False


# ---------------------------------------------------------------------------
# JobConf builders
# ---------------------------------------------------------------------------
def make_sampling_conf(
    *,
    name: str,
    input_path: str,
    predicate: Predicate,
    sample_size: int,
    policy_name: str | None = "LA",
    provider_name: str = "sampling",
    columns: tuple[str, ...] | None = None,
    user: str = "default",
    reservoir: bool = False,
    reservoir_seed: int = 0,
    stats_mode: str | None = None,
) -> JobConf:
    """A predicate-based sampling job.

    ``policy_name=None`` builds the job as a classic static job (all
    input up front) — useful for baselines that bypass the dynamic-job
    machinery entirely; the paper's 'Hadoop' policy is instead expressed
    as a dynamic job whose GrabLimit is infinite, matching §III-B.

    ``reservoir=True`` swaps Algorithm 2's first-k reduce for the
    paper-footnote reservoir variant (uniform over all candidates).

    ``stats_mode`` (off/prune/rank/stratified) enables split-statistics
    use; any mode other than ``off`` routes the job to the ``stats``
    provider unless ``provider_name`` was set explicitly.
    """
    if sample_size <= 0:
        raise JobConfError(f"sample size must be positive, got {sample_size}")
    if stats_mode is not None and stats_mode not in STATS_MODES:
        raise JobConfError(
            f"invalid stats_mode={stats_mode!r}; one of {STATS_MODES}"
        )
    if stats_mode not in (None, "off") and provider_name == "sampling":
        provider_name = "stats"
    conf = JobConf(
        name=name,
        input_path=input_path,
        mapper_factory=lambda: SamplingMapper(predicate, sample_size, columns),
        reducer_factory=(
            (lambda: ReservoirSamplingReducer(sample_size, random.Random(reservoir_seed)))
            if reservoir
            else (lambda: SamplingReducer(sample_size))
        ),
        num_reduce_tasks=1,
        profile_outputs=_sampling_profile(predicate, sample_size),
        user=user,
        predicate=predicate,
    )
    conf.set(SAMPLE_SIZE, sample_size)
    conf.set(SAMPLING_PREDICATE, predicate.name)
    if stats_mode is not None:
        conf.set(STATS_MODE, stats_mode)
    if policy_name is not None:
        conf.set(DYNAMIC_JOB, "true")
        conf.set(DYNAMIC_JOB_POLICY, policy_name)
        conf.set(DYNAMIC_INPUT_PROVIDER, provider_name)
    return conf


def make_scan_conf(
    *,
    name: str,
    input_path: str,
    predicate: Predicate,
    columns: tuple[str, ...] | None = None,
    fallback_selectivity: float | None = None,
    user: str = "default",
) -> JobConf:
    """A static select-project job (the Non-Sampling class of §V-E).

    ``fallback_selectivity`` estimates map output for profile-only splits
    whose match counts were not controlled for ``predicate``.
    """
    return JobConf(
        name=name,
        input_path=input_path,
        mapper_factory=lambda: ScanMapper(predicate, columns),
        reducer_factory=None,
        num_reduce_tasks=0,
        profile_outputs=_scan_profile(predicate, fallback_selectivity),
        user=user,
        predicate=predicate,
    )


def _sampling_profile(predicate: Predicate, k: int):
    """Profile-mode map output: min(k, matches in split) — Algorithm 1's cap."""

    def outputs(split: InputSplit) -> int:
        return min(k, _split_matches(split, predicate, fallback_selectivity=None))

    return outputs


def _scan_profile(predicate: Predicate, fallback_selectivity: float | None):
    def outputs(split: InputSplit) -> int:
        return _split_matches(
            split, predicate, fallback_selectivity=fallback_selectivity
        )

    return outputs


def _split_matches(
    split: InputSplit, predicate: Predicate, *, fallback_selectivity: float | None
) -> int:
    counts = split.block.payload.match_counts
    if predicate.name in counts:
        return counts[predicate.name]
    if fallback_selectivity is not None:
        # Explicit half-up rounding: built-in round() rounds half to even
        # (banker's rounding), which at exact .5 boundaries rounds half
        # the cases *down* and systematically undercounts expected
        # matches across a sweep of profile-only splits.
        return math.floor(split.num_records * fallback_selectivity + 0.5)
    raise JobConfError(
        f"split {split.split_id} carries no match profile for predicate "
        f"{predicate.name!r} and no fallback selectivity was given; "
        "profile-mode execution cannot determine map output"
    )
