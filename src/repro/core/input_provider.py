"""The Input Provider protocol (paper §III-A).

An Input Provider is pluggable, client-side logic that decides how a
dynamic job consumes its input. At each invocation it receives the job's
progress statistics and the cluster's load summary and answers one of
three ways (Figure 3 of the paper):

* ``END_OF_INPUT`` — the job needs no more input; in-flight maps finish,
  the provider is never invoked again, and the job proceeds to shuffle.
* ``INPUT_AVAILABLE`` — here are additional partitions to process next.
* ``NO_INPUT_AVAILABLE`` — wait and see; re-assess at the next invocation.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.policy import Policy
from repro.core.protocol import ClusterStatus, JobProgress
from repro.dfs.split import InputSplit
from repro.errors import InputProviderError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.engine.jobconf import JobConf


class ResponseKind(enum.Enum):
    END_OF_INPUT = "end_of_input"
    INPUT_AVAILABLE = "input_available"
    NO_INPUT_AVAILABLE = "no_input_available"


@dataclass(frozen=True)
class ProviderResponse:
    """One answer from an Input Provider evaluation."""

    kind: ResponseKind
    splits: tuple[InputSplit, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is ResponseKind.INPUT_AVAILABLE and not self.splits:
            raise InputProviderError(
                "INPUT_AVAILABLE response must carry at least one split"
            )
        if self.kind is not ResponseKind.INPUT_AVAILABLE and self.splits:
            raise InputProviderError(f"{self.kind.value} response cannot carry splits")

    @staticmethod
    def end_of_input() -> "ProviderResponse":
        return ProviderResponse(ResponseKind.END_OF_INPUT)

    @staticmethod
    def input_available(splits: list[InputSplit]) -> "ProviderResponse":
        return ProviderResponse(ResponseKind.INPUT_AVAILABLE, tuple(splits))

    @staticmethod
    def no_input() -> "ProviderResponse":
        return ProviderResponse(ResponseKind.NO_INPUT_AVAILABLE)


class InputProvider:
    """Base class for Input Providers.

    Lifecycle: ``initialize`` once with the complete input partition set
    (paper §IV: "As part of its initialization, the Input Provider is
    provided with the set of input partitions that form the complete
    input for the job"), then ``initial_input`` once at submission, then
    ``evaluate`` at each evaluation point until END_OF_INPUT.

    The base class manages the unprocessed-split pool and the random,
    GrabLimit-capped selection both built-in providers share.
    """

    def __init__(self) -> None:
        self._remaining: list[InputSplit] = []
        self._conf: "JobConf | None" = None
        self._policy: Policy | None = None
        self._rng: random.Random | None = None
        self._initialized = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(
        self,
        splits: list[InputSplit],
        conf: "JobConf",
        policy: Policy,
        rng: random.Random,
    ) -> None:
        if self._initialized:
            raise InputProviderError("InputProvider.initialize called twice")
        self._remaining = list(splits)
        self._conf = conf
        self._policy = policy
        self._rng = rng
        self._initialized = True
        self.on_initialize()

    def on_initialize(self) -> None:
        """Subclass hook; runs after base initialization."""

    def initial_input(self, cluster: ClusterStatus) -> tuple[list[InputSplit], bool]:
        """The initial split set, plus whether input is already complete."""
        self._check_initialized()
        taken = self.take_random(self.grab_limit(cluster))
        return taken, not self._remaining

    def evaluate(
        self, progress: JobProgress, cluster: ClusterStatus
    ) -> ProviderResponse:
        raise NotImplementedError

    def observe_split(
        self,
        split_id: str,
        *,
        records: int,
        outputs: int,
        rows: list | None = None,
    ) -> None:
        """Per-completed-split observation hook (no-op by default).

        The execution substrate calls this once per finished map task,
        before the next :meth:`evaluate`. ``rows`` carries the task's
        materialized map outputs when the substrate has them (LocalRunner)
        and ``None`` when only counters exist (simulated profile mode).
        Providers that estimate from per-split statistics — the accuracy
        provider's split-level aggregates — override this.
        """

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    @property
    def conf(self) -> "JobConf":
        self._check_initialized()
        return self._conf  # type: ignore[return-value]

    @property
    def policy(self) -> Policy:
        self._check_initialized()
        return self._policy  # type: ignore[return-value]

    @property
    def remaining_splits(self) -> int:
        return len(self._remaining)

    def grab_limit(self, cluster: ClusterStatus) -> float:
        """This step's GrabLimit under the configured policy.

        The policy boundary: whatever ``Policy.max_grab`` produced is
        validated here, so a broken policy surfaces as a clear error at
        the evaluation that used it instead of a silent empty grab (or a
        cryptic ``int(nan)`` crash) somewhere inside split selection.
        """
        limit = self.policy.max_grab(
            total_slots=cluster.total_map_slots,
            available_slots=cluster.available_map_slots,
        )
        if not isinstance(limit, (int, float)) or isinstance(limit, bool):
            raise InputProviderError(
                f"policy {self.policy.name!r} produced a non-numeric "
                f"grab limit: {limit!r}"
            )
        if math.isnan(limit):
            raise InputProviderError(
                f"policy {self.policy.name!r} produced a NaN grab limit"
            )
        if limit < 0:
            raise InputProviderError(
                f"policy {self.policy.name!r} produced a negative grab "
                f"limit: {limit!r}"
            )
        return limit

    def take_all(self) -> list[InputSplit]:
        """Remove every remaining split, in random order.

        The explicit unbounded grab (static provider, and sampling
        providers whose need or GrabLimit is unbounded) — callers no
        longer spell it as ``take_random(float("inf"))``, though that
        remains equivalent.
        """
        self._check_initialized()
        if not self._remaining:
            return []
        taken = list(self._remaining)
        self._remaining.clear()
        self._rng.shuffle(taken)  # type: ignore[union-attr]
        return taken

    def take_random(self, count: float) -> list[InputSplit]:
        """Remove up to ``count`` splits, chosen uniformly at random.

        Random selection is what makes the produced sample random
        (paper §IV); ``count`` may be ``inf``, equivalent to
        :meth:`take_all`. NaN is rejected — it compares false against
        everything, so it would silently select nothing.
        """
        self._check_initialized()
        if isinstance(count, float) and math.isnan(count):
            raise InputProviderError("take_random(count) must not be NaN")
        if count <= 0 or not self._remaining:
            return []
        if count >= len(self._remaining):
            return self.take_all()
        taken = self._rng.sample(self._remaining, int(count))  # type: ignore[union-attr]
        taken_ids = {split.split_id for split in taken}
        self._remaining = [
            split for split in self._remaining if split.split_id not in taken_ids
        ]
        return taken

    def _check_initialized(self) -> None:
        if not self._initialized:
            raise InputProviderError("InputProvider used before initialize()")


class ProviderRegistry:
    """Maps the ``dynamic.input.provider`` JobConf value to a class."""

    def __init__(self) -> None:
        self._providers: dict[str, type[InputProvider]] = {}

    def register(self, name: str, cls: type[InputProvider], *, replace: bool = False) -> None:
        if not name:
            raise InputProviderError("provider name must be non-empty")
        if name in self._providers and not replace:
            raise InputProviderError(f"provider {name!r} already registered")
        self._providers[name] = cls

    def create(self, name: str) -> InputProvider:
        try:
            cls = self._providers[name]
        except KeyError:
            raise InputProviderError(
                f"unknown input provider {name!r}; registered: {sorted(self._providers)}"
            ) from None
        return cls()

    def names(self) -> list[str]:
        return sorted(self._providers)

    def __contains__(self, name: str) -> bool:
        return name in self._providers


def default_providers() -> ProviderRegistry:
    """Registry with the built-in providers.

    ``sampling`` and ``static`` implement the paper; ``adaptive``
    implements its §VII future-work direction (runtime policy switching);
    ``stats`` adds zone-map/bloom split pruning on top of ``sampling``;
    ``accuracy`` stops on confidence-interval width instead of k matches.
    """
    # Imported here to avoid a circular import at module load.
    from repro.approx.provider import AccuracyProvider
    from repro.core.adaptive import AdaptiveSamplingProvider
    from repro.core.sampling_provider import SamplingInputProvider
    from repro.core.static_provider import StaticInputProvider
    from repro.core.stats_provider import StatsAwareProvider

    registry = ProviderRegistry()
    registry.register("sampling", SamplingInputProvider)
    registry.register("static", StaticInputProvider)
    registry.register("adaptive", AdaptiveSamplingProvider)
    registry.register("stats", StatsAwareProvider)
    registry.register("accuracy", AccuracyProvider)
    return registry
