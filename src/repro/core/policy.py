"""Growth policies (paper §III-B and Table I).

A policy is three parameters:

* **EvaluationInterval** — seconds between Input Provider invocations
  (the paper fixes 4 s for all non-Hadoop policies).
* **WorkThreshold** — minimum newly processed input partitions between
  successive evaluations, as a percentage of the job's total input
  partitions.
* **GrabLimit** — upper bound on splits added per step, written as an
  expression over ``TS`` (total map slots in the cluster) and ``AS``
  (currently available map slots), e.g. ``max(0.5 * TS, AS)`` or
  ``AS > 0 ? 0.5 * AS : 0.2 * TS`` or ``infinity``.

The expression form is what a policy.xml entry holds (paper §IV), so a
tiny recursive-descent evaluator is provided rather than ``eval``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.errors import PolicyError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|[-+*/()<>?:,]))"
)

_VARIABLES = ("TS", "AS")


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remaining = text[pos:].strip()
            if not remaining:
                break
            raise PolicyError(f"bad grab-limit expression near {remaining[:12]!r}")
        token = match.group("num") or match.group("name") or match.group("op")
        tokens.append(token)
        pos = match.end()
    return tokens


class GrabLimitExpression:
    """A parsed grab-limit expression, evaluated against TS/AS.

    Grammar (lowest to highest precedence)::

        expr   := or ('?' expr ':' expr)?
        or     := cmp
        cmp    := sum (('<'|'<='|'>'|'>='|'=='|'!=') sum)?
        sum    := term (('+'|'-') term)*
        term   := unary (('*'|'/') unary)*
        unary  := '-' unary | atom
        atom   := NUMBER | 'TS' | 'AS' | 'infinity'
                | ('max'|'min') '(' expr ',' expr ')' | '(' expr ')'
    """

    def __init__(self, source: str) -> None:
        if not source or not source.strip():
            raise PolicyError("empty grab-limit expression")
        self.source = source.strip()
        self._tokens = _tokenize(self.source)
        self._pos = 0
        self._ast = self._parse_expr()
        if self._pos != len(self._tokens):
            raise PolicyError(
                f"trailing input in grab-limit expression: "
                f"{' '.join(self._tokens[self._pos:])!r}"
            )
        # Validate by evaluating once.
        self.evaluate(ts=1, available=1)

    # ------------------------------------------------------------------
    # Parsing (produces nested tuples interpreted by _eval)
    # ------------------------------------------------------------------
    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PolicyError(f"unexpected end of grab-limit expression {self.source!r}")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise PolicyError(
                f"expected {token!r} in grab-limit expression, got {got!r}"
            )

    def _parse_expr(self):
        condition = self._parse_cmp()
        if self._peek() == "?":
            self._next()
            if_true = self._parse_expr()
            self._expect(":")
            if_false = self._parse_expr()
            return ("cond", condition, if_true, if_false)
        return condition

    def _parse_cmp(self):
        left = self._parse_sum()
        op = self._peek()
        if op in ("<", "<=", ">", ">=", "==", "!="):
            self._next()
            right = self._parse_sum()
            return ("cmp", op, left, right)
        return left

    def _parse_sum(self):
        node = self._parse_term()
        while self._peek() in ("+", "-"):
            op = self._next()
            node = ("bin", op, node, self._parse_term())
        return node

    def _parse_term(self):
        node = self._parse_unary()
        while self._peek() in ("*", "/"):
            op = self._next()
            node = ("bin", op, node, self._parse_unary())
        return node

    def _parse_unary(self):
        if self._peek() == "-":
            self._next()
            return ("neg", self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self):
        token = self._next()
        if token == "(":
            node = self._parse_expr()
            self._expect(")")
            return node
        if re.fullmatch(r"\d+(?:\.\d+)?", token):
            return ("num", float(token))
        upper = token.upper()
        if upper in _VARIABLES:
            return ("var", upper)
        if token.lower() in ("infinity", "inf"):
            return ("num", math.inf)
        if token.lower() in ("max", "min"):
            self._expect("(")
            first = self._parse_expr()
            self._expect(",")
            second = self._parse_expr()
            self._expect(")")
            return ("call", token.lower(), first, second)
        raise PolicyError(f"unknown token {token!r} in grab-limit expression")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, *, ts: float, available: float) -> float:
        """Value of the expression for total slots ``ts``, available ``available``."""
        env = {"TS": float(ts), "AS": float(available)}
        value = self._eval(self._ast, env)
        if isinstance(value, bool):
            raise PolicyError(
                f"grab-limit expression {self.source!r} evaluates to a boolean"
            )
        value = float(value)
        if math.isnan(value):
            raise PolicyError(
                f"grab-limit expression {self.source!r} evaluates to NaN "
                f"for TS={ts}, AS={available} (e.g. infinity * 0)"
            )
        return value

    def _eval(self, node, env):
        kind = node[0]
        if kind == "num":
            return node[1]
        if kind == "var":
            return env[node[1]]
        if kind == "neg":
            return -self._eval(node[1], env)
        if kind == "bin":
            _tag, op, left, right = node
            a = self._eval(left, env)
            b = self._eval(right, env)
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if b == 0:
                raise PolicyError(f"division by zero in {self.source!r}")
            return a / b
        if kind == "cmp":
            _tag, op, left, right = node
            a = self._eval(left, env)
            b = self._eval(right, env)
            return {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
                "==": a == b,
                "!=": a != b,
            }[op]
        if kind == "cond":
            _tag, condition, if_true, if_false = node
            test = self._eval(condition, env)
            if not isinstance(test, bool):
                raise PolicyError(
                    f"conditional in {self.source!r} needs a comparison "
                    "(e.g. 'AS > 0 ? ... : ...'), not a bare value"
                )
            branch = if_true if test else if_false
            return self._eval(branch, env)
        if kind == "call":
            _tag, fn, first, second = node
            a = self._eval(first, env)
            b = self._eval(second, env)
            return max(a, b) if fn == "max" else min(a, b)
        raise PolicyError(f"corrupt expression node {node!r}")  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GrabLimitExpression({self.source!r})"


@dataclass(frozen=True)
class Policy:
    """One growth policy (a row of Table I)."""

    name: str
    description: str
    work_threshold_pct: float
    grab_limit: GrabLimitExpression
    evaluation_interval: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("policy name must be non-empty")
        if not 0 <= self.work_threshold_pct <= 100:
            raise PolicyError(
                f"policy {self.name}: work threshold must be a percentage, "
                f"got {self.work_threshold_pct}"
            )
        if self.evaluation_interval <= 0:
            raise PolicyError(
                f"policy {self.name}: evaluation interval must be positive"
            )

    @property
    def is_unbounded(self) -> bool:
        """True when the grab limit is infinite regardless of load (the
        'Hadoop' policy): all input is added in a single step."""
        return math.isinf(self.grab_limit.evaluate(ts=1, available=0))

    def max_grab(self, *, total_slots: int, available_slots: int) -> float:
        """Maximum splits this policy allows adding right now.

        Fractional positive limits round up so that a policy entitled to
        *some* growth can always make progress; a limit of exactly zero
        (e.g. ``0.1 * AS`` with ``AS == 0``) stays zero.
        """
        value = self.grab_limit.evaluate(ts=total_slots, available=available_slots)
        if value <= 0:
            return 0
        if math.isinf(value):
            return math.inf
        return math.ceil(value)

    def work_threshold_splits(self, total_input_splits: int) -> int:
        """The WorkThreshold converted to a split count for this job."""
        return math.ceil(self.work_threshold_pct / 100.0 * total_input_splits)


class PolicyRegistry:
    """Named policies, as configured via policy.xml (paper §IV)."""

    def __init__(self) -> None:
        self._policies: dict[str, Policy] = {}

    def register(self, policy: Policy, *, replace: bool = False) -> None:
        if policy.name in self._policies and not replace:
            raise PolicyError(f"policy {policy.name!r} already registered")
        self._policies[policy.name] = policy

    def get(self, name: str) -> Policy:
        try:
            return self._policies[name]
        except KeyError:
            raise PolicyError(
                f"unknown policy {name!r}; configured: {sorted(self._policies)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._policies)

    def __contains__(self, name: str) -> bool:
        return name in self._policies

    def __iter__(self):
        return iter(self._policies.values())

    def __len__(self) -> int:
        return len(self._policies)


PAPER_POLICY_NAMES = ("Hadoop", "HA", "MA", "LA", "C")

# Table I, verbatim except for the evident AS>0 typo fix (see DESIGN.md §1).
_PAPER_POLICY_DEFS = (
    ("Hadoop", "Hadoop's default behaviour", 0.0, "infinity"),
    ("HA", "Highly Aggressive policy", 0.0, "max(0.5 * TS, AS)"),
    ("MA", "Mid Aggressive policy", 5.0, "AS > 0 ? 0.5 * AS : 0.2 * TS"),
    ("LA", "Less Aggressive policy", 10.0, "AS > 0 ? 0.2 * AS : 0.1 * TS"),
    ("C", "Conservative policy", 15.0, "0.1 * AS"),
)


def paper_policies(evaluation_interval: float = 4.0) -> PolicyRegistry:
    """The five policies of Table I, with the paper's 4 s evaluation interval."""
    registry = PolicyRegistry()
    for name, description, threshold, grab in _PAPER_POLICY_DEFS:
        registry.register(
            Policy(
                name=name,
                description=description,
                work_threshold_pct=threshold,
                grab_limit=GrabLimitExpression(grab),
                evaluation_interval=evaluation_interval,
            )
        )
    return registry
