"""The predicate-based-sampling Input Provider (paper §IV).

Decision procedure at each evaluation point:

1. If the completed map tasks have already produced >= k output tuples,
   stop adding input (END_OF_INPUT).
2. Otherwise estimate the predicate's selectivity from the records
   processed and matches found so far, compute the *expected* output of
   the splits already added but not yet finished, and derive the
   shortfall. If the in-flight work is expected to cover the shortfall,
   wait (NO_INPUT_AVAILABLE).
3. Otherwise convert the shortfall into a number of additional splits
   (via the observed records-per-split) and grab that many — capped by
   the policy's GrabLimit — uniformly at random from the unprocessed
   remainder (INPUT_AVAILABLE).

When no selectivity information exists yet (no matches seen), the
provider grabs up to the GrabLimit: it cannot bound the need, so the
policy alone governs growth.
"""

from __future__ import annotations

import math

from repro.core.input_provider import InputProvider, ProviderResponse
from repro.core.selectivity import SelectivityEstimator
from repro.core.protocol import ClusterStatus, JobProgress
from repro.errors import InputProviderError


class SamplingInputProvider(InputProvider):
    """Input Provider for fixed-size predicate-based sampling jobs."""

    def on_initialize(self) -> None:
        k = self.conf.sample_size
        if k is None or k <= 0:
            raise InputProviderError(
                f"sampling job {self.conf.name!r} must set a positive "
                "sampling.size parameter"
            )
        self._k = k
        self._estimator = SelectivityEstimator()

    @property
    def sample_size(self) -> int:
        return self._k

    @property
    def estimator(self) -> SelectivityEstimator:
        return self._estimator

    # ------------------------------------------------------------------
    def evaluate(
        self, progress: JobProgress, cluster: ClusterStatus
    ) -> ProviderResponse:
        self._estimator.observe_totals(
            progress.records_processed, progress.outputs_produced
        )

        # (1) Enough output already produced by finished maps.
        if progress.outputs_produced >= self._k:
            return ProviderResponse.end_of_input()

        # Nothing left to add: the sample will be whatever the in-flight
        # maps find; declare end of input so reduce can start once they
        # finish.
        if self.remaining_splits == 0:
            return ProviderResponse.end_of_input()

        # (2) Account for the expected output of pending map tasks.
        expected_pending = self._estimator.expected_matches(progress.records_pending)
        shortfall = self._k - progress.outputs_produced - expected_pending
        if shortfall <= 0:
            return ProviderResponse.no_input()

        # Without a usable selectivity estimate, the need cannot be
        # bounded. While uninformed work is still in flight, "wait and
        # see" — grabbing blindly every evaluation would queue unbounded,
        # likely wasted, work behind splits whose outcome is unknown.
        # Once nothing is pending, probing more input is the only way
        # forward.
        estimate = self._estimator.estimate
        if (estimate is None or estimate <= 0) and progress.records_pending > 0:
            return ProviderResponse.no_input()

        # (3) Convert shortfall into splits, capped by the GrabLimit.
        limit = self.grab_limit(cluster)
        if limit <= 0:
            return ProviderResponse.no_input()
        needed_splits = self._needed_splits(progress, shortfall)
        take = min(needed_splits, limit)
        # An unbounded take (infinite GrabLimit and unbounded need) is
        # the explicit take-everything case, not an infinite count.
        chosen = self.take_all() if math.isinf(take) else self.take_random(take)
        if not chosen:
            return ProviderResponse.no_input()
        return ProviderResponse.input_available(chosen)

    # ------------------------------------------------------------------
    def _needed_splits(self, progress: JobProgress, shortfall: float) -> float:
        """Estimated number of additional splits covering ``shortfall`` matches.

        Uses the observed average records per completed split ("the Input
        Provider computes the expected number of records in each split",
        §IV). With no completed splits or a zero selectivity estimate the
        need is unbounded and the GrabLimit alone applies.
        """
        records_needed = self._estimator.records_needed(shortfall)
        if math.isinf(records_needed):
            return math.inf
        if progress.splits_completed <= 0 or progress.records_processed <= 0:
            return math.inf
        avg_records_per_split = progress.records_processed / progress.splits_completed
        return math.ceil(records_needed / avg_records_per_split)
