"""The information exchanged between the execution framework and an
Input Provider (paper §III-A and §IV).

"The execution framework, at regular intervals of time, invokes the
Input Provider and provides it with statistics about the output produced
by finished mappers, the status of the job, the current load, and the
availability of map slots in the cluster."

These types live in :mod:`repro.core` (not the engine) because they *are*
the contract of the contribution: both execution substrates produce
them, and every Input Provider consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import JobError


@dataclass(frozen=True)
class ClusterStatus:
    """Cluster-load summary retrieved from the JobTracker.

    ``TS``/``AS`` in the policy formulas of Table I are
    ``total_map_slots`` / ``available_map_slots``.
    """

    total_map_slots: int
    available_map_slots: int
    running_map_tasks: int
    queued_map_tasks: int

    def __post_init__(self) -> None:
        if self.available_map_slots < 0 or self.total_map_slots < 0:
            raise JobError("slot counts cannot be negative")


@dataclass(frozen=True)
class JobProgress:
    """Snapshot of one job's progress, as reported to its Input Provider.

    All counters reflect *completed* map tasks except the ``pending``
    fields, which describe splits added to the job but not yet finished
    (queued or running).
    """

    job_id: str
    total_splits_known: int
    splits_added: int
    splits_completed: int
    splits_pending: int
    records_processed: int
    outputs_produced: int
    records_pending: int

    @property
    def splits_remaining(self) -> int:
        """Splits of the full input not yet added to the job."""
        return self.total_splits_known - self.splits_added
