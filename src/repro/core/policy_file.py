"""policy.xml: the on-disk policy catalogue (paper §IV).

"The available policies are defined in a policy.xml file ... The end-user
is currently required to choose amongst the configured policies (which
are listed in the policy.xml file)."

Format::

    <policies>
      <policy name="LA" description="Less Aggressive policy">
        <workThreshold>10</workThreshold>
        <grabLimit>AS &gt; 0 ? 0.2 * AS : 0.1 * TS</grabLimit>
        <evaluationInterval>4</evaluationInterval>
      </policy>
      ...
    </policies>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.core.policy import GrabLimitExpression, Policy, PolicyRegistry
from repro.errors import PolicyError


def load_policies(path: str | Path) -> PolicyRegistry:
    """Parse a policy.xml file into a registry."""
    try:
        tree = ET.parse(str(path))
    except (ET.ParseError, OSError) as exc:
        raise PolicyError(f"cannot load policy file {path}: {exc}") from exc
    root = tree.getroot()
    if root.tag != "policies":
        raise PolicyError(f"policy file {path}: root element must be <policies>")
    registry = PolicyRegistry()
    for element in root.findall("policy"):
        registry.register(_parse_policy(element, path))
    if len(registry) == 0:
        raise PolicyError(f"policy file {path}: defines no policies")
    return registry


def _parse_policy(element: ET.Element, path: str | Path) -> Policy:
    name = element.get("name")
    if not name:
        raise PolicyError(f"policy file {path}: <policy> missing name attribute")
    description = element.get("description", "")
    work_threshold = _child_text(element, "workThreshold", path, name)
    grab_limit = _child_text(element, "grabLimit", path, name)
    interval_el = element.find("evaluationInterval")
    interval = 4.0 if interval_el is None else _parse_float(
        interval_el.text or "", "evaluationInterval", path, name
    )
    return Policy(
        name=name,
        description=description,
        work_threshold_pct=_parse_float(work_threshold, "workThreshold", path, name),
        grab_limit=GrabLimitExpression(grab_limit),
        evaluation_interval=interval,
    )


def _child_text(element: ET.Element, tag: str, path, name: str) -> str:
    child = element.find(tag)
    if child is None or child.text is None or not child.text.strip():
        raise PolicyError(f"policy file {path}: policy {name!r} missing <{tag}>")
    return child.text.strip()


def _parse_float(text: str, tag: str, path, name: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise PolicyError(
            f"policy file {path}: policy {name!r} <{tag}> is not a number: {text!r}"
        ) from None


def dump_policies(registry: PolicyRegistry, path: str | Path) -> None:
    """Write a registry out as policy.xml."""
    root = ET.Element("policies")
    for policy in sorted(registry, key=lambda p: p.name):
        element = ET.SubElement(
            root, "policy", name=policy.name, description=policy.description
        )
        # repr() keeps full float precision so load(dump(x)) == x.
        ET.SubElement(element, "workThreshold").text = repr(
            float(policy.work_threshold_pct)
        )
        ET.SubElement(element, "grabLimit").text = policy.grab_limit.source
        ET.SubElement(element, "evaluationInterval").text = repr(
            float(policy.evaluation_interval)
        )
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(str(path), encoding="unicode", xml_declaration=True)
