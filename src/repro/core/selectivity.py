"""Online selectivity estimation (paper §IV).

"Given the number of input records processed so far and the number of
matching records found among them, the Input Provider estimates the
predicate selectivity for the input data."

The estimator is a running ratio with an optional pseudo-count prior.
The paper's provider uses the raw ratio; the prior (disabled by default)
is exposed for the ablation benchmark on estimator design.
"""

from __future__ import annotations

import math

from repro.errors import InputProviderError


class SelectivityEstimator:
    """Running estimate of ``matches / records`` over observed input."""

    def __init__(
        self,
        *,
        prior_matches: float = 0.0,
        prior_records: float = 0.0,
    ) -> None:
        if not (math.isfinite(prior_matches) and math.isfinite(prior_records)):
            raise InputProviderError(
                f"priors must be finite, got matches={prior_matches!r} "
                f"records={prior_records!r}"
            )
        if prior_matches < 0 or prior_records < 0:
            raise InputProviderError("priors must be non-negative")
        if prior_matches > 0 and prior_records <= 0:
            raise InputProviderError("a match prior requires a record prior")
        if prior_records > 0 and prior_matches <= 0:
            # A zero match prior over a positive record prior is not "no
            # information" — it asserts certainty of zero selectivity,
            # pinning the early estimate at 0.0 and starving grab sizing
            # (records_needed -> inf) until real matches accumulate.
            # Callers with zero observed evidence must pass no prior.
            raise InputProviderError(
                "a record prior requires a positive match prior (a zero "
                "match prior would pin the estimate at 0.0)"
            )
        self._prior_matches = prior_matches
        self._prior_records = prior_records
        self._records = 0
        self._matches = 0

    # ------------------------------------------------------------------
    def observe_totals(self, records_processed: int, matches_found: int) -> None:
        """Update with *cumulative* totals (monotonically non-decreasing)."""
        if records_processed < self._records or matches_found < self._matches:
            raise InputProviderError(
                "selectivity totals went backwards: "
                f"records {self._records}->{records_processed}, "
                f"matches {self._matches}->{matches_found}"
            )
        if matches_found > records_processed:
            raise InputProviderError(
                f"more matches ({matches_found}) than records ({records_processed})"
            )
        self._records = records_processed
        self._matches = matches_found

    @property
    def records_observed(self) -> int:
        return self._records

    @property
    def matches_observed(self) -> int:
        return self._matches

    @property
    def estimate(self) -> float | None:
        """Current selectivity estimate, or None before any observation."""
        records = self._records + self._prior_records
        if records <= 0:
            return None
        return (self._matches + self._prior_matches) / records

    # ------------------------------------------------------------------
    def expected_matches(self, records: int) -> float:
        """Expected matching records among ``records`` unseen records."""
        if records < 0:
            raise InputProviderError(f"records must be >= 0, got {records}")
        selectivity = self.estimate
        if selectivity is None:
            return 0.0
        return selectivity * records

    def records_needed(self, matches_needed: float) -> float:
        """Records that must be processed to find ``matches_needed`` more
        matches, under the current estimate (``inf`` when the estimate is
        zero or unavailable)."""
        if matches_needed <= 0:
            return 0.0
        selectivity = self.estimate
        if selectivity is None or selectivity <= 0:
            return math.inf
        return matches_needed / selectivity
