"""Runtime policy adaptation (the paper's future work, §VII).

"As part of future work, it could be interesting to implement a more
flexible model wherein a job could decide and change the policy at
runtime, based on the discovered characteristics of the input data
together with the existing load on the cluster."

:class:`AdaptiveSamplingProvider` implements that model. It reuses the
sampling provider's estimation machinery unchanged, but at every
evaluation re-selects the *policy* whose GrabLimit governs the step:

* **Cluster load** (1 - AS/TS): an idle cluster rewards aggression
  (paper §V-C), a loaded one rewards conservatism (paper §V-D/E).
* **Observed skew**: when the per-evaluation match yield is erratic
  (high dispersion), aggressive grabbing overcomes skew faster
  (paper §V-C finding 2), so the provider escalates one step.

The ladder of policies and the load thresholds are configurable via
JobConf parameters::

    dynamic.adaptive.ladder        comma list, conservative -> aggressive
                                   (default "C,LA,MA,HA")
    dynamic.adaptive.idle.load     load below which the most aggressive
                                   rung is used (default 0.25)
    dynamic.adaptive.busy.load     load above which the most conservative
                                   rung is used (default 0.75)

The job's configured ``dynamic.job.policy`` still supplies the
EvaluationInterval and WorkThreshold (the cadence); only the GrabLimit
adapts.
"""

from __future__ import annotations

import math

from repro.core.input_provider import ProviderResponse
from repro.core.policy import PolicyRegistry, paper_policies
from repro.core.protocol import ClusterStatus, JobProgress
from repro.core.sampling_provider import SamplingInputProvider
from repro.errors import InputProviderError

LADDER_PARAM = "dynamic.adaptive.ladder"
IDLE_LOAD_PARAM = "dynamic.adaptive.idle.load"
BUSY_LOAD_PARAM = "dynamic.adaptive.busy.load"

DEFAULT_LADDER = ("C", "LA", "MA", "HA")


class AdaptiveSamplingProvider(SamplingInputProvider):
    """Sampling provider that re-picks its growth policy every step."""

    #: Registry the ladder names are resolved against. Swappable in tests.
    policy_registry: PolicyRegistry | None = None

    def on_initialize(self) -> None:
        super().on_initialize()
        registry = self.policy_registry or paper_policies()
        ladder_text = self.conf.get(LADDER_PARAM)
        names = (
            tuple(name.strip() for name in ladder_text.split(","))
            if ladder_text
            else DEFAULT_LADDER
        )
        if not names:
            raise InputProviderError("adaptive ladder must not be empty")
        self._ladder = tuple(registry.get(name) for name in names)
        self._idle_load = self._load_param(IDLE_LOAD_PARAM, 0.25)
        self._busy_load = self._load_param(BUSY_LOAD_PARAM, 0.75)
        if self._idle_load > self._busy_load:
            raise InputProviderError(
                f"adaptive thresholds inverted: idle {self._idle_load} > "
                f"busy {self._busy_load}"
            )
        # Per-evaluation match yields, for the skew signal.
        self._yield_history: list[float] = []
        self._last_outputs = 0
        self._last_splits = 0
        self.policy_decisions: list[str] = []

    def _load_param(self, key: str, default: float) -> float:
        raw = self.conf.get(key)
        if raw is None:
            return default
        value = float(raw)
        if not 0.0 <= value <= 1.0:
            raise InputProviderError(f"{key} must be in [0, 1], got {value}")
        return value

    # ------------------------------------------------------------------
    # Policy selection
    # ------------------------------------------------------------------
    def select_policy(self, progress: JobProgress, cluster: ClusterStatus):
        """The ladder rung for the current load and skew signal."""
        rung = self._rung_for_load(self._cluster_load(cluster))
        if self._skew_detected():
            rung = min(rung + 1, len(self._ladder) - 1)
        policy = self._ladder[rung]
        self.policy_decisions.append(policy.name)
        return policy

    def _cluster_load(self, cluster: ClusterStatus) -> float:
        if cluster.total_map_slots <= 0:
            return 1.0
        return 1.0 - cluster.available_map_slots / cluster.total_map_slots

    def _rung_for_load(self, load: float) -> int:
        """Map load onto the ladder: idle -> top rung, busy -> rung 0."""
        top = len(self._ladder) - 1
        if load <= self._idle_load:
            return top
        if load >= self._busy_load:
            return 0
        span = self._busy_load - self._idle_load
        fraction = (load - self._idle_load) / span
        return round((1.0 - fraction) * top)

    def _skew_detected(self) -> bool:
        """High dispersion of per-evaluation match yield signals skew."""
        history = [y for y in self._yield_history if not math.isnan(y)]
        if len(history) < 2:
            return False
        mean = sum(history) / len(history)
        if mean <= 0:
            return False
        variance = sum((y - mean) ** 2 for y in history) / len(history)
        return math.sqrt(variance) > mean  # coefficient of variation > 1

    def _record_yield(self, progress: JobProgress) -> None:
        new_splits = progress.splits_completed - self._last_splits
        if new_splits > 0:
            new_outputs = progress.outputs_produced - self._last_outputs
            self._yield_history.append(new_outputs / new_splits)
            self._last_splits = progress.splits_completed
            self._last_outputs = progress.outputs_produced

    # ------------------------------------------------------------------
    # Hook into the sampling provider
    # ------------------------------------------------------------------
    def evaluate(
        self, progress: JobProgress, cluster: ClusterStatus
    ) -> ProviderResponse:
        self._record_yield(progress)
        self._active_policy = self.select_policy(progress, cluster)
        return super().evaluate(progress, cluster)

    def grab_limit(self, cluster: ClusterStatus) -> float:
        policy = getattr(self, "_active_policy", None)
        if policy is None:
            # The initial grab (before any evaluation): pick from load alone.
            policy = self._ladder[self._rung_for_load(self._cluster_load(cluster))]
            self.policy_decisions.append(policy.name)
        return policy.max_grab(
            total_slots=cluster.total_map_slots,
            available_slots=cluster.available_map_slots,
        )
