"""The paper's contribution: incremental job expansion.

* :mod:`repro.core.input_provider` — the Input Provider protocol (paper
  §III-A): the three-way response (end of input / input available / no
  input available) and the provider registry.
* :mod:`repro.core.policy` — growth policies (paper §III-B, Table I):
  EvaluationInterval, WorkThreshold, GrabLimit — the latter as a small
  expression language over ``TS`` (total map slots) and ``AS`` (available
  map slots), which is what makes a policy.xml file expressive.
* :mod:`repro.core.policy_file` — the policy.xml loader/writer (§IV).
* :mod:`repro.core.selectivity` — online selectivity estimation.
* :mod:`repro.core.sampling_provider` — the predicate-based-sampling
  Input Provider (§IV).
* :mod:`repro.core.static_provider` — processes-everything provider
  (Hadoop's classic model, used by non-sampling jobs).
* :mod:`repro.core.sampling_job` — Algorithms 1 & 2 plus JobConf builders.
"""

from repro.core.input_provider import (
    InputProvider,
    ProviderRegistry,
    ProviderResponse,
    ResponseKind,
    default_providers,
)
from repro.core.policy import (
    GrabLimitExpression,
    Policy,
    PolicyRegistry,
    PAPER_POLICY_NAMES,
    paper_policies,
)
from repro.core.policy_file import dump_policies, load_policies
from repro.core.sampling_job import (
    SamplingMapper,
    SamplingReducer,
    make_sampling_conf,
    make_scan_conf,
)
from repro.core.sampling_provider import SamplingInputProvider
from repro.core.selectivity import SelectivityEstimator
from repro.core.static_provider import StaticInputProvider

__all__ = [
    "GrabLimitExpression",
    "InputProvider",
    "PAPER_POLICY_NAMES",
    "Policy",
    "PolicyRegistry",
    "ProviderRegistry",
    "ProviderResponse",
    "ResponseKind",
    "SamplingInputProvider",
    "SamplingMapper",
    "SamplingReducer",
    "SelectivityEstimator",
    "StaticInputProvider",
    "default_providers",
    "dump_policies",
    "load_policies",
    "make_sampling_conf",
    "make_scan_conf",
    "paper_policies",
]
