"""Closed-loop users.

"We modeled a group of 10 concurrent users where each user submits a
query and waits for its completion before submitting another query (the
same query again)." (paper §V-D)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.cluster_engine import SimulatedCluster
from repro.engine.job import JobResult
from repro.engine.jobconf import JobConf
from repro.errors import WorkloadError


class UserClass(enum.Enum):
    """The two user classes of the heterogeneous experiment (§V-E)."""

    SAMPLING = "sampling"
    NON_SAMPLING = "non_sampling"


@dataclass(frozen=True)
class UserSpec:
    """Static description of one workload user.

    ``conf_factory(iteration)`` builds the JobConf for the user's next
    submission — the "same query again", but as a fresh conf so job
    bookkeeping never aliases across runs.
    """

    user_id: str
    user_class: UserClass
    conf_factory: Callable[[int], JobConf]


@dataclass
class CompletionRecord:
    """One finished job of one user."""

    user_id: str
    user_class: UserClass
    result: JobResult

    @property
    def finish_time(self) -> float:
        return self.result.finish_time


class ClosedLoopUser:
    """Submit -> wait -> resubmit, forever (until the runner stops it)."""

    def __init__(
        self,
        spec: UserSpec,
        cluster: SimulatedCluster,
        on_completion: Callable[[CompletionRecord], None],
    ) -> None:
        self.spec = spec
        self._cluster = cluster
        self._on_completion = on_completion
        self._iteration = 0
        self._stopped = False
        self.completions = 0

    def start(self) -> None:
        self._submit_next()

    def stop(self) -> None:
        """Stop resubmitting (the in-flight job is left to finish)."""
        self._stopped = True

    def _submit_next(self) -> None:
        if self._stopped:
            return
        conf = self.spec.conf_factory(self._iteration)
        if not isinstance(conf, JobConf):
            raise WorkloadError(
                f"user {self.spec.user_id}: conf_factory returned {type(conf).__name__}"
            )
        self._iteration += 1
        self._cluster.submit(conf, self._job_done)

    def _job_done(self, result: JobResult) -> None:
        self.completions += 1
        self._on_completion(
            CompletionRecord(
                user_id=self.spec.user_id,
                user_class=self.spec.user_class,
                result=result,
            )
        )
        self._submit_next()
