"""Workload generation and measurement (paper §V-D/E).

Reimplements the methodology of the paper's workload generator [2]:
closed-loop users who each submit a query, wait for its completion, and
immediately submit the same query again — each against a private copy of
the dataset so no query benefits from another's buffer cache. Runs are
measured at steady state and reported as per-class throughput
(jobs/hour) alongside the resource metrics of Figure 6.
"""

from repro.workload.generator import (
    WorkloadSpec,
    heterogeneous_workload,
    homogeneous_sampling_workload,
)
from repro.workload.runner import WorkloadResult, WorkloadRunner
from repro.workload.stats import summarize
from repro.workload.user import ClosedLoopUser, UserClass, UserSpec

__all__ = [
    "ClosedLoopUser",
    "UserClass",
    "UserSpec",
    "WorkloadResult",
    "WorkloadRunner",
    "WorkloadSpec",
    "heterogeneous_workload",
    "homogeneous_sampling_workload",
    "summarize",
]
