"""Running workloads to steady state and measuring throughput.

"Each workload was run for a sufficiently long duration to obtain steady
state throughput." (§V-D). The runner starts all users at t=0, lets the
system warm up for ``warmup`` simulated seconds, then counts completions
over a ``measurement`` window. Resource metrics (CPU %, disk KB/s, slot
occupancy, locality) are collected over the same window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import ClusterMetrics
from repro.engine.cluster_engine import SimulatedCluster
from repro.errors import WorkloadError
from repro.workload.generator import WorkloadSpec
from repro.workload.user import ClosedLoopUser, CompletionRecord, UserClass


@dataclass
class WorkloadResult:
    """Measured outcome of one workload run."""

    warmup: float
    measurement: float
    completions: list[CompletionRecord] = field(default_factory=list)
    metrics: ClusterMetrics | None = None

    def _measured(self, user_class: UserClass | None = None):
        start = self.warmup
        end = self.warmup + self.measurement
        return [
            record
            for record in self.completions
            if start <= record.finish_time < end
            and (user_class is None or record.user_class == user_class)
        ]

    def throughput_jobs_per_hour(self, user_class: UserClass | None = None) -> float:
        """Completed jobs per hour inside the measurement window."""
        if self.measurement <= 0:
            return 0.0
        return len(self._measured(user_class)) * 3600.0 / self.measurement

    def mean_response_time(self, user_class: UserClass | None = None) -> float:
        measured = self._measured(user_class)
        if not measured:
            return 0.0
        return sum(r.result.response_time for r in measured) / len(measured)

    def mean_partitions_processed(self, user_class: UserClass | None = None) -> float:
        measured = self._measured(user_class)
        if not measured:
            return 0.0
        return sum(r.result.splits_processed for r in measured) / len(measured)

    @property
    def total_completions(self) -> int:
        return len(self.completions)


class WorkloadRunner:
    """Drives a workload spec on a simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        spec: WorkloadSpec,
        *,
        warmup: float = 600.0,
        measurement: float = 3600.0,
    ) -> None:
        if warmup < 0 or measurement <= 0:
            raise WorkloadError(
                f"invalid window: warmup={warmup}, measurement={measurement}"
            )
        if spec.num_users == 0:
            raise WorkloadError("workload has no users")
        self._cluster = cluster
        self._spec = spec
        self._warmup = warmup
        self._measurement = measurement

    def run(self) -> WorkloadResult:
        result = WorkloadResult(warmup=self._warmup, measurement=self._measurement)
        users = [
            ClosedLoopUser(spec, self._cluster, result.completions.append)
            for spec in self._spec.users
        ]
        sim = self._cluster.sim
        start = sim.now
        for user in users:
            user.start()
        # Metrics cover only the measurement window.
        sim.schedule(self._warmup, self._cluster.start_metrics)
        end = start + self._warmup + self._measurement
        sim.run(until=end)
        self._cluster.monitor.stop()
        for user in users:
            user.stop()
        # Drain in-flight jobs so a subsequent run starts from idle, but
        # count nothing past the window (completions are filtered by time).
        sim.run(until=end + 1e6, advance_clock=False)
        result.metrics = self._cluster.metrics
        return result
