"""Workload builders for the paper's multi-user experiments.

Each user queries a *private copy* of the dataset: "each works against a
different copy of the dataset to ensure that each query requires
fetching its input from the disk and does not leverage the buffer cache
populated by some other query" (§V-D). The builders therefore load one
dataset per user into the cluster's DFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sampling_job import make_sampling_conf, make_scan_conf
from repro.data.datasets import PartitionedDataset
from repro.data.predicates import Predicate
from repro.engine.cluster_engine import SimulatedCluster
from repro.errors import WorkloadError
from repro.workload.user import UserClass, UserSpec


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully wired workload: users ready to run against a cluster."""

    users: tuple[UserSpec, ...]

    @property
    def num_users(self) -> int:
        return len(self.users)

    def users_of(self, user_class: UserClass) -> list[UserSpec]:
        return [u for u in self.users if u.user_class == user_class]


def _load_private_copies(
    cluster: SimulatedCluster,
    dataset_factory,
    num_users: int,
    path_prefix: str,
) -> list[str]:
    paths = []
    for index in range(num_users):
        path = f"{path_prefix}/copy{index:02d}"
        cluster.load_dataset(path, dataset_factory(index))
        paths.append(path)
    return paths


def homogeneous_sampling_workload(
    cluster: SimulatedCluster,
    *,
    num_users: int,
    policy_name: str,
    predicate: Predicate,
    sample_size: int = 10_000,
    dataset_factory=None,
    dataset: PartitionedDataset | None = None,
    path_prefix: str = "/warehouse/sampling",
) -> WorkloadSpec:
    """All users run the same sampling query under the same policy (§V-D).

    Provide either ``dataset`` (one instance reused as every user's
    private copy — cheap, identical contents) or ``dataset_factory(i)``
    (per-user datasets, e.g. different placement seeds).
    """
    factory = _resolve_dataset_factory(dataset, dataset_factory)
    paths = _load_private_copies(cluster, factory, num_users, path_prefix)

    def make_user(index: int) -> UserSpec:
        path = paths[index]

        def conf_factory(iteration: int):
            return make_sampling_conf(
                name=f"sample-u{index:02d}-i{iteration}",
                input_path=path,
                predicate=predicate,
                sample_size=sample_size,
                policy_name=policy_name,
                user=f"user{index:02d}",
            )

        return UserSpec(
            user_id=f"user{index:02d}",
            user_class=UserClass.SAMPLING,
            conf_factory=conf_factory,
        )

    return WorkloadSpec(users=tuple(make_user(i) for i in range(num_users)))


def heterogeneous_workload(
    cluster: SimulatedCluster,
    *,
    num_users: int,
    sampling_fraction: float,
    sampling_policy: str,
    sampling_predicate: Predicate,
    scan_predicate: Predicate,
    sample_size: int = 10_000,
    scan_selectivity: float = 0.0005,
    dataset: PartitionedDataset | None = None,
    dataset_factory=None,
    path_prefix: str = "/warehouse/mixed",
) -> WorkloadSpec:
    """Sampling + Non-Sampling user mix (§V-E).

    ``sampling_fraction`` of the users issue the dynamic sampling query
    under ``sampling_policy``; the rest issue static select-project scans
    with the given selectivity (0.05% in the paper).
    """
    if not 0 <= sampling_fraction <= 1:
        raise WorkloadError(
            f"sampling_fraction must be in [0, 1], got {sampling_fraction}"
        )
    factory = _resolve_dataset_factory(dataset, dataset_factory)
    paths = _load_private_copies(cluster, factory, num_users, path_prefix)
    num_sampling = round(num_users * sampling_fraction)

    users = []
    for index in range(num_users):
        path = paths[index]
        if index < num_sampling:
            def conf_factory(iteration: int, path=path, index=index):
                return make_sampling_conf(
                    name=f"sample-u{index:02d}-i{iteration}",
                    input_path=path,
                    predicate=sampling_predicate,
                    sample_size=sample_size,
                    policy_name=sampling_policy,
                    user=f"user{index:02d}",
                )

            user_class = UserClass.SAMPLING
        else:
            def conf_factory(iteration: int, path=path, index=index):
                return make_scan_conf(
                    name=f"scan-u{index:02d}-i{iteration}",
                    input_path=path,
                    predicate=scan_predicate,
                    fallback_selectivity=scan_selectivity,
                    user=f"user{index:02d}",
                )

            user_class = UserClass.NON_SAMPLING
        users.append(
            UserSpec(
                user_id=f"user{index:02d}",
                user_class=user_class,
                conf_factory=conf_factory,
            )
        )
    return WorkloadSpec(users=tuple(users))


def _resolve_dataset_factory(dataset, dataset_factory):
    if (dataset is None) == (dataset_factory is None):
        raise WorkloadError("provide exactly one of dataset / dataset_factory")
    if dataset is not None:
        return lambda _index: dataset
    return dataset_factory
