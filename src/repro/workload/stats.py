"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Summary:
    """Mean / stdev / min / max of a series."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.stdev:.1f} (n={self.count})"


def summarize(values: list[float]) -> Summary:
    """Summary statistics of a non-empty series."""
    if not values:
        raise WorkloadError("cannot summarize an empty series")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )
