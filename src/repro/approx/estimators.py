"""Error-bounded aggregate estimation over sampled splits.

The accuracy-aware workload (ROADMAP item 2, EARL-style) answers
COUNT/SUM/AVG — optionally per GROUP BY group — from the splits a
dynamic job has scanned so far, together with a confidence interval that
shrinks as more splits arrive. The statistical unit is the *split*, not
the row: the Input Provider grabs whole splits uniformly at random, so
the sample is a cluster sample of ``m`` out of ``N`` splits and the
classical survey estimators apply:

* ``COUNT``: ``T = N * mean(c_i)`` where ``c_i`` is the number of
  matching rows in observed split ``i``;
* ``SUM``: the same with per-split value sums ``s_i``;
* ``AVG``: the ratio estimator ``R = sum(s_i) / sum(c_i)`` with the
  linearized (Taylor) variance.

Every variance carries the finite-population correction ``(1 - m/N)``,
so a full scan reports an exact answer with zero width. Intervals use
Student-t critical values (normal quantiles via the Acklam inverse-CDF
approximation, with the standard small-sample series correction) — the
CLT path. Groups observed in too few splits fall back to a
deterministic, seeded bootstrap over the per-split totals (percentile
interval), which does not lean on asymptotics.

All math is pure Python and deterministic: the same observations always
produce the same estimates and widths, which is what lets the audit
layer replay stopping decisions from a trace.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import JobConfError

AGGREGATE_FUNCS = ("count", "sum", "avg")

#: Groups observed in fewer splits than this use the bootstrap interval;
#: at or above it the CLT (t-interval) path applies.
BOOTSTRAP_MIN_SPLITS = 8

#: Bootstrap resamples. Enough for a stable 95% percentile interval over
#: per-split totals; deterministic via a per-(group, m) seeded RNG.
BOOTSTRAP_RESAMPLES = 200


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate expression: ``count(*)``, ``sum(col)`` or ``avg(col)``."""

    func: str
    column: str | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise JobConfError(
                f"unknown aggregate {self.func!r}; one of {AGGREGATE_FUNCS}"
            )
        if self.func == "count" and self.column is not None:
            raise JobConfError("count takes no column (COUNT(*) only)")
        if self.func != "count" and not self.column:
            raise JobConfError(f"{self.func} needs a column")

    @property
    def needs_values(self) -> bool:
        """Whether the estimator must see row values (SUM/AVG) or only
        per-split match counts (COUNT)."""
        return self.func != "count"

    def serialize(self) -> str:
        """Wire form for the JobConf parameter bag."""
        return self.func if self.column is None else f"{self.func}:{self.column}"

    @staticmethod
    def parse(text: str) -> "AggregateSpec":
        func, _, column = text.partition(":")
        return AggregateSpec(func=func.strip(), column=column.strip() or None)

    def __str__(self) -> str:
        return f"{self.func.upper()}({self.column or '*'})"


@dataclass(frozen=True)
class GroupEstimate:
    """The current answer for one group (or the single implicit group)."""

    group: object
    estimate: float | None
    half_width: float | None  # None until computable (m < 2 or no data)
    n_splits: int
    sample_count: int
    sample_sum: float
    method: str  # "clt" | "bootstrap" | "exact" | "none"

    def meets(self, target_pct: float) -> bool:
        """Whether the CI half-width is within ``target_pct`` percent of
        the estimate. A zero estimate can only be certified by a full
        scan (method "exact") — a zero-variance sample does not prove a
        zero total, and the relative target is undefined at zero."""
        if self.estimate is None or self.half_width is None:
            return False
        if self.method == "exact":
            return True
        if self.estimate == 0.0:
            return False
        return self.half_width <= abs(self.estimate) * (target_pct / 100.0)


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); plenty for critical values.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def t_quantile(p: float, df: int) -> float:
    """Student-t quantile via the Cornish-Fisher expansion around z.

    Two correction terms — within ~1% of the exact value for df >= 3,
    converging to the normal quantile as df grows. Small-sample CIs over
    few splits need the fatter tails or they under-cover badly.
    """
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    z = normal_quantile(p)
    g1 = (z**3 + z) / 4.0
    g2 = (5.0 * z**5 + 16.0 * z**3 + 3.0 * z) / 96.0
    return z + g1 / df + g2 / df**2


def critical_value(confidence_pct: float, df: int) -> float:
    """Two-sided critical value at ``confidence_pct`` with ``df`` dof."""
    if not 50.0 < confidence_pct < 100.0:
        raise JobConfError(
            f"confidence must be in (50, 100) percent, got {confidence_pct}"
        )
    return t_quantile(0.5 + confidence_pct / 200.0, df)


@dataclass
class _GroupTotals:
    """Per-split (count, sum) contributions for one group."""

    counts: dict[str, int] = field(default_factory=dict)
    sums: dict[str, float] = field(default_factory=dict)

    def add(self, split_id: str, count: int, total: float) -> None:
        self.counts[split_id] = self.counts.get(split_id, 0) + count
        self.sums[split_id] = self.sums.get(split_id, 0.0) + total


class AggregateEstimator:
    """Running error-bounded estimate of one aggregate over grabbed splits.

    Feed it one :meth:`observe_split` call per *completed* split (with
    that split's per-group matching counts and value sums); read back
    :meth:`estimates` / :meth:`worst` at any point. ``total_splits`` is
    the population size N fixed at job initialization.
    """

    def __init__(
        self,
        spec: AggregateSpec,
        *,
        total_splits: int,
        confidence_pct: float = 95.0,
        bootstrap_min_splits: int = BOOTSTRAP_MIN_SPLITS,
    ) -> None:
        if total_splits <= 0:
            raise JobConfError(
                f"total_splits must be positive, got {total_splits}"
            )
        # Validate eagerly so a bad confidence fails at job setup.
        critical_value(confidence_pct, df=1)
        self.spec = spec
        self.total_splits = total_splits
        self.confidence_pct = confidence_pct
        self._bootstrap_min = bootstrap_min_splits
        self._split_ids: list[str] = []
        self._seen: set[str] = set()
        self._groups: dict[object, _GroupTotals] = {}

    # ------------------------------------------------------------------
    @property
    def observed_splits(self) -> int:
        return len(self._split_ids)

    def observe_split(
        self, split_id: str, group_stats: dict[object, tuple[int, float]]
    ) -> None:
        """Record one completed split's per-group (count, value-sum)."""
        if split_id in self._seen:
            raise JobConfError(f"split {split_id} observed twice")
        if len(self._split_ids) >= self.total_splits:
            raise JobConfError(
                f"observed more splits than the population ({self.total_splits})"
            )
        self._seen.add(split_id)
        self._split_ids.append(split_id)
        for group, (count, total) in group_stats.items():
            totals = self._groups.get(group)
            if totals is None:
                totals = self._groups[group] = _GroupTotals()
            totals.add(split_id, count, float(total))

    # ------------------------------------------------------------------
    # Point estimates + intervals
    # ------------------------------------------------------------------
    def estimates(self) -> list[GroupEstimate]:
        """Per-group estimates, deterministic group order (by str form)."""
        if not self._groups and self._split_ids:
            # Splits scanned, nothing matched anywhere: the implicit
            # (group-less) aggregate still has an answer for COUNT/SUM.
            return [self._estimate_for(None, _GroupTotals())]
        return [
            self._estimate_for(group, totals)
            for group, totals in sorted(
                self._groups.items(), key=lambda item: str(item[0])
            )
        ]

    def worst(self, target_pct: float) -> GroupEstimate | None:
        """The group furthest from meeting ``target_pct`` (None if no data)."""
        candidates = self.estimates() if self._split_ids else []
        if not candidates:
            return None
        worst = None
        worst_ratio = -1.0
        for est in candidates:
            ratio = self._target_ratio(est, target_pct)
            if ratio > worst_ratio:
                worst, worst_ratio = est, ratio
        return worst

    def all_met(self, target_pct: float) -> bool:
        if not self._split_ids:
            return False
        return all(est.meets(target_pct) for est in self.estimates())

    @staticmethod
    def _target_ratio(est: GroupEstimate, target_pct: float) -> float:
        """half_width / target, with inf standing in for "unknowable"."""
        if est.method == "exact":
            return 0.0
        if est.estimate is None or est.half_width is None:
            return math.inf
        target = abs(est.estimate) * (target_pct / 100.0)
        return math.inf if target <= 0 else est.half_width / target

    # ------------------------------------------------------------------
    def _series(self, totals: _GroupTotals) -> tuple[list[float], list[float]]:
        counts = [float(totals.counts.get(sid, 0)) for sid in self._split_ids]
        sums = [totals.sums.get(sid, 0.0) for sid in self._split_ids]
        return counts, sums

    def _estimate_for(self, group: object, totals: _GroupTotals) -> GroupEstimate:
        counts, sums = self._series(totals)
        m = len(self._split_ids)
        sample_count = int(sum(counts))
        sample_sum = sum(sums)
        if m == 0:
            return GroupEstimate(group, None, None, 0, 0, 0.0, "none")

        point = self._point(counts, sums)
        if point is None:
            return GroupEstimate(group, None, None, m, sample_count, sample_sum, "none")

        if m >= self.total_splits:
            # Full population: the answer is exact by construction.
            return GroupEstimate(group, point, 0.0, m, sample_count, sample_sum, "exact")
        if m < 2:
            return GroupEstimate(group, point, None, m, sample_count, sample_sum, "none")
        if m < self._bootstrap_min:
            half = self._bootstrap_half_width(group, counts, sums, point)
            return GroupEstimate(
                group, point, half, m, sample_count, sample_sum, "bootstrap"
            )
        half = self._clt_half_width(counts, sums, point)
        return GroupEstimate(group, point, half, m, sample_count, sample_sum, "clt")

    def _point(self, counts: list[float], sums: list[float]) -> float | None:
        m = len(counts)
        if self.spec.func == "count":
            return self.total_splits * (sum(counts) / m)
        if self.spec.func == "sum":
            return self.total_splits * (sum(sums) / m)
        matched = sum(counts)
        if matched <= 0:
            return None  # AVG over zero matching rows is undefined.
        return sum(sums) / matched

    def _clt_half_width(
        self, counts: list[float], sums: list[float], point: float
    ) -> float:
        m = len(counts)
        fpc = max(0.0, 1.0 - m / self.total_splits)
        t = critical_value(self.confidence_pct, df=m - 1)
        if self.spec.func in ("count", "sum"):
            series = counts if self.spec.func == "count" else sums
            mean = sum(series) / m
            var = sum((x - mean) ** 2 for x in series) / (m - 1)
            se = self.total_splits * math.sqrt(fpc * var / m)
            return t * se
        # AVG: ratio estimator, linearized residuals d_i = s_i - R*c_i.
        c_bar = sum(counts) / m
        residuals = [s - point * c for c, s in zip(counts, sums)]
        var_d = sum(d * d for d in residuals) / (m - 1)
        se = math.sqrt(fpc * var_d / m) / c_bar
        return t * se

    def _bootstrap_half_width(
        self, group: object, counts: list[float], sums: list[float], point: float
    ) -> float | None:
        """Percentile-interval half-width from seeded split resampling.

        The RNG seed is derived from the group and the number of
        observations, so re-evaluating the same state (or replaying a
        trace) reproduces the exact same width.
        """
        m = len(counts)
        rng = random.Random(f"approx-bootstrap:{m}:{group!r}")
        stats: list[float] = []
        for _ in range(BOOTSTRAP_RESAMPLES):
            picked = [rng.randrange(m) for _ in range(m)]
            re_counts = [counts[i] for i in picked]
            re_sums = [sums[i] for i in picked]
            value = self._point(re_counts, re_sums)
            if value is not None:
                stats.append(value)
        if len(stats) < BOOTSTRAP_RESAMPLES // 2:
            return None  # Resamples mostly degenerate (e.g. AVG with no matches).
        stats.sort()
        alpha = (100.0 - self.confidence_pct) / 200.0
        lo = stats[max(0, int(math.floor(alpha * len(stats))))]
        hi = stats[min(len(stats) - 1, int(math.ceil((1.0 - alpha) * len(stats))) - 1)]
        # FPC: a bootstrap over an SRSWOR cluster sample overstates the
        # spread by 1/sqrt(1 - m/N); shrink accordingly so exhausting the
        # input still converges to zero width.
        fpc = math.sqrt(max(0.0, 1.0 - m / self.total_splits))
        return (hi - lo) / 2.0 * fpc
