"""Error-bounded aggregation (ROADMAP item 2, EARL-style).

COUNT/SUM/AVG (+ GROUP BY) answered from a growing split sample, with
the Input Provider stopping on "CI half-width <= error target" instead
of "k matches". See DESIGN.md §10.
"""

from repro.approx.estimators import (
    AggregateEstimator,
    AggregateSpec,
    GroupEstimate,
)
from repro.approx.job import (
    ApproxAggregationMapper,
    ApproxAggregationReducer,
    finalize_rows,
    make_approx_conf,
)
from repro.approx.provider import AccuracyProvider

__all__ = [
    "AccuracyProvider",
    "AggregateEstimator",
    "AggregateSpec",
    "ApproxAggregationMapper",
    "ApproxAggregationReducer",
    "GroupEstimate",
    "finalize_rows",
    "make_approx_conf",
]
