"""Error-bounded aggregation as a MapReduce job.

Map side: evaluate the predicate on each record and emit
``(group_key, value)`` for every match — ``value`` is the aggregated
column's value for SUM/AVG and ``0.0`` for COUNT(*), where the emission
itself is the observation. No cap: unlike Algorithm 1's k-limit, every
match in a grabbed split contributes to the estimate.

Reduce side: one task folds each group's candidates into exact
``{count, sum}`` totals over the *scanned* splits. The statistical
answer itself lives with the :class:`AccuracyProvider`'s estimator
(fed per-split via ``observe_split``); :func:`finalize_rows` joins the
two and cross-checks that the reducer's totals equal the estimator's —
a cheap end-to-end invariant that either side would fail loudly if the
observation plumbing dropped or duplicated a split.
"""

from __future__ import annotations

import math
from typing import Any

from repro.approx.estimators import AggregateSpec
from repro.core.sampling_job import _split_matches
from repro.data.predicates import Predicate
from repro.dfs.split import InputSplit
from repro.engine.jobconf import (
    APPROX_AGGREGATE,
    APPROX_GROUP_BY,
    DYNAMIC_INPUT_PROVIDER,
    DYNAMIC_JOB,
    DYNAMIC_JOB_POLICY,
    ERROR_CONFIDENCE,
    ERROR_PCT,
    SAMPLING_PREDICATE,
    JobConf,
)
from repro.engine.mapreduce import MapContext, Mapper, ReduceContext, Reducer
from repro.errors import JobConfError, JobError
from repro.scan.codegen import compile_batch_matcher, compile_row_matcher


class ApproxAggregationMapper(Mapper):
    """Emit ``(group_key, value)`` for every predicate match.

    The emitted key varies per row (the GROUP BY value, or None), so
    this mapper has no shippable scan-task spec — the process executor
    falls back to in-process execution, which is always correct.
    """

    def __init__(
        self,
        predicate: Predicate,
        spec: AggregateSpec,
        group_by: str | None = None,
    ) -> None:
        self._predicate = predicate
        self._spec = spec
        self._group_by = group_by
        self._match = predicate.matches
        self._batch_matcher = None

    def prepare_scan(self, mode: str) -> None:
        if mode != "interpreted":
            self._match = compile_row_matcher(self._predicate)

    def _emit_row(self, row: Any, context: MapContext) -> None:
        group = row[self._group_by] if self._group_by is not None else None
        value = float(row[self._spec.column]) if self._spec.column is not None else 0.0
        context.emit(group, value)

    def map(self, key: Any, value: Any, context: MapContext) -> None:
        if self._match(value):
            self._emit_row(value, context)

    def run_batch(self, batch, context: MapContext) -> bool:
        if self._batch_matcher is None:
            self._batch_matcher = compile_batch_matcher(self._predicate)
        hits: list[int] = []
        scanned = self._batch_matcher(
            batch.columns, batch.start, batch.stop, None, hits.append
        )
        context.records_read += scanned
        group_col = (
            batch.columns[self._group_by] if self._group_by is not None else None
        )
        value_col = (
            batch.columns[self._spec.column] if self._spec.column is not None else None
        )
        for index in hits:
            group = group_col[index] if group_col is not None else None
            value = float(value_col[index]) if value_col is not None else 0.0
            context.emit(group, value)
        return False


class ApproxAggregationReducer(Reducer):
    """Fold each group's emitted values into exact sample totals."""

    def reduce(self, key: Any, values: list, context: ReduceContext) -> None:
        context.emit(key, {"count": len(values), "sum": sum(values)})


def make_approx_conf(
    *,
    name: str,
    input_path: str,
    predicate: Predicate,
    aggregate: AggregateSpec | str,
    error_pct: float,
    confidence_pct: float = 95.0,
    group_by: str | None = None,
    policy_name: str = "LA",
    provider_name: str = "accuracy",
    fallback_selectivity: float | None = None,
    user: str = "default",
) -> JobConf:
    """An error-bounded aggregation job over the accuracy provider.

    Always dynamic: the whole point is stopping early once the interval
    is tight. ``fallback_selectivity`` serves profile-only simulation
    splits exactly as in :func:`make_scan_conf` (ungrouped COUNT only —
    profiles carry no values to aggregate).
    """
    spec = (
        aggregate if isinstance(aggregate, AggregateSpec)
        else AggregateSpec.parse(aggregate)
    )
    if error_pct <= 0:
        raise JobConfError(f"error_pct must be positive, got {error_pct}")
    conf = JobConf(
        name=name,
        input_path=input_path,
        mapper_factory=lambda: ApproxAggregationMapper(predicate, spec, group_by),
        reducer_factory=ApproxAggregationReducer,
        num_reduce_tasks=1,
        profile_outputs=_approx_profile(predicate, fallback_selectivity),
        user=user,
        predicate=predicate,
    )
    conf.set(SAMPLING_PREDICATE, predicate.name)
    conf.set(APPROX_AGGREGATE, spec.serialize())
    if group_by is not None:
        conf.set(APPROX_GROUP_BY, group_by)
    conf.set(ERROR_PCT, error_pct)
    conf.set(ERROR_CONFIDENCE, confidence_pct)
    conf.set(DYNAMIC_JOB, "true")
    conf.set(DYNAMIC_JOB_POLICY, policy_name)
    conf.set(DYNAMIC_INPUT_PROVIDER, provider_name)
    return conf


def _approx_profile(predicate: Predicate, fallback_selectivity: float | None):
    """Profile-mode map output: every match in the split, uncapped."""

    def outputs(split: InputSplit) -> int:
        return _split_matches(
            split, predicate, fallback_selectivity=fallback_selectivity
        )

    return outputs


def finalize_rows(
    output_data: list[tuple[Any, Any]] | None, approx: dict
) -> list[dict]:
    """Join reducer totals with the provider's estimates into answer rows.

    Cross-checks that both paths saw the same data: the reducer's exact
    per-group ``{count, sum}`` over scanned splits must equal the
    estimator's ``sample_count`` / ``sample_sum``. A mismatch means a
    split was dropped or double-counted somewhere between the map output
    and the provider's observe hook — an integration bug worth a crash.
    """
    reduced: dict[str, dict] = {}
    for group, totals in output_data or []:
        reduced[str(group)] = totals
    rows: list[dict] = []
    for entry in approx["groups"]:
        key = str(entry["group"])
        totals = reduced.pop(key, None)
        if totals is not None:
            if totals["count"] != entry["sample_count"] or not math.isclose(
                totals["sum"], entry["sample_sum"], rel_tol=1e-9, abs_tol=1e-9
            ):
                raise JobError(
                    f"approx group {key!r}: reducer saw "
                    f"({totals['count']}, {totals['sum']}) but the estimator "
                    f"observed ({entry['sample_count']}, {entry['sample_sum']})"
                )
        elif output_data is not None and entry["sample_count"] > 0:
            raise JobError(
                f"approx group {key!r}: estimator observed "
                f"{entry['sample_count']} matches the reducer never saw"
            )
        rows.append(
            {
                "group": entry["group"],
                "aggregate": approx["aggregate"],
                "estimate": entry["estimate"],
                "half_width": entry["half_width"],
                "confidence_pct": approx["confidence_pct"],
                "n_splits": entry["n_splits"],
                "total_splits": approx["total_splits"],
                "method": entry["method"],
            }
        )
    if reduced:
        raise JobError(
            f"approx: reducer produced groups the estimator never observed: "
            f"{sorted(reduced)}"
        )
    return rows
