"""The accuracy-aware Input Provider (ROADMAP item 2, EARL-style).

A sibling of :class:`~repro.core.sampling_provider.SamplingInputProvider`
whose stopping rule is statistical instead of cardinal: the job ends not
when *k* matching rows exist but when every aggregate group's confidence
interval is tight enough — half-width within ``sampling.error.pct``
percent of the estimate at ``sampling.error.confidence`` percent
confidence. Everything else reuses the paper's machinery unchanged:
policy GrabLimit caps every grab, the WorkThreshold gates evaluations,
and splits are drawn uniformly at random so the scanned prefix stays a
valid cluster sample.

Decision procedure at each evaluation point:

1. If every group meets the error target (with at least a minimum number
   of observed splits, so a lucky two-split agreement cannot stop the
   job), END_OF_INPUT.
2. If no unprocessed splits remain, END_OF_INPUT — the answer becomes
   exact once the in-flight work lands.
3. If work is still pending, NO_INPUT_AVAILABLE — per-split totals from
   those maps are exactly the information the next decision needs.
4. Otherwise project how many more splits shrink the worst group's
   half-width to the target (SE scales ~ 1/sqrt(m)) and grab that many,
   capped by the policy GrabLimit.
"""

from __future__ import annotations

import math

from repro.approx.estimators import (
    BOOTSTRAP_MIN_SPLITS,
    AggregateEstimator,
    AggregateSpec,
    GroupEstimate,
)
from repro.core.input_provider import InputProvider, ProviderResponse
from repro.core.protocol import ClusterStatus, JobProgress
from repro.engine.jobconf import APPROX_AGGREGATE, APPROX_GROUP_BY
from repro.errors import InputProviderError

#: Never declare the target met before observing this many splits (or
#: the whole input, if smaller). Below it the interval estimates are too
#: fragile to certify anything.
MIN_SPLITS_TO_STOP = BOOTSTRAP_MIN_SPLITS


class AccuracyProvider(InputProvider):
    """Input Provider that stops on CI half-width <= error target."""

    def on_initialize(self) -> None:
        error_pct = self.conf.error_pct
        if error_pct is None:
            raise InputProviderError(
                f"accuracy job {self.conf.name!r} must set a positive "
                "sampling.error.pct parameter"
            )
        aggregate = self.conf.get(APPROX_AGGREGATE)
        if not aggregate:
            raise InputProviderError(
                f"accuracy job {self.conf.name!r} must set {APPROX_AGGREGATE}"
            )
        self._spec = AggregateSpec.parse(aggregate)
        self._group_by = self.conf.get(APPROX_GROUP_BY) or None
        self._target_pct = error_pct
        # The complete input is the population; captured before any grab.
        total = self.remaining_splits
        if total <= 0:
            raise InputProviderError(
                f"accuracy job {self.conf.name!r} has no input splits"
            )
        self._estimator = AggregateEstimator(
            self._spec,
            total_splits=total,
            confidence_pct=self.conf.error_confidence,
        )
        self._min_splits = min(total, MIN_SPLITS_TO_STOP)

    # ------------------------------------------------------------------
    @property
    def spec(self) -> AggregateSpec:
        return self._spec

    @property
    def estimator(self) -> AggregateEstimator:
        return self._estimator

    @property
    def target_pct(self) -> float:
        return self._target_pct

    # ------------------------------------------------------------------
    # Observation: per-split aggregate totals
    # ------------------------------------------------------------------
    def observe_split(
        self,
        split_id: str,
        *,
        records: int,
        outputs: int,
        rows: list | None = None,
    ) -> None:
        """Fold one finished map task's output into the estimator.

        ``rows`` are the task's map outputs — ``(group_key, value)``
        pairs emitted by the approx mapper for each matching record.
        Counter-only substrates (the simulator in profile mode) pass
        ``None``; that suffices for ungrouped COUNT, where the match
        count is the whole observation.
        """
        if rows is None:
            if self._spec.needs_values or self._group_by is not None:
                raise InputProviderError(
                    f"{self._spec} with group_by={self._group_by!r} needs "
                    "materialized map outputs; this substrate only reports "
                    "counters (ungrouped COUNT(*) is the supported shape)"
                )
            self._estimator.observe_split(split_id, {None: (outputs, 0.0)})
            return
        stats: dict[object, tuple[int, float]] = {}
        for group, value in rows:
            count, total = stats.get(group, (0, 0.0))
            stats[group] = (count + 1, total + float(value))
        self._estimator.observe_split(split_id, stats)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, progress: JobProgress, cluster: ClusterStatus
    ) -> ProviderResponse:
        # (1) Statistical stop: every group inside the error target.
        if self.target_met:
            return ProviderResponse.end_of_input()

        # (2) Exhaustion: nothing left to grab; in-flight maps complete
        # the full scan and the answer becomes exact.
        if self.remaining_splits == 0:
            return ProviderResponse.end_of_input()

        # (3) In-flight work carries the very observations that will
        # tighten the interval; decide again once it lands.
        if progress.splits_pending > 0:
            return ProviderResponse.no_input()

        # (4) Project the shortfall in observed splits and grab.
        limit = self.grab_limit(cluster)
        if limit <= 0:
            return ProviderResponse.no_input()
        take = min(self._needed_splits(), limit)
        chosen = self.take_all() if math.isinf(take) else self.take_random(take)
        if not chosen:
            return ProviderResponse.no_input()
        return ProviderResponse.input_available(chosen)

    @property
    def target_met(self) -> bool:
        """Whether the stopping rule is satisfied right now."""
        if self._estimator.observed_splits < self._min_splits:
            return False
        return self._estimator.all_met(self._target_pct)

    def _needed_splits(self) -> float:
        """Estimated additional splits to close the worst group's gap.

        Standard error scales ~ sqrt((1/m - 1/N)); inverting that model
        for the target half-width gives the projected total
        ``m' = 1 / ((target/h)^2 * (1/m - 1/N) + 1/N)``. Keeping the
        finite-population correction in the inversion matters: near
        exhaustion the FPC shrinks the interval quickly, and the
        FPC-free projection ``m * (h/target)^2`` would routinely demand
        the whole input when a modest prefix suffices. Unknowable gaps
        (no interval yet) leave the need unbounded, so the GrabLimit
        alone governs growth — exactly the uninformed mode of the
        sampling provider.
        """
        m = self._estimator.observed_splits
        if m < self._min_splits:
            # Not allowed to stop yet: at minimum reach the floor.
            return float(self._min_splits - m)
        worst = self._estimator.worst(self._target_pct)
        if worst is None or worst.estimate is None or worst.half_width is None:
            return math.inf
        if worst.estimate == 0.0:
            return math.inf
        target = abs(worst.estimate) * (self._target_pct / 100.0)
        if target <= 0 or worst.half_width <= 0:
            return math.inf
        n = self._estimator.total_splits
        inv_ratio = target / worst.half_width  # < 1 while unmet
        coeff = inv_ratio * inv_ratio * max(0.0, 1.0 / m - 1.0 / n)
        if coeff <= 0:
            return math.inf
        needed_total = min(n, math.ceil(1.0 / (coeff + 1.0 / n)))
        return float(max(1, needed_total - m))

    # ------------------------------------------------------------------
    # Reporting: trace CI state and final summary
    # ------------------------------------------------------------------
    @property
    def ci_state(self) -> dict:
        """JSON-safe snapshot of the interval driving the stopping rule.

        Attached to every ``provider_evaluation`` trace event; the audit
        layer replays the stopping invariant from exactly these fields.
        Reports the *worst* group — the one the stopping rule waits on.
        """
        worst = self._estimator.worst(self._target_pct)
        state = {
            "aggregate": self._spec.serialize(),
            "n": self._estimator.observed_splits,
            "target_pct": self._target_pct,
            "confidence_pct": self._estimator.confidence_pct,
            "met": self.target_met,
            "estimate": None,
            "half_width": None,
        }
        if worst is not None:
            state["estimate"] = _json_safe(worst.estimate)
            state["half_width"] = _json_safe(worst.half_width)
            if self._group_by is not None:
                state["group"] = str(worst.group)
        return state

    def approx_summary(self) -> dict:
        """Final per-group answer attached to the JobResult."""
        return {
            "aggregate": self._spec.serialize(),
            "group_by": self._group_by,
            "error_pct": self._target_pct,
            "confidence_pct": self._estimator.confidence_pct,
            "observed_splits": self._estimator.observed_splits,
            "total_splits": self._estimator.total_splits,
            "target_met": self.target_met,
            "groups": [_group_dict(est) for est in self._estimator.estimates()],
        }


def _json_safe(value: float | None) -> float | None:
    if value is None or not math.isfinite(value):
        return None
    return value


def _group_dict(est: GroupEstimate) -> dict:
    return {
        "group": est.group,
        "estimate": _json_safe(est.estimate),
        "half_width": _json_safe(est.half_width),
        "n_splits": est.n_splits,
        "sample_count": est.sample_count,
        "sample_sum": est.sample_sum,
        "method": est.method,
    }
