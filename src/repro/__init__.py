"""repro — a reproduction of *Extending Map-Reduce for Efficient
Predicate-Based Sampling* (Raman Grover & Michael J. Carey, ICDE 2012).

The package implements the paper's incremental-job-expansion mechanism
(Input Providers + growth policies) on top of a from-scratch MapReduce
stack with two execution substrates:

* :class:`repro.LocalRunner` — real in-process execution over
  materialized data (correctness).
* :class:`repro.SimulatedCluster` — a discrete-event Hadoop-cluster model
  at paper scale (performance experiments).

Quick start::

    from repro import (SimulatedCluster, build_profiled_dataset,
                       dataset_spec_for_scale, predicate_for_skew,
                       make_sampling_conf)

    pred = predicate_for_skew(1)
    data = build_profiled_dataset(dataset_spec_for_scale(5), {pred: 1.0})
    cluster = SimulatedCluster.paper_cluster()
    cluster.load_dataset("/data/lineitem_5x", data)
    conf = make_sampling_conf(name="sample", input_path="/data/lineitem_5x",
                              predicate=pred, sample_size=10_000,
                              policy_name="LA")
    result = cluster.run_job(conf)
    print(f"{result.response_time:.0f}s over {result.splits_processed} partitions")
"""

from repro.cluster import ClusterTopology, CostModel, paper_topology
from repro.core import (
    InputProvider,
    Policy,
    PolicyRegistry,
    ProviderResponse,
    ResponseKind,
    SamplingInputProvider,
    SamplingMapper,
    SamplingReducer,
    SelectivityEstimator,
    StaticInputProvider,
    make_sampling_conf,
    make_scan_conf,
    paper_policies,
)
from repro.data import (
    LINEITEM_SCHEMA,
    LineItemGenerator,
    MarkerEquals,
    Predicate,
    ZipfDistribution,
    build_materialized_dataset,
    build_profiled_dataset,
    dataset_spec_for_scale,
    place_matches,
    predicate_for_skew,
)
from repro.dfs import DistributedFileSystem, InputSplit
from repro.engine import (
    JobConf,
    JobResult,
    LocalRunner,
    Mapper,
    Reducer,
    SimulatedCluster,
)
from repro.errors import ReproError
from repro.sim import RandomSource, Simulator

__version__ = "1.0.0"

__all__ = [
    "ClusterTopology",
    "CostModel",
    "DistributedFileSystem",
    "InputProvider",
    "InputSplit",
    "JobConf",
    "JobResult",
    "LINEITEM_SCHEMA",
    "LineItemGenerator",
    "LocalRunner",
    "Mapper",
    "MarkerEquals",
    "Policy",
    "PolicyRegistry",
    "Predicate",
    "ProviderResponse",
    "RandomSource",
    "Reducer",
    "ReproError",
    "ResponseKind",
    "SamplingInputProvider",
    "SamplingMapper",
    "SamplingReducer",
    "SelectivityEstimator",
    "SimulatedCluster",
    "Simulator",
    "StaticInputProvider",
    "ZipfDistribution",
    "build_materialized_dataset",
    "build_profiled_dataset",
    "dataset_spec_for_scale",
    "make_sampling_conf",
    "make_scan_conf",
    "paper_policies",
    "paper_topology",
    "place_matches",
    "predicate_for_skew",
]
