"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=0,
    max_size=60,
)


class TestEventOrdering:
    @given(delays=delays)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    def test_every_live_event_fires_exactly_once(self, delays):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, fired.append, index)
        sim.run()
        assert sorted(fired) == list(range(len(delays)))

    @given(delays=delays, cancel_mask=st.lists(st.booleans(), min_size=0, max_size=60))
    def test_cancelled_events_never_fire(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(delay, fired.append, index)
            for index, delay in enumerate(delays)
        ]
        cancelled = set()
        for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
            if cancel:
                handle.cancel()
                cancelled.add(index)
        sim.run()
        assert set(fired) == set(range(len(delays))) - cancelled

    @given(delays=delays, until=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=50)
    def test_run_until_is_a_clean_partition(self, delays, until):
        """Events at t <= until fire in the first run; the rest fire later."""
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=until)
        early = list(fired)
        assert all(d <= until for d in early)
        sim.run()
        late = fired[len(early):]
        assert all(d >= until for d in late)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_nested_scheduling_preserves_order(self, delays):
        """Callbacks that schedule further events keep global time order."""
        sim = Simulator()
        fired = []

        def chain(remaining):
            fired.append(sim.now)
            if remaining:
                sim.schedule(remaining[0], chain, remaining[1:])

        sim.schedule(delays[0], chain, delays[1:])
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
