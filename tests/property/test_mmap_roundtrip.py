"""Property tests for the RCS1 mmap layout (satellite: any schema and
row set — NULLs, empty strings, unicode included — must encode, map, and
decode back byte-identically, and the three scan modes must agree on
mmap-backed datasets exactly as they do on the in-memory layouts).
"""

import itertools
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scan.mmapstore import (
    MmapDataset,
    MmapDatasetWriter,
    encode_partition,
)

_TMPDIR = Path(tempfile.mkdtemp(prefix="repro_mmap_prop_"))
_file_seq = itertools.count()

_INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_FLOATS = st.floats(allow_nan=False)  # NaN != NaN breaks value equality
_TEXT = st.text(max_size=40)  # includes "", surrogates excluded by default

_VALUE_STRATEGIES = {
    "i": st.one_of(st.none(), _INT64),
    "f": st.one_of(st.none(), _FLOATS),
    "b": st.one_of(st.none(), st.booleans()),
    "s": st.one_of(st.none(), _TEXT),
}

_NAME = st.from_regex(r"[a-z_][a-z0-9_]{0,11}", fullmatch=True)


@st.composite
def tables(draw):
    names = draw(
        st.lists(_NAME, min_size=1, max_size=6, unique=True)
    )
    types = [draw(st.sampled_from("ifbs")) for _ in names]
    row_count = draw(st.integers(min_value=0, max_value=50))
    columns = {
        name: draw(
            st.lists(
                _VALUE_STRATEGIES[code], min_size=row_count, max_size=row_count
            )
        )
        for name, code in zip(names, types)
    }
    return tuple(names), tuple(types), columns, row_count


class TestRoundTrip:
    @given(table=tables())
    @settings(max_examples=60, deadline=None)
    def test_values_survive_encode_mmap_decode(self, table):
        names, types, columns, row_count = table
        path = _TMPDIR / f"t{next(_file_seq)}.rcs"
        with MmapDatasetWriter(path, names, types, meta={"n": row_count}) as writer:
            writer.write_partition(columns, row_count)
        ds = MmapDataset(path)
        assert ds.names == names
        assert ds.types == types
        assert ds.num_rows == row_count
        store = ds.partition_store(0)
        for name in names:
            decoded = store.columns[name]
            assert len(decoded) == row_count
            assert list(decoded) == columns[name]
            assert [decoded[i] for i in range(row_count)] == columns[name]
        ds.close()
        path.unlink()

    @given(table=tables())
    @settings(max_examples=40, deadline=None)
    def test_reencoding_decoded_values_is_byte_identical(self, table):
        """Decode loses nothing: re-encoding the decoded columns yields
        the exact original region bytes (float bit patterns included)."""
        names, types, columns, row_count = table
        original = encode_partition(names, types, columns, row_count)
        path = _TMPDIR / f"t{next(_file_seq)}.rcs"
        with MmapDatasetWriter(path, names, types) as writer:
            writer.write_partition(columns, row_count)
        store = MmapDataset(path).partition_store(0)
        decoded = {name: list(store.columns[name]) for name in names}
        assert encode_partition(names, types, decoded, row_count) == original
        path.unlink()

    @given(
        chunks=st.lists(
            st.lists(st.one_of(st.none(), _INT64), max_size=20),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_partitioning_is_invisible_to_readers(self, chunks):
        """The same values written as one partition or many read back
        identically — partition boundaries are a physical detail."""
        flat = [value for chunk in chunks for value in chunk]
        one = _TMPDIR / f"t{next(_file_seq)}_one.rcs"
        many = _TMPDIR / f"t{next(_file_seq)}_many.rcs"
        with MmapDatasetWriter(one, ("a",), ("i",)) as writer:
            writer.write_partition({"a": flat}, len(flat))
        with MmapDatasetWriter(many, ("a",), ("i",)) as writer:
            for chunk in chunks:
                writer.write_partition({"a": chunk}, len(chunk))
        ds_one, ds_many = MmapDataset(one), MmapDataset(many)
        assert ds_one.num_rows == ds_many.num_rows == len(flat)
        gathered = [
            value
            for index in range(ds_many.num_partitions)
            for value in ds_many.partition_store(index).columns["a"]
        ]
        assert gathered == list(ds_one.partition_store(0).columns["a"]) == flat
        one.unlink()
        many.unlink()


class TestScanModeParityOnMmap:
    @given(
        partitions=st.integers(min_value=1, max_value=6),
        selectivity=st.sampled_from([0.0, 0.005, 0.05]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_three_modes_agree_on_mmap_layout(
        self, partitions, selectivity, seed
    ):
        from repro.cluster import paper_topology
        from repro.core.sampling_job import make_scan_conf
        from repro.data.datasets import (
            build_materialized_dataset,
            dataset_spec_for_scale,
        )
        from repro.data.predicates import predicate_for_skew
        from repro.dfs import DistributedFileSystem
        from repro.scan.engine import SCAN_MODES, ScanOptions, run_map_task

        predicate = predicate_for_skew(0)
        rows = partitions * 250
        spec = dataset_spec_for_scale(
            rows / 6_000_000, num_partitions=partitions
        )
        path = _TMPDIR / f"parity{next(_file_seq)}.rcs"
        dataset = build_materialized_dataset(
            spec,
            {predicate: 0.0},
            seed=seed,
            selectivity=selectivity,
            layout="mmap",
            mmap_path=str(path),
        )
        dfs = DistributedFileSystem(paper_topology().storage_locations())
        dfs.write_dataset("/t", dataset)
        splits = dfs.open_splits("/t")
        conf = make_scan_conf(
            name="q", input_path="/t", predicate=predicate,
            columns=("l_orderkey", "l_quantity"),
        )
        outcomes = []
        for mode in SCAN_MODES:
            contexts = [
                run_map_task(conf, split, ScanOptions(mode=mode))
                for split in splits
            ]
            outcomes.append(
                (
                    [c.records_read for c in contexts],
                    [c.outputs for c in contexts],
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]
        path.unlink()
