"""Property-based tests for engine data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SelectivityEstimator
from repro.data.datasets import PartitionData
from repro.dfs.block import Block, StorageLocation
from repro.dfs.namenode import normalize_path
from repro.dfs.split import InputSplit
from repro.engine.shuffle import group_outputs
from repro.engine.task import MapTask, PendingTaskQueue


def make_split(index: int, node: str) -> InputSplit:
    payload = PartitionData(index=index, num_records=10, num_bytes=1000)
    block = Block(
        block_id=f"b{index}",
        file_path="/f",
        index=index,
        num_bytes=1000,
        location=StorageLocation(node, 0),
        payload=payload,
    )
    return InputSplit(split_id=f"/f:{index}", block=block)


class TestPendingQueueModel:
    """Model-based test: the queue against a reference implementation."""

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("add"), st.integers(0, 9)),        # node id
                st.tuples(st.just("pop_local"), st.integers(0, 9)),
                st.tuples(st.just("pop_any"), st.just(0)),
            ),
            min_size=0,
            max_size=80,
        )
    )
    @settings(max_examples=100)
    def test_against_reference_model(self, ops):
        queue = PendingTaskQueue()
        reference: list[MapTask] = []  # FIFO of unclaimed tasks
        counter = 0
        for op, arg in ops:
            if op == "add":
                counter += 1
                task = MapTask(
                    task_id=f"t{counter}",
                    job_id="j",
                    split=make_split(counter, f"node{arg}"),
                )
                queue.add(task)
                reference.append(task)
            elif op == "pop_local":
                node = f"node{arg}"
                expected = next(
                    (t for t in reference if t.split.location.node_id == node),
                    None,
                )
                actual = queue.pop_local(node)
                assert actual is expected
                if expected is not None:
                    reference.remove(expected)
            else:  # pop_any
                expected = reference[0] if reference else None
                actual = queue.pop_any()
                assert actual is expected
                if expected is not None:
                    reference.remove(expected)
            assert len(queue) == len(reference)
            assert queue.empty == (not reference)


class TestShuffleProperties:
    pairs = st.lists(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)),
            min_size=0,
            max_size=20,
        ),
        min_size=0,
        max_size=8,
    )

    @given(task_outputs=pairs)
    def test_grouping_preserves_every_value(self, task_outputs):
        grouped = group_outputs(task_outputs)
        flat_in = sorted(
            (key, value) for outputs in task_outputs for key, value in outputs
        )
        flat_out = sorted(
            (key, value) for key, values in grouped for value in values
        )
        assert flat_in == flat_out

    @given(task_outputs=pairs)
    def test_keys_unique_and_sorted(self, task_outputs):
        grouped = group_outputs(task_outputs)
        keys = [key for key, _values in grouped]
        assert len(keys) == len(set(keys))
        assert keys == sorted(keys, key=str)


class TestSelectivityEstimatorProperties:
    @given(
        steps=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
            min_size=1,
            max_size=20,
        )
    )
    def test_estimate_stays_a_probability(self, steps):
        estimator = SelectivityEstimator()
        records, matches = 0, 0
        for record_increment, match_increment in steps:
            records += record_increment
            matches += min(match_increment, record_increment)
            estimator.observe_totals(records, matches)
            estimate = estimator.estimate
            if records == 0:
                assert estimate is None
            else:
                assert 0.0 <= estimate <= 1.0

    @given(
        records=st.integers(1, 10**9),
        matches=st.integers(0, 10**9),
        needed=st.floats(min_value=0.001, max_value=1e6),
    )
    def test_records_needed_round_trips(self, records, matches, needed):
        matches = min(matches, records)
        estimator = SelectivityEstimator()
        estimator.observe_totals(records, matches)
        projected = estimator.records_needed(needed)
        if matches > 0:
            # Processing that many records is expected to yield >= needed.
            assert estimator.expected_matches(int(projected) + 1) >= needed * 0.999


class TestPathProperties:
    segments = st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=5,
    )

    @given(segments=segments, extra_slashes=st.integers(0, 3))
    def test_normalize_is_idempotent(self, segments, extra_slashes):
        raw = ("/" * extra_slashes) + "/".join(segments)
        once = normalize_path(raw)
        assert normalize_path(once) == once
        assert once.startswith("/")
        assert "//" not in once
