"""Property-based tests for grab-limit expressions and policy.xml."""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GrabLimitExpression,
    Policy,
    PolicyRegistry,
    dump_policies,
    load_policies,
    paper_policies,
)

slot_counts = st.integers(min_value=0, max_value=10_000)


# Recursive generator of syntactically valid grab-limit expressions.
def expressions():
    atoms = st.sampled_from(["TS", "AS", "1", "2", "0.5", "0.1", "infinity"])

    def extend(children):
        binary = st.tuples(children, st.sampled_from(["+", "*"]), children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        )
        call = st.tuples(st.sampled_from(["max", "min"]), children, children).map(
            lambda t: f"{t[0]}({t[1]}, {t[2]})"
        )
        conditional = st.tuples(
            children, st.sampled_from([">", ">=", "<", "<="]), children,
            children, children,
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]} ? {t[3]} : {t[4]})")
        return st.one_of(binary, call, conditional)

    return st.recursive(atoms, extend, max_leaves=8)


class TestGrabLimitExpressionProperties:
    @given(source=expressions(), ts=slot_counts, available=slot_counts)
    @settings(max_examples=200)
    def test_valid_expressions_always_evaluate(self, source, ts, available):
        from repro.errors import PolicyError

        try:
            expr = GrabLimitExpression(source)
            value = expr.evaluate(ts=ts, available=available)
        except PolicyError:
            # Degenerate values (e.g. infinity * 0 -> NaN) are rejected
            # loudly, never returned.
            return
        assert isinstance(value, float)
        assert not math.isnan(value)

    @given(source=expressions())
    @settings(max_examples=100)
    def test_parsing_is_deterministic(self, source):
        from repro.errors import PolicyError

        a = GrabLimitExpression(source)
        b = GrabLimitExpression(source)
        for ts, available in ((1, 0), (40, 7), (160, 160)):
            try:
                expected = a.evaluate(ts=ts, available=available)
            except PolicyError:
                with pytest.raises(PolicyError):
                    b.evaluate(ts=ts, available=available)
                continue
            assert expected == b.evaluate(ts=ts, available=available)

    @given(ts=st.integers(min_value=1, max_value=10_000), available=slot_counts)
    def test_paper_grab_limits_are_non_negative(self, ts, available):
        available = min(available, ts)
        for policy in paper_policies():
            grab = policy.max_grab(total_slots=ts, available_slots=available)
            assert grab >= 0
            if not math.isinf(grab):
                assert grab == int(grab)

    @given(ts=st.integers(min_value=1, max_value=10_000), available=slot_counts)
    def test_max_grab_positive_implies_expression_positive(self, ts, available):
        available = min(available, ts)
        for policy in paper_policies():
            raw = policy.grab_limit.evaluate(ts=ts, available=available)
            grab = policy.max_grab(total_slots=ts, available_slots=available)
            if raw > 0:
                assert grab >= 1  # ceil: entitlement is never rounded away
            else:
                assert grab == 0


class TestPolicyFileRoundTrip:
    @given(
        sources=st.lists(expressions(), min_size=1, max_size=5, unique=True),
        thresholds=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=5,
            max_size=5,
        ),
    )
    @settings(max_examples=30)
    def test_arbitrary_catalogue_round_trips(self, sources, thresholds, tmp_path_factory):
        registry = PolicyRegistry()
        for index, source in enumerate(sources):
            registry.register(
                Policy(
                    name=f"p{index}",
                    description=f"generated #{index}",
                    work_threshold_pct=thresholds[index % len(thresholds)],
                    grab_limit=GrabLimitExpression(source),
                )
            )
        path = tmp_path_factory.mktemp("policies") / "policy.xml"
        dump_policies(registry, path)
        loaded = load_policies(path)
        assert set(loaded.names()) == set(registry.names())
        from repro.errors import PolicyError

        for name in registry.names():
            original, reloaded = registry.get(name), loaded.get(name)
            assert original.work_threshold_pct == reloaded.work_threshold_pct
            for ts, available in ((1, 0), (40, 13), (160, 160)):
                try:
                    expected = original.grab_limit.evaluate(ts=ts, available=available)
                except PolicyError:
                    with pytest.raises(PolicyError):
                        reloaded.grab_limit.evaluate(ts=ts, available=available)
                    continue
                assert expected == reloaded.grab_limit.evaluate(
                    ts=ts, available=available
                )
