"""Property-based tests for the Zipf distribution and match placement."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ZipfDistribution, place_matches

n_values = st.integers(min_value=1, max_value=200)
z_values = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
totals = st.integers(min_value=0, max_value=100_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestZipfProperties:
    @given(n=n_values, z=z_values)
    def test_pmf_is_a_distribution(self, n, z):
        zipf = ZipfDistribution(n, z)
        pmf = zipf.pmf_vector()
        assert np.all(pmf >= 0)
        assert abs(pmf.sum() - 1.0) < 1e-9

    @given(n=n_values, z=z_values)
    def test_pmf_non_increasing_in_rank(self, n, z):
        pmf = ZipfDistribution(n, z).pmf_vector()
        assert np.all(np.diff(pmf) <= 1e-12)

    @given(n=n_values, z=z_values, total=totals)
    def test_expected_counts_sum_exactly(self, n, z, total):
        counts = ZipfDistribution(n, z).expected_counts(total)
        assert counts.sum() == total
        assert np.all(counts >= 0)

    @given(n=n_values, z=z_values, total=totals, seed=seeds)
    @settings(max_examples=50)
    def test_multinomial_counts_sum_exactly(self, n, z, total, seed):
        counts = ZipfDistribution(n, z).sample_counts(total, random.Random(seed))
        assert counts.sum() == total
        assert np.all(counts >= 0)

    @given(n=st.integers(min_value=2, max_value=100), seed=seeds)
    @settings(max_examples=50)
    def test_sample_rank_within_population(self, n, seed):
        zipf = ZipfDistribution(n, 1.0)
        rng = random.Random(seed)
        assert all(1 <= zipf.sample_rank(rng) <= n for _ in range(100))


class TestPlacementProperties:
    @given(
        partitions=st.integers(min_value=1, max_value=100),
        total=st.integers(min_value=0, max_value=50_000),
        z=z_values,
        seed=seeds,
    )
    @settings(max_examples=50)
    def test_placement_invariants(self, partitions, total, z, seed):
        placement = place_matches(partitions, total, z, random.Random(seed))
        # Mass conservation.
        assert placement.counts.sum() == total
        # Ranks form a permutation of 1..N.
        assert sorted(placement.rank_of_partition.tolist()) == list(
            range(1, partitions + 1)
        )
        # Sorted-by-rank view is a permutation of the counts.
        assert sorted(placement.sorted_counts().tolist()) == sorted(
            placement.counts.tolist()
        )
        # Gini stays in [0, 1).
        assert 0.0 <= placement.gini() < 1.0

    @given(
        partitions=st.integers(min_value=1, max_value=100),
        total=st.integers(min_value=0, max_value=50_000),
        z=z_values,
        seed=seeds,
    )
    @settings(max_examples=50)
    def test_expected_placement_head_dominates(self, partitions, total, z, seed):
        placement = place_matches(
            partitions, total, z, random.Random(seed), method="expected"
        )
        ordered = placement.sorted_counts()
        assert all(ordered[i] >= ordered[i + 1] for i in range(partitions - 1))
