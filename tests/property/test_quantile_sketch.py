"""Property-based tests for the mergeable quantile sketch.

The telemetry hub merges per-worker and per-task sketches freely, so the
merge operation must be order-independent and the merged sketch must
answer exactly what a single sketch observing the whole stream would.
The rank-error contract is the log-bucket guarantee: a reported quantile
and the true sample quantile always share a bucket, so their ratio is
bounded by one bucket width (``10 ** (1 / BUCKETS_PER_DECADE)``).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import BUCKETS_PER_DECADE, SNAPSHOT_QUANTILES
from repro.obs.timeseries import QuantileSketch

#: One log-bucket width; estimate and truth always share a bucket.
BUCKET_FACTOR = 10.0 ** (1.0 / BUCKETS_PER_DECADE) * (1.0 + 1e-9)

positive_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

any_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=1.0)


def sketch_of(values) -> QuantileSketch:
    sketch = QuantileSketch("s")
    for value in values:
        sketch.observe(value)
    return sketch


def state(sketch: QuantileSketch) -> tuple:
    """The mergeable state, excluding the float-summed total."""
    return (
        sketch.count,
        sketch.min,
        sketch.max,
        sketch.underflow,
        dict(sketch.buckets),
    )


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(a=any_values, b=any_values)
    def test_commutative(self, a, b):
        ab = sketch_of(a).merge(sketch_of(b))
        ba = sketch_of(b).merge(sketch_of(a))
        assert state(ab) == state(ba)
        assert math.isclose(ab.total, ba.total, rel_tol=1e-12, abs_tol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(a=any_values, b=any_values, c=any_values)
    def test_associative(self, a, b, c):
        left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
        right = sketch_of(a).merge(sketch_of(b).merge(sketch_of(c)))
        assert state(left) == state(right)
        # Float summation order differs, so totals agree only to rounding.
        assert math.isclose(left.total, right.total, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values=any_values, cut=st.integers(min_value=0, max_value=200))
    def test_merge_equals_direct_observation(self, values, cut):
        cut = min(cut, len(values))
        merged = sketch_of(values[:cut]).merge(sketch_of(values[cut:]))
        direct = sketch_of(values)
        assert state(merged) == state(direct)
        for _key, q in SNAPSHOT_QUANTILES:
            assert merged.quantile(q) == direct.quantile(q)


class TestRankError:
    @settings(max_examples=50, deadline=None)
    @given(values=positive_values, q=quantiles)
    def test_quantile_within_one_bucket_of_truth(self, values, q):
        sketch = sketch_of(values)
        estimate = sketch.quantile(q)
        rank = max(1, math.ceil(q * len(values)))
        truth = sorted(values)[rank - 1]
        assert estimate is not None
        assert truth / BUCKET_FACTOR <= estimate <= truth * BUCKET_FACTOR

    @settings(max_examples=50, deadline=None)
    @given(values=any_values, q=quantiles)
    def test_quantile_clamped_to_observed_range(self, values, q):
        sketch = sketch_of(values)
        estimate = sketch.quantile(q)
        if not values:
            assert estimate is None
        else:
            assert min(values) <= estimate <= max(values)


class TestEdges:
    def test_empty_sketch(self):
        sketch = QuantileSketch("s")
        assert sketch.quantile(0.5) is None
        assert sketch.quantiles() == {"p50": None, "p95": None, "p99": None}
        # Merging an empty sketch is the identity.
        other = sketch_of([1.0, 2.0])
        assert state(other.merge(QuantileSketch("e"))) == state(sketch_of([1.0, 2.0]))

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        q=quantiles,
    )
    def test_single_value_answers_exactly(self, value, q):
        # min == max, so clamping collapses every quantile to the value.
        assert sketch_of([value]).quantile(q) == value
