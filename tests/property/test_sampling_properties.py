"""Property-based tests on the core sampling invariants, end to end.

These run the real LocalRunner over materialized data generated with
arbitrary (bounded) parameters and check the contract of predicate-based
sampling:

* the sample contains exactly ``min(k, total matches)`` rows;
* every sampled row satisfies the predicate;
* a dynamic job never fabricates output a full scan would not produce.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import LocalRunner, make_sampling_conf
from repro.cluster import paper_topology
from repro.data import build_materialized_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.dfs import DistributedFileSystem
from repro.errors import DataGenerationError


def try_build(spec, predicate, z, seed, selectivity):
    """Build, or tell hypothesis the parameter combination is infeasible
    (extreme skew can demand more matches than one partition holds)."""
    try:
        return build_materialized_dataset(
            spec, {predicate: float(z)}, seed=seed, selectivity=selectivity
        )
    except DataGenerationError:
        assume(False)


@st.composite
def sampling_scenarios(draw):
    partitions = draw(st.integers(min_value=1, max_value=12))
    rows_per_partition = draw(st.integers(min_value=20, max_value=120))
    selectivity = draw(st.sampled_from([0.0, 0.01, 0.05, 0.2]))
    z = draw(st.sampled_from([0, 1, 2]))
    k = draw(st.integers(min_value=1, max_value=80))
    policy = draw(st.sampled_from(["Hadoop", "HA", "MA", "LA", "C"]))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return partitions, rows_per_partition, selectivity, z, k, policy, seed


class TestSamplingContract:
    @given(scenario=sampling_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_sample_size_and_predicate_satisfaction(self, scenario):
        partitions, rows_per_partition, selectivity, z, k, policy, seed = scenario
        predicate = predicate_for_skew(z)
        total_rows = partitions * rows_per_partition
        spec = dataset_spec_for_scale(
            total_rows / 6_000_000, num_partitions=partitions
        )
        dataset = try_build(spec, predicate, z, seed, selectivity)
        dfs = DistributedFileSystem(paper_topology().storage_locations())
        dfs.write_dataset("/t", dataset)
        splits = dfs.open_splits("/t")

        conf = make_sampling_conf(
            name="prop", input_path="/t", predicate=predicate,
            sample_size=k, policy_name=policy,
        )
        result = LocalRunner(seed=seed).run(conf, splits)

        total_matches = dataset.total_matches(predicate.name)
        # Exact sample size: k when enough matches exist, else all of them.
        assert result.outputs_produced == min(k, total_matches)
        # Soundness: every sampled row satisfies the predicate.
        assert all(predicate.matches(row) for row in result.sample)
        # The job never reads more than the whole input.
        assert result.splits_processed <= partitions
        assert result.records_processed <= total_rows

    @given(scenario=sampling_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_dynamic_agrees_with_full_scan(self, scenario):
        """A dynamic job's sample size equals the static job's for the
        same data (both are min(k, matches))."""
        partitions, rows_per_partition, selectivity, z, k, _policy, seed = scenario
        predicate = predicate_for_skew(z)
        total_rows = partitions * rows_per_partition
        spec = dataset_spec_for_scale(
            total_rows / 6_000_000, num_partitions=partitions
        )
        dataset = try_build(spec, predicate, z, seed, selectivity)
        dfs = DistributedFileSystem(paper_topology().storage_locations())
        dfs.write_dataset("/t", dataset)
        splits = dfs.open_splits("/t")

        dynamic = LocalRunner(seed=seed).run(
            make_sampling_conf(
                name="dyn", input_path="/t", predicate=predicate,
                sample_size=k, policy_name="LA",
            ),
            splits,
        )
        static = LocalRunner(seed=seed).run(
            make_sampling_conf(
                name="full", input_path="/t", predicate=predicate,
                sample_size=k, policy_name=None,
            ),
            splits,
        )
        assert dynamic.outputs_produced == static.outputs_produced
        assert dynamic.splits_processed <= static.splits_processed
