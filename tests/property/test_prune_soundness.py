"""Property tests for split-statistics pruning soundness.

The one invariant everything rests on (ISSUE satellite 3): a split the
analyzer prunes (``may_match`` False) NEVER contains a matching row, and
dually a split proven all-matching (``matches_all`` True) contains no
non-matching row — across random data (with NULLs) and random predicate
trees over both typed columns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.predicates import And, ColumnCompare, Not, Or
from repro.scan.mmapstore import collect_column_stats
from repro.scan.prune import matches_all, may_match

OPS = ("=", "!=", "<", "<=", ">", ">=")

int_values = st.lists(
    st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    min_size=0,
    max_size=12,
)
str_values = st.lists(
    st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd", "ee", ""])),
    min_size=0,
    max_size=12,
)

int_literal = st.integers(min_value=-55, max_value=55)
str_literal = st.sampled_from(["a", "b", "c", "dd", "ee", "", "zz"])

leaf = st.one_of(
    st.builds(ColumnCompare, st.just("x"), st.sampled_from(OPS), int_literal),
    st.builds(ColumnCompare, st.just("s"), st.sampled_from(OPS), str_literal),
)


def trees(depth):
    if depth == 0:
        return leaf
    child = trees(depth - 1)
    return st.one_of(
        leaf,
        st.builds(Not, child),
        st.builds(lambda a, b: And((a, b)), child, child),
        st.builds(lambda a, b: Or((a, b)), child, child),
    )


def row_matches(predicate, row):
    """Engine semantics: a comparison over NULL is false (collapsed 3VL)."""
    if isinstance(predicate, And):
        return all(row_matches(c, row) for c in predicate.children)
    if isinstance(predicate, Or):
        return any(row_matches(c, row) for c in predicate.children)
    if isinstance(predicate, Not):
        return not row_matches(predicate.child, row)
    return predicate.matches(row)


@given(ints=int_values, strs=str_values, predicate=trees(2))
@settings(max_examples=300, deadline=None)
def test_pruned_split_never_contains_a_match(ints, strs, predicate):
    rows = max(len(ints), len(strs))
    ints = ints + [None] * (rows - len(ints))
    strs = strs + [None] * (rows - len(strs))
    stats = {
        "x": collect_column_stats("i", ints, bloom_bits=256),
        "s": collect_column_stats("s", strs, bloom_bits=256),
    }
    data = [{"x": x, "s": s} for x, s in zip(ints, strs)]
    matching = [row for row in data if row_matches(predicate, row)]
    if not may_match(predicate, stats):
        assert matching == [], (
            f"pruned split contains matches: {predicate!r} -> {matching}"
        )
    if matches_all(predicate, stats):
        assert len(matching) == len(data), (
            f"matches_all split contains non-matches: {predicate!r}"
        )


@given(values=int_values, literal=int_literal, op=st.sampled_from(OPS))
@settings(max_examples=300, deadline=None)
def test_single_comparison_soundness(values, literal, op):
    stats = {"x": collect_column_stats("i", values, bloom_bits=128)}
    predicate = ColumnCompare("x", op, literal)
    matching = sum(
        1 for v in values if v is not None and predicate.matches({"x": v})
    )
    if not may_match(predicate, stats):
        assert matching == 0
    if matches_all(predicate, stats):
        assert matching == len(values)
