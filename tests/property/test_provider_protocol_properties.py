"""Property-based tests for the Input Provider protocol invariants.

The protocol's safety properties, checked against randomized sequences
of progress observations:

* splits handed out are unique — no split is ever offered twice;
* the provider never hands out more splits than exist;
* once END_OF_INPUT is returned, the remaining pool is irrelevant (the
  caller stops asking) — but the provider's bookkeeping stays coherent;
* grabbed amounts never exceed the policy's GrabLimit for the observed
  cluster state.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import paper_topology
from repro.core import SamplingInputProvider, paper_policies
from repro.core.input_provider import ResponseKind
from repro.core.protocol import ClusterStatus, JobProgress
from repro.core.sampling_job import make_sampling_conf
from repro.data import build_profiled_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.dfs import DistributedFileSystem


def make_provider(policy_name, num_partitions, k, seed):
    pred = predicate_for_skew(0)
    data = build_profiled_dataset(
        dataset_spec_for_scale(0.01, num_partitions=num_partitions),
        {pred: 0.0},
        seed=0,
        selectivity=0.01,
    )
    dfs = DistributedFileSystem(paper_topology().storage_locations())
    dfs.write_dataset("/t", data)
    splits = dfs.open_splits("/t")
    conf = make_sampling_conf(
        name="prop", input_path="/t", predicate=pred, sample_size=k,
        policy_name=policy_name,
    )
    provider = SamplingInputProvider()
    provider.initialize(
        splits, conf, paper_policies().get(policy_name), random.Random(seed)
    )
    return provider, splits


@st.composite
def protocol_runs(draw):
    policy = draw(st.sampled_from(["HA", "MA", "LA", "C"]))
    partitions = draw(st.integers(min_value=2, max_value=40))
    k = draw(st.integers(min_value=1, max_value=500))
    seed = draw(st.integers(min_value=0, max_value=999))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),   # newly completed splits
                st.floats(min_value=0.0, max_value=1.0),  # per-record match rate
                st.integers(min_value=0, max_value=40),   # available slots
            ),
            min_size=1,
            max_size=12,
        )
    )
    return policy, partitions, k, seed, steps


class TestProtocolInvariants:
    @given(run=protocol_runs())
    @settings(max_examples=40, deadline=None)
    def test_provider_never_double_issues_splits(self, run):
        policy, partitions, k, seed, steps = run
        provider, splits = make_provider(policy, partitions, k, seed)
        records_per_split = splits[0].num_records
        cluster_total = 40

        issued_ids = set()
        initial, complete = provider.initial_input(
            ClusterStatus(cluster_total, cluster_total, 0, 0)
        )
        for split in initial:
            assert split.split_id not in issued_ids
            issued_ids.add(split.split_id)

        completed_splits = 0
        outputs = 0
        ended = complete
        for new_done, rate, available in steps:
            if ended:
                break
            completed_splits = min(completed_splits + new_done, len(issued_ids))
            records_done = completed_splits * records_per_split
            # Cumulative totals must be monotone (the engine guarantees it).
            outputs = max(outputs, min(int(records_done * rate), records_done))
            pending = len(issued_ids) - completed_splits
            progress = JobProgress(
                job_id="j",
                total_splits_known=partitions,
                splits_added=len(issued_ids),
                splits_completed=completed_splits,
                splits_pending=pending,
                records_processed=records_done,
                outputs_produced=outputs,
                records_pending=pending * records_per_split,
            )
            status = ClusterStatus(
                cluster_total, min(available, cluster_total), 0, 0
            )
            response = provider.evaluate(progress, status)
            if response.kind is ResponseKind.END_OF_INPUT:
                ended = True
            elif response.kind is ResponseKind.INPUT_AVAILABLE:
                limit = paper_policies().get(policy).max_grab(
                    total_slots=cluster_total,
                    available_slots=min(available, cluster_total),
                )
                if not math.isinf(limit):
                    assert len(response.splits) <= limit
                for split in response.splits:
                    assert split.split_id not in issued_ids
                    issued_ids.add(split.split_id)
            assert len(issued_ids) <= partitions
            assert provider.remaining_splits == partitions - len(issued_ids)
