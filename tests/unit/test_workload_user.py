"""Unit tests for closed-loop users and workload spec plumbing."""

import pytest

from repro import SimulatedCluster, make_sampling_conf
from repro.cluster import paper_topology
from repro.data import build_profiled_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.errors import WorkloadError
from repro.workload.user import ClosedLoopUser, UserClass, UserSpec


@pytest.fixture()
def cluster():
    pred = predicate_for_skew(0)
    data = build_profiled_dataset(dataset_spec_for_scale(5), {pred: 0.0}, seed=0)
    c = SimulatedCluster(paper_topology(), seed=0)
    c.load_dataset("/d", data)
    return c, pred


def spec_for(pred, name="u0"):
    def conf_factory(iteration):
        return make_sampling_conf(
            name=f"{name}-i{iteration}", input_path="/d", predicate=pred,
            sample_size=10_000, policy_name="HA",
        )

    return UserSpec(user_id=name, user_class=UserClass.SAMPLING, conf_factory=conf_factory)


class TestClosedLoopUser:
    def test_resubmits_after_each_completion(self, cluster):
        c, pred = cluster
        records = []
        user = ClosedLoopUser(spec_for(pred), c, records.append)
        user.start()
        c.run(until=200.0)
        user.stop()
        assert user.completions >= 2
        assert len(records) == user.completions
        # Iterations are distinct jobs.
        names = [record.result.name for record in records]
        assert len(set(names)) == len(names)

    def test_stop_halts_resubmission(self, cluster):
        c, pred = cluster
        records = []
        user = ClosedLoopUser(spec_for(pred), c, records.append)
        user.start()
        c.run(until=40.0)
        user.stop()
        count_at_stop = len(records)
        c.run(until=400.0)
        # At most the in-flight job finishes after stop.
        assert len(records) <= count_at_stop + 1

    def test_completion_record_fields(self, cluster):
        c, pred = cluster
        records = []
        user = ClosedLoopUser(spec_for(pred, name="alice"), c, records.append)
        user.start()
        c.run(until=100.0)
        user.stop()
        record = records[0]
        assert record.user_id == "alice"
        assert record.user_class is UserClass.SAMPLING
        assert record.finish_time == record.result.finish_time

    def test_bad_conf_factory_detected(self, cluster):
        c, _pred = cluster
        bad = UserSpec(
            user_id="bad", user_class=UserClass.SAMPLING,
            conf_factory=lambda i: "not a conf",
        )
        user = ClosedLoopUser(bad, c, lambda record: None)
        with pytest.raises(WorkloadError):
            user.start()
