"""Unit tests for straggler/duration-noise modeling."""

import statistics

import pytest

from repro import SimulatedCluster, make_sampling_conf
from repro.cluster import paper_topology
from repro.cluster.costmodel import StragglerModel
from repro.data import build_profiled_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.errors import ClusterConfigError


class TestStragglerModel:
    def test_no_noise_yields_unity(self):
        model = StragglerModel(sigma=0.0, straggler_probability=0.0)
        assert all(model.multiplier() == 1.0 for _ in range(100))

    def test_multipliers_positive_and_centered(self):
        model = StragglerModel(sigma=0.2, straggler_probability=0.0, seed=1)
        draws = [model.multiplier() for _ in range(5000)]
        assert all(d > 0 for d in draws)
        assert 0.95 <= statistics.median(draws) <= 1.05

    def test_straggler_tail(self):
        model = StragglerModel(
            sigma=0.0, straggler_probability=0.1, straggler_factor=5.0, seed=2
        )
        draws = [model.multiplier() for _ in range(2000)]
        stragglers = [d for d in draws if d > 4.0]
        assert 120 <= len(stragglers) <= 280  # ~200 expected
        assert model.stragglers_drawn == len(stragglers)

    def test_deterministic_under_seed(self):
        a = StragglerModel(sigma=0.3, seed=9)
        b = StragglerModel(sigma=0.3, seed=9)
        assert [a.multiplier() for _ in range(20)] == [
            b.multiplier() for _ in range(20)
        ]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ClusterConfigError):
            StragglerModel(sigma=-1)
        with pytest.raises(ClusterConfigError):
            StragglerModel(straggler_probability=2)
        with pytest.raises(ClusterConfigError):
            StragglerModel(straggler_factor=0.5)


class TestStragglersOnCluster:
    def run(self, straggler_model):
        pred = predicate_for_skew(0)
        data = build_profiled_dataset(dataset_spec_for_scale(5), {pred: 0.0}, seed=0)
        cluster = SimulatedCluster(
            paper_topology(), seed=0, straggler_model=straggler_model
        )
        cluster.load_dataset("/d", data)
        conf = make_sampling_conf(
            name="q", input_path="/d", predicate=pred, sample_size=10_000,
            policy_name="Hadoop",
        )
        return cluster.run_job(conf)

    def test_noise_spreads_task_durations(self):
        clean = self.run(None)
        noisy = self.run(StragglerModel(sigma=0.25, seed=4))
        assert clean.outputs_produced == noisy.outputs_produced == 10_000
        # Same work, different wall clock; results still correct.
        assert noisy.response_time != clean.response_time
        assert noisy.splits_processed == clean.splits_processed

    def test_stragglers_lengthen_the_wave(self):
        clean = self.run(None)
        straggly = self.run(
            StragglerModel(
                sigma=0.0, straggler_probability=0.2, straggler_factor=4.0, seed=5
            )
        )
        # A wave is as slow as its slowest task: stragglers stretch it.
        assert straggly.response_time > clean.response_time
