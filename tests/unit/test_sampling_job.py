"""Unit tests for Algorithms 1 & 2 and the sampling JobConf builders."""

import pytest

from repro.core.sampling_job import (
    DUMMY_KEY,
    SamplingMapper,
    SamplingReducer,
    ScanMapper,
    make_sampling_conf,
    make_scan_conf,
)
from repro.data.predicates import ColumnCompare, MarkerEquals
from repro.engine.mapreduce import MapContext, ReduceContext
from repro.errors import JobConfError


PRED = ColumnCompare("x", ">", 10)


def rows(values):
    return [(i, {"x": v, "y": i}) for i, v in enumerate(values)]


class TestSamplingMapper:
    def test_emits_only_matches_under_dummy_key(self):
        context = MapContext()
        SamplingMapper(PRED, k=10).run(rows([5, 15, 20, 3]), context)
        assert [key for key, _ in context.outputs] == [DUMMY_KEY, DUMMY_KEY]
        assert [v["x"] for _, v in context.outputs] == [15, 20]

    def test_caps_output_at_k(self):
        context = MapContext()
        SamplingMapper(PRED, k=3).run(rows([20] * 10), context)
        assert context.outputs_produced == 3
        # LIMIT short-circuit: the task stops scanning once its own k is
        # reached, so records_read reflects only rows actually scanned.
        assert context.records_read == 3

    def test_short_circuit_scans_up_to_kth_match(self):
        context = MapContext()
        # Matches at positions 1, 3, 5; k=2 stops right after position 3.
        SamplingMapper(PRED, k=2).run(rows([5, 20, 5, 20, 5, 20]), context)
        assert context.outputs_produced == 2
        assert context.records_read == 4

    def test_projection(self):
        context = MapContext()
        SamplingMapper(PRED, k=5, columns=("y",)).run(rows([20]), context)
        assert context.outputs == [(DUMMY_KEY, {"y": 0})]

    def test_invalid_k_rejected(self):
        with pytest.raises(JobConfError):
            SamplingMapper(PRED, k=0)

    def test_state_is_per_instance(self):
        """Each map task caps independently (paper: each task assumes it
        may be the only one finding matches)."""
        a, b = MapContext(), MapContext()
        SamplingMapper(PRED, k=2).run(rows([20] * 5), a)
        SamplingMapper(PRED, k=2).run(rows([20] * 5), b)
        assert a.outputs_produced == b.outputs_produced == 2


class TestSamplingReducer:
    def test_passes_through_when_under_k(self):
        context = ReduceContext()
        SamplingReducer(k=10).run([(DUMMY_KEY, [1, 2, 3])], context)
        assert [v for _, v in context.outputs] == [1, 2, 3]

    def test_truncates_to_first_k(self):
        context = ReduceContext()
        SamplingReducer(k=2).run([(DUMMY_KEY, [1, 2, 3, 4])], context)
        assert [v for _, v in context.outputs] == [1, 2]

    def test_invalid_k_rejected(self):
        with pytest.raises(JobConfError):
            SamplingReducer(k=-1)


class TestScanMapper:
    def test_no_cap(self):
        context = MapContext()
        ScanMapper(PRED).run(rows([20] * 7), context)
        assert context.outputs_produced == 7


class TestMakeSamplingConf:
    def test_dynamic_params_set(self):
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=PRED, sample_size=100,
            policy_name="MA",
        )
        assert conf.is_dynamic
        assert conf.policy_name == "MA"
        assert conf.input_provider_name == "sampling"
        assert conf.sample_size == 100
        assert conf.num_reduce_tasks == 1

    def test_static_variant(self):
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=PRED, sample_size=100,
            policy_name=None,
        )
        assert not conf.is_dynamic

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(JobConfError):
            make_sampling_conf(
                name="q", input_path="/in", predicate=PRED, sample_size=0
            )

    def test_mapper_factory_builds_fresh_instances(self):
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=PRED, sample_size=1,
        )
        assert conf.mapper_factory() is not conf.mapper_factory()


class TestProfileOutputs:
    def make_split(self, matches, records=1000):
        from repro.data.datasets import PartitionData
        from repro.dfs.block import Block, StorageLocation
        from repro.dfs.split import InputSplit

        payload = PartitionData(
            index=0, num_records=records, num_bytes=records * 100,
            match_counts={"mark": matches},
        )
        block = Block(
            block_id="b0", file_path="/in", index=0, num_bytes=payload.num_bytes,
            location=StorageLocation("n0", 0), payload=payload,
        )
        return InputSplit(split_id="/in:0", block=block)

    def test_sampling_profile_caps_at_k(self):
        pred = MarkerEquals("x", "mark")
        # name of MarkerEquals('x', 'mark') is 'x=mark'... use matching key
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=pred, sample_size=5,
        )
        split = self.make_split(matches=50)
        split.block.payload.match_counts[pred.name] = 50
        assert conf.profile_outputs(split) == 5

    def test_sampling_profile_below_k(self):
        pred = MarkerEquals("x", "mark")
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=pred, sample_size=500,
        )
        split = self.make_split(matches=0)
        split.block.payload.match_counts[pred.name] = 3
        assert conf.profile_outputs(split) == 3

    def test_missing_profile_rejected(self):
        pred = MarkerEquals("zz", "mark")
        conf = make_sampling_conf(
            name="q", input_path="/in", predicate=pred, sample_size=5,
        )
        with pytest.raises(JobConfError):
            conf.profile_outputs(self.make_split(matches=1))

    def test_scan_fallback_selectivity(self):
        pred = MarkerEquals("zz", "mark")
        conf = make_scan_conf(
            name="s", input_path="/in", predicate=pred,
            fallback_selectivity=0.01,
        )
        assert conf.profile_outputs(self.make_split(matches=0, records=1000)) == 10

    def test_scan_fallback_rounds_half_up(self):
        # Regression: round() rounds half to even, so expected counts
        # landing on .5 (2.5 -> 2, 0.5 -> 0) systematically undercount
        # across a sweep of profile-only splits. Half-up keeps them.
        pred = MarkerEquals("zz", "mark")
        conf = make_scan_conf(
            name="s", input_path="/in", predicate=pred,
            fallback_selectivity=0.01,
        )
        assert conf.profile_outputs(self.make_split(matches=0, records=50)) == 1
        assert conf.profile_outputs(self.make_split(matches=0, records=250)) == 3
        # 100 such splits must expect 300 matches, not round()'s 200.
        total = sum(
            conf.profile_outputs(self.make_split(matches=0, records=250))
            for _ in range(100)
        )
        assert total == 300

    def test_scan_conf_shape(self):
        conf = make_scan_conf(name="s", input_path="/in", predicate=PRED,
                              fallback_selectivity=0.0005)
        assert conf.num_reduce_tasks == 0
        assert not conf.is_dynamic
