"""Unit tests for the live-telemetry primitives (ring series, sketch)."""

import pytest

from repro.errors import ReproError
from repro.obs.timeseries import QuantileSketch, TimeSeries


class TestTimeSeries:
    def test_append_and_points_chronological(self):
        series = TimeSeries(capacity=8)
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert len(series) == 5
        assert series.points() == [(float(t), float(t * 10)) for t in range(5)]
        assert series.last() == (4.0, 40.0)
        assert series.total_points == 5

    def test_ring_overwrites_oldest(self):
        series = TimeSeries(capacity=4)
        for t in range(10):
            series.append(float(t), float(t))
        assert len(series) == 4
        assert series.points() == [(float(t), float(t)) for t in (6, 7, 8, 9)]
        assert series.total_points == 10

    def test_rejects_non_chronological(self):
        series = TimeSeries(capacity=4)
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.append(4.0, 2.0)
        # Equal timestamps are allowed (two events in the same instant).
        series.append(5.0, 3.0)
        assert len(series) == 2

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=1)

    def test_empty_reads(self):
        series = TimeSeries(capacity=4)
        assert series.points() == []
        assert series.last() is None
        assert series.window(10.0) == []
        assert series.rates() == []

    def test_window(self):
        series = TimeSeries(capacity=16)
        for t in range(10):
            series.append(float(t), float(t))
        assert series.window(3.0) == [(t, t) for t in (6.0, 7.0, 8.0, 9.0)]

    def test_rates_of_cumulative_series(self):
        series = TimeSeries(capacity=16)
        series.append(0.0, 0.0)
        series.append(1.0, 100.0)
        series.append(3.0, 300.0)
        assert series.rates() == [(1.0, 100.0), (3.0, 100.0)]

    def test_rates_skip_zero_dt_and_clamp_resets(self):
        series = TimeSeries(capacity=16)
        series.append(0.0, 100.0)
        series.append(0.0, 150.0)  # same instant: no rate point
        series.append(1.0, 50.0)  # counter reset: rate clamps to 0, not negative
        rates = series.rates()
        assert rates == [(1.0, 0.0)]

    def test_zero_rate_is_kept(self):
        # A flat cumulative series is a real 0.0 rate, not a missing one.
        series = TimeSeries(capacity=8)
        series.append(0.0, 10.0)
        series.append(1.0, 10.0)
        assert series.rates() == [(1.0, 0.0)]


class TestQuantileSketch:
    def test_quantiles_dict_shape(self):
        sketch = QuantileSketch("lat")
        assert sketch.quantiles() == {"p50": None, "p95": None, "p99": None}
        for value in (1.0, 2.0, 3.0):
            sketch.observe(value)
        quantiles = sketch.quantiles()
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert all(v is not None for v in quantiles.values())

    def test_merged_classmethod(self):
        a = QuantileSketch("a")
        b = QuantileSketch("b")
        for value in (1.0, 10.0):
            a.observe(value)
        for value in (100.0, 1000.0):
            b.observe(value)
        union = QuantileSketch.merged([a, b])
        assert union.count == 4
        assert union.min == 1.0
        assert union.max == 1000.0
        # Merging must not mutate the sources.
        assert a.count == 2 and b.count == 2

    def test_merge_matches_direct_observation(self):
        values = [0.001, 0.5, 2.0, 2.1, 7.0, 300.0]
        direct = QuantileSketch("direct")
        left = QuantileSketch("l")
        right = QuantileSketch("r")
        for index, value in enumerate(values):
            direct.observe(value)
            (left if index % 2 else right).observe(value)
        merged = QuantileSketch.merged([left, right])
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert merged.quantile(q) == direct.quantile(q)

    def test_invalid_quantile_raises(self):
        sketch = QuantileSketch("x")
        sketch.observe(1.0)
        with pytest.raises(ReproError):
            sketch.quantile(1.5)
