"""Unit tests for the RCS footer STATS section (zone maps + blooms)."""

import struct

import pytest

from repro.errors import MmapStoreError
from repro.scan.mmapstore import (
    BLOOM_HASHES,
    DEFAULT_BLOOM_BITS,
    MIN_VERSION,
    STATS_MAX_STRING_BYTES,
    STATS_VERSION,
    VERSION,
    BloomFilter,
    MmapDataset,
    MmapDatasetWriter,
    _bloom_positions,
    collect_column_stats,
)

NAMES = ("id", "price", "flag", "label")
TYPES = ("i", "f", "b", "s")
COLUMNS = {
    "id": [1, -2, 3, None],
    "price": [0.5, None, -1.25, 3.0],
    "flag": [True, False, None, True],
    "label": ["a", "", None, "héllo"],
}


def write_sample(path, *, stats, partitions=1, bloom_bits=DEFAULT_BLOOM_BITS):
    with MmapDatasetWriter(
        path, NAMES, TYPES, meta={"k": "v"}, stats=stats, bloom_bits=bloom_bits
    ) as writer:
        for _ in range(partitions):
            writer.write_partition(COLUMNS, 4)
    return writer


class TestStatsRoundTrip:
    def test_zone_maps_round_trip(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=True, partitions=2)
        ds = MmapDataset(path)
        assert ds.version == STATS_VERSION
        assert ds.bloom_bits == DEFAULT_BLOOM_BITS
        assert ds.bloom_hashes == BLOOM_HASHES
        for index in range(2):
            stats = ds.partition_stats(index)
            assert set(stats) == set(NAMES)
            assert stats["id"].row_count == 4
            assert stats["id"].null_count == 1
            assert (stats["id"].min_value, stats["id"].max_value) == (-2, 3)
            assert (stats["price"].min_value, stats["price"].max_value) == (-1.25, 3.0)
            assert (stats["flag"].min_value, stats["flag"].max_value) == (False, True)
            assert (stats["label"].min_value, stats["label"].max_value) == ("", "héllo")

    def test_blooms_only_on_int_and_str_columns(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=True)
        stats = MmapDataset(path).partition_stats(0)
        assert stats["id"].bloom is not None
        assert stats["label"].bloom is not None
        assert stats["price"].bloom is None
        assert stats["flag"].bloom is None

    def test_bloom_has_no_false_negatives(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=True)
        stats = MmapDataset(path).partition_stats(0)
        for value in (1, -2, 3):
            assert stats["id"].bloom.might_contain(value)
        for value in ("a", "", "héllo"):
            assert stats["label"].bloom.might_contain(value)
        # Absent values are (with 2048 bits over 3 keys) reliably refuted.
        assert not stats["id"].bloom.might_contain(999)
        assert not stats["label"].bloom.might_contain("missing")

    def test_row_counts_survive_empty_partition(self, tmp_path):
        path = tmp_path / "t.rcs"
        with MmapDatasetWriter(path, ("a",), ("i",), stats=True) as writer:
            writer.write_partition({"a": []}, 0)
        stats = MmapDataset(path).partition_stats(0)
        assert stats["a"].row_count == 0
        assert not stats["a"].has_minmax

    def test_partition_stats_range_checked(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=True)
        ds = MmapDataset(path)
        with pytest.raises(MmapStoreError, match="out of range"):
            ds.partition_stats(1)


class TestVersionNegotiation:
    def test_stats_off_writes_version_one(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=False)
        assert path.read_bytes()[4] == MIN_VERSION
        ds = MmapDataset(path)
        assert ds.version == MIN_VERSION
        assert ds.stats is None
        assert ds.partition_stats(0) is None

    def test_stats_off_file_is_byte_stable(self, tmp_path):
        """stats=False must produce the exact pre-stats format."""
        write_sample(tmp_path / "a.rcs", stats=False)
        write_sample(tmp_path / "b.rcs", stats=False)
        blob = (tmp_path / "a.rcs").read_bytes()
        assert blob == (tmp_path / "b.rcs").read_bytes()
        assert bytes([STATS_VERSION]) != blob[4:5]

    def test_unknown_version_error_names_both_sides(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=False)
        blob = bytearray(path.read_bytes())
        blob[4] = VERSION + 5
        path.write_bytes(bytes(blob))
        with pytest.raises(MmapStoreError) as err:
            MmapDataset(path)
        message = str(err.value)
        assert f"unsupported RCS version {VERSION + 5}" in message
        assert f"reads versions {MIN_VERSION} through {VERSION}" in message

    def test_truncated_stats_section_rejected(self, tmp_path):
        path = tmp_path / "t.rcs"
        write_sample(path, stats=True)
        blob = bytearray(path.read_bytes())
        # Footer offset/length live at bytes 8..24; chop the stats tail.
        offset, length = struct.unpack_from("<QQ", blob, 8)
        struct.pack_into("<QQ", blob, 8, offset, length - 10)
        path.write_bytes(bytes(blob[: offset + length - 10]))
        with pytest.raises(MmapStoreError, match="STATS"):
            MmapDataset(path)

    def test_bloom_bits_validation(self, tmp_path):
        with pytest.raises(MmapStoreError, match="bloom"):
            MmapDatasetWriter(tmp_path / "t.rcs", ("a",), ("i",), stats=True, bloom_bits=12)
        with pytest.raises(MmapStoreError, match="bloom"):
            MmapDatasetWriter(tmp_path / "t.rcs", ("a",), ("i",), stats=True, bloom_bits=-8)


class TestCollectColumnStats:
    def test_all_null_column_drops_minmax(self):
        stats = collect_column_stats("i", [None, None])
        assert stats.row_count == 2
        assert stats.null_count == 2
        assert not stats.has_minmax

    def test_nan_drops_minmax(self):
        stats = collect_column_stats("f", [1.0, float("nan"), 2.0])
        assert not stats.has_minmax

    def test_long_strings_drop_minmax(self):
        stats = collect_column_stats("s", ["x" * (STATS_MAX_STRING_BYTES + 1)])
        assert not stats.has_minmax

    def test_high_cardinality_drops_bloom(self):
        values = list(range(10_000))
        stats = collect_column_stats("i", values, bloom_bits=64)
        assert stats.bloom is None
        assert (stats.min_value, stats.max_value) == (0, 9_999)

    def test_bloom_positions_are_deterministic(self):
        first = list(_bloom_positions(b"key", 2048, 4))
        second = list(_bloom_positions(b"key", 2048, 4))
        assert first == second
        assert len(first) == 4
        assert all(0 <= p < 2048 for p in first)

    def test_bloom_unhashable_value_is_maybe(self):
        bloom = BloomFilter(bits=64, hashes=2, data=bytes(8))
        assert bloom.might_contain([1, 2])  # un-keyable: conservative yes
        assert not bloom.might_contain(7)
