"""Unit tests for the error-bounded aggregate estimators."""

import math
import random

import pytest

from repro.approx.estimators import (
    AggregateEstimator,
    AggregateSpec,
    critical_value,
    normal_quantile,
    t_quantile,
)
from repro.errors import JobConfError


class TestAggregateSpec:
    def test_round_trip_serialization(self):
        for spec in (
            AggregateSpec("count", None),
            AggregateSpec("sum", "l_quantity"),
            AggregateSpec("avg", "l_extendedprice"),
        ):
            assert AggregateSpec.parse(spec.serialize()) == spec

    def test_needs_values(self):
        assert not AggregateSpec("count", None).needs_values
        assert AggregateSpec("sum", "c").needs_values
        assert AggregateSpec("avg", "c").needs_values

    def test_unknown_function_rejected(self):
        with pytest.raises(JobConfError):
            AggregateSpec("median", "c")

    def test_count_takes_no_column(self):
        with pytest.raises(JobConfError):
            AggregateSpec("count", "c")

    def test_sum_and_avg_need_a_column(self):
        for func in ("sum", "avg"):
            with pytest.raises(JobConfError):
                AggregateSpec(func, None)

    def test_str_form(self):
        assert str(AggregateSpec("count", None)) == "COUNT(*)"
        assert str(AggregateSpec("avg", "x")) == "AVG(x)"


class TestQuantiles:
    def test_normal_quantile_reference_values(self):
        # Classical two-sided critical points.
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_normal_quantile_symmetry(self):
        for p in (0.6, 0.9, 0.99, 0.999):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p))

    def test_normal_quantile_domain(self):
        for p in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                normal_quantile(p)

    def test_t_quantile_fat_tails_converge_to_normal(self):
        # Reference t(0.975) values: df=5 -> 2.5706, df=30 -> 2.0423.
        assert t_quantile(0.975, 5) == pytest.approx(2.5706, rel=0.01)
        assert t_quantile(0.975, 30) == pytest.approx(2.0423, rel=0.005)
        assert t_quantile(0.975, 10_000) == pytest.approx(
            normal_quantile(0.975), rel=1e-3
        )
        # Monotone in df: fewer observations, fatter tails.
        assert t_quantile(0.975, 3) > t_quantile(0.975, 10) > t_quantile(0.975, 100)

    def test_t_quantile_rejects_nonpositive_df(self):
        with pytest.raises(ValueError):
            t_quantile(0.975, 0)

    def test_critical_value_validates_confidence(self):
        for bad in (50.0, 100.0, 0.0, -5.0, 101.0):
            with pytest.raises(JobConfError):
                critical_value(bad, df=5)
        assert critical_value(95.0, df=5) == pytest.approx(
            t_quantile(0.975, 5)
        )


def feed(estimator, per_split, prefix="s"):
    """Observe one split per entry of ``per_split`` (list of group dicts)."""
    for i, stats in enumerate(per_split):
        estimator.observe_split(f"{prefix}{i}", stats)


class TestCountEstimator:
    def test_point_estimate_scales_mean_by_population(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        feed(est, [{None: (3, 0.0)}, {None: (5, 0.0)}])
        [g] = est.estimates()
        assert g.estimate == pytest.approx(10 * 4.0)
        assert g.sample_count == 8
        assert g.n_splits == 2

    def test_full_scan_is_exact(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=3)
        feed(est, [{None: (1, 0.0)}, {None: (2, 0.0)}, {None: (3, 0.0)}])
        [g] = est.estimates()
        assert g.method == "exact"
        assert g.estimate == 6.0
        assert g.half_width == 0.0
        assert g.meets(0.001)  # any target, exact answers always meet

    def test_clt_interval_covers_truth_on_uniform_counts(self):
        rng = random.Random(7)
        counts = [rng.randint(80, 120) for _ in range(40)]
        truth = sum(counts)
        est = AggregateEstimator(AggregateSpec("count"), total_splits=40)
        feed(est, [{None: (c, 0.0)} for c in counts[:20]])
        [g] = est.estimates()
        assert g.method == "clt"
        assert abs(g.estimate - truth) <= 2 * g.half_width

    def test_single_split_has_no_interval(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        feed(est, [{None: (4, 0.0)}])
        [g] = est.estimates()
        assert g.estimate == 40.0
        assert g.half_width is None
        assert g.method == "none"
        assert not g.meets(50.0)

    def test_zero_estimate_never_meets_short_of_exact(self):
        # 5 of 10 splits scanned, zero matches everywhere: zero variance,
        # but a zero estimate must not be certified by a partial scan.
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        feed(est, [{} for _ in range(5)])
        [g] = est.estimates()
        assert g.estimate == 0.0
        assert not g.meets(5.0)
        assert not est.all_met(5.0)

    def test_zero_estimate_exact_after_full_scan(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=3)
        feed(est, [{} for _ in range(3)])
        [g] = est.estimates()
        assert g.estimate == 0.0
        assert g.method == "exact"
        assert g.meets(5.0)

    def test_duplicate_split_rejected(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        est.observe_split("s0", {None: (1, 0.0)})
        with pytest.raises(JobConfError):
            est.observe_split("s0", {None: (1, 0.0)})

    def test_overflowing_the_population_rejected(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=1)
        est.observe_split("s0", {None: (1, 0.0)})
        with pytest.raises(JobConfError):
            est.observe_split("s1", {None: (1, 0.0)})

    def test_total_splits_must_be_positive(self):
        with pytest.raises(JobConfError):
            AggregateEstimator(AggregateSpec("count"), total_splits=0)


class TestSumAndAvgEstimators:
    def test_sum_point_estimate(self):
        est = AggregateEstimator(AggregateSpec("sum", "q"), total_splits=4)
        feed(est, [{None: (2, 10.0)}, {None: (3, 20.0)}])
        [g] = est.estimates()
        assert g.estimate == pytest.approx(4 * 15.0)
        assert g.sample_sum == pytest.approx(30.0)

    def test_avg_is_ratio_of_totals(self):
        est = AggregateEstimator(AggregateSpec("avg", "q"), total_splits=4)
        feed(est, [{None: (2, 10.0)}, {None: (3, 20.0)}])
        [g] = est.estimates()
        assert g.estimate == pytest.approx(30.0 / 5.0)

    def test_avg_with_no_matches_is_undefined(self):
        est = AggregateEstimator(AggregateSpec("avg", "q"), total_splits=4)
        feed(est, [{}, {}])
        [g] = est.estimates()
        assert g.estimate is None
        assert not g.meets(50.0)

    def test_avg_interval_tightens_with_more_splits(self):
        rng = random.Random(3)
        stats = []
        for _ in range(30):
            c = rng.randint(50, 70)
            stats.append({None: (c, c * rng.uniform(9.0, 11.0))})
        widths = []
        est = AggregateEstimator(AggregateSpec("avg", "q"), total_splits=100)
        for i, s in enumerate(stats):
            est.observe_split(f"s{i}", s)
            if i + 1 in (10, 30):
                widths.append(est.estimates()[0].half_width)
        assert widths[1] < widths[0]


class TestBootstrap:
    def test_small_samples_use_bootstrap(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=100)
        feed(est, [{None: (c, 0.0)} for c in (10, 12, 9, 11)])
        [g] = est.estimates()
        assert g.method == "bootstrap"
        assert g.half_width is not None and g.half_width > 0

    def test_bootstrap_is_deterministic(self):
        def build():
            est = AggregateEstimator(AggregateSpec("count"), total_splits=100)
            feed(est, [{None: (c, 0.0)} for c in (10, 12, 9, 11, 14)])
            return est.estimates()[0].half_width

        assert build() == build()

    def test_clt_takes_over_at_the_threshold(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=100)
        feed(est, [{None: (10 + i % 3, 0.0)} for i in range(8)])
        [g] = est.estimates()
        assert g.method == "clt"


class TestGroups:
    def test_groups_sorted_and_independent(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        feed(
            est,
            [
                {"R": (5, 0.0), "A": (1, 0.0)},
                {"A": (2, 0.0), "N": (4, 0.0)},
            ],
        )
        groups = est.estimates()
        assert [g.group for g in groups] == ["A", "N", "R"]
        by_group = {g.group: g for g in groups}
        # A group absent from an observed split contributes a zero there.
        assert by_group["N"].estimate == pytest.approx(10 * 2.0)
        assert by_group["R"].estimate == pytest.approx(10 * 2.5)

    def test_worst_is_the_widest_relative_interval(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=100)
        # "steady" has tiny relative spread; "noisy" dominates the stop.
        for i in range(10):
            est.observe_split(
                f"s{i}", {"steady": (1000, 0.0), "noisy": (5 + 10 * (i % 2), 0.0)}
            )
        worst = est.worst(5.0)
        assert worst.group == "noisy"
        assert not est.all_met(5.0)

    def test_all_met_requires_every_group(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        assert not est.all_met(5.0)  # no data at all
        feed(est, [{"a": (10, 0.0)} for _ in range(10)])
        assert est.all_met(5.0)  # exact: the whole population observed

    def test_no_matches_anywhere_yields_implicit_zero_group(self):
        est = AggregateEstimator(AggregateSpec("count"), total_splits=10)
        feed(est, [{} for _ in range(4)])
        [g] = est.estimates()
        assert g.group is None
        assert g.estimate == 0.0


class TestFinitePopulationCorrection:
    def test_width_shrinks_to_zero_at_exhaustion(self):
        rng = random.Random(11)
        counts = [rng.randint(90, 110) for _ in range(20)]
        est = AggregateEstimator(AggregateSpec("count"), total_splits=20)
        widths = []
        for i, c in enumerate(counts):
            est.observe_split(f"s{i}", {None: (c, 0.0)})
            g = est.estimates()[0]
            if g.half_width is not None:
                widths.append(g.half_width)
        assert widths[-1] == 0.0  # full scan: exact
        # FPC pulls the width down monotonically near exhaustion.
        assert widths[-2] < widths[len(widths) // 2]

    def test_bootstrap_width_also_carries_fpc(self):
        counts = (10, 12, 9, 11)

        def relative_width(total):
            est = AggregateEstimator(AggregateSpec("count"), total_splits=total)
            feed(est, [{None: (c, 0.0)} for c in counts])
            [g] = est.estimates()
            return g.half_width / g.estimate

        # Same observations; with most of the population already seen the
        # FPC shrinks the relative width (absolute widths scale with N,
        # so only the relative form isolates the correction).
        assert relative_width(5) < relative_width(1000)
