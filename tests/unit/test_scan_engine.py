"""Unit tests for the scan engine: columnar storage, batch execution,
and LIMIT short-circuit accounting."""

import pytest

from repro.core.sampling_job import SamplingMapper, ScanMapper
from repro.data.predicates import ColumnCompare
from repro.engine.jobconf import JobConf
from repro.engine.mapreduce import IdentityMapper, MapContext
from repro.errors import DataGenerationError, JobConfError
from repro.scan.columnar import ColumnBatch, ColumnStore
from repro.scan.engine import (
    SCAN_BATCH_SIZE_PARAM,
    SCAN_MODE_PARAM,
    SCAN_MODES,
    ScanOptions,
    run_map_task,
)

ROWS = [{"x": i, "y": i * 10} for i in range(10)]


class FakeSplit:
    """A materialized split backed by a plain row list."""

    def __init__(self, rows):
        self._store = ColumnStore.from_rows(rows)
        self._rows = rows

    def iter_rows(self):
        return iter(self._rows)

    def iter_batches(self, size):
        return self._store.iter_batches(size)


def make_conf(mapper_factory, **params):
    conf = JobConf(name="t", input_path="/t", mapper_factory=mapper_factory)
    for key, value in params.items():
        conf.set(key, value)
    return conf


class TestColumnStore:
    def test_roundtrip_preserves_rows_and_order(self):
        store = ColumnStore.from_rows(ROWS)
        assert list(store.iter_rows()) == ROWS
        assert store.num_rows == len(ROWS)
        assert store.names == ("x", "y")

    def test_row_at_with_projection(self):
        store = ColumnStore.from_rows(ROWS)
        assert store.row_at(3) == {"x": 3, "y": 30}
        assert store.row_at(3, columns=("y",)) == {"y": 30}

    def test_ragged_columns_rejected(self):
        with pytest.raises(DataGenerationError):
            ColumnStore(("x", "y"), {"x": [1, 2], "y": [1]})

    def test_iter_batches_covers_all_rows_once(self):
        store = ColumnStore.from_rows(ROWS)
        batches = list(store.iter_batches(4))
        assert [(b.start, b.stop) for b in batches] == [(0, 4), (4, 8), (8, 10)]
        rows = [row for b in batches for _, row in b.iter_indexed_rows()]
        assert rows == ROWS

    def test_batch_indices_are_absolute(self):
        store = ColumnStore.from_rows(ROWS)
        batch = list(store.iter_batches(4))[1]
        assert isinstance(batch, ColumnBatch)
        assert [i for i, _ in batch.iter_indexed_rows()] == [4, 5, 6, 7]
        assert batch.row(5) == ROWS[5]

    def test_empty_store(self):
        store = ColumnStore.from_rows([])
        assert store.num_rows == 0
        assert list(store.iter_batches(4)) == []


class TestScanOptions:
    def test_rejects_unknown_mode(self):
        with pytest.raises(JobConfError):
            ScanOptions(mode="vectorized")

    def test_rejects_bad_batch_size(self):
        with pytest.raises(JobConfError):
            ScanOptions(batch_size=0)

    def test_conf_overrides(self):
        conf = make_conf(
            IdentityMapper, **{SCAN_MODE_PARAM: "compiled", SCAN_BATCH_SIZE_PARAM: "7"}
        )
        options = ScanOptions().with_conf(conf)
        assert options.mode == "compiled"
        assert options.batch_size == 7

    def test_conf_without_params_is_identity(self):
        options = ScanOptions(mode="interpreted", batch_size=3)
        assert options.with_conf(make_conf(IdentityMapper)) is options


class TestRunMapTask:
    @pytest.mark.parametrize("mode", SCAN_MODES)
    def test_generic_mapper_identical_across_modes(self, mode):
        conf = make_conf(IdentityMapper)
        context = run_map_task(conf, FakeSplit(ROWS), ScanOptions(mode=mode))
        assert context.records_read == len(ROWS)
        assert context.outputs == list(enumerate(ROWS))

    @pytest.mark.parametrize("mode", SCAN_MODES)
    def test_scan_mapper_identical_across_modes(self, mode):
        predicate = ColumnCompare("x", ">=", 5)
        conf = make_conf(lambda: ScanMapper(predicate))
        context = run_map_task(
            conf, FakeSplit(ROWS), ScanOptions(mode=mode, batch_size=3)
        )
        assert context.records_read == len(ROWS)
        assert context.outputs == [(i, ROWS[i]) for i in range(5, 10)]


class TestLimitShortCircuit:
    """records_read must reflect only rows actually scanned, identically
    in all three modes."""

    @pytest.mark.parametrize("mode", SCAN_MODES)
    @pytest.mark.parametrize("batch_size", [1, 3, 4096])
    def test_stops_at_kth_match(self, mode, batch_size):
        # Matches at indices 2, 5, 8; k=2 -> scanning stops at index 5.
        rows = [{"x": 1 if i in (2, 5, 8) else 0} for i in range(10)]
        predicate = ColumnCompare("x", "=", 1)
        conf = make_conf(lambda: SamplingMapper(predicate, k=2))
        context = run_map_task(
            conf, FakeSplit(rows), ScanOptions(mode=mode, batch_size=batch_size)
        )
        assert context.outputs_produced == 2
        assert context.records_read == 6

    @pytest.mark.parametrize("mode", SCAN_MODES)
    def test_scans_everything_when_under_k(self, mode):
        rows = [{"x": 1 if i == 4 else 0} for i in range(10)]
        predicate = ColumnCompare("x", "=", 1)
        conf = make_conf(lambda: SamplingMapper(predicate, k=5))
        context = run_map_task(conf, FakeSplit(rows), ScanOptions(mode=mode))
        assert context.outputs_produced == 1
        assert context.records_read == 10

    def test_all_modes_agree_exactly(self):
        rows = [{"x": i % 3} for i in range(50)]
        predicate = ColumnCompare("x", "=", 2)
        results = []
        for mode in SCAN_MODES:
            conf = make_conf(lambda: SamplingMapper(predicate, k=7))
            context = run_map_task(
                conf, FakeSplit(rows), ScanOptions(mode=mode, batch_size=8)
            )
            results.append((context.records_read, context.outputs))
        assert results[0] == results[1] == results[2]
