"""Unit tests for the SimulatedCluster facade."""

import pytest

from repro import CostModel, SimulatedCluster, make_sampling_conf
from repro.cluster import paper_topology
from repro.data import build_profiled_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.engine.scheduler import FairScheduler, FifoScheduler
from repro.errors import ClusterConfigError, JobConfError, JobError


@pytest.fixture()
def loaded_cluster():
    pred = predicate_for_skew(0)
    data = build_profiled_dataset(dataset_spec_for_scale(5), {pred: 0.0}, seed=0)
    cluster = SimulatedCluster.paper_cluster()
    cluster.load_dataset("/d", data)
    return cluster, pred


def sampling(pred, name="q", policy="LA"):
    return make_sampling_conf(
        name=name, input_path="/d", predicate=pred, sample_size=10_000,
        policy_name=policy,
    )


class TestConstruction:
    def test_defaults(self):
        cluster = SimulatedCluster(paper_topology())
        assert isinstance(cluster.jobtracker.scheduler, FifoScheduler)
        assert cluster.topology.total_map_slots == 40

    def test_scheduler_by_name(self):
        assert isinstance(
            SimulatedCluster(paper_topology(), scheduler="fair").jobtracker.scheduler,
            FairScheduler,
        )

    def test_scheduler_by_instance(self):
        scheduler = FairScheduler(locality_delay=2.0)
        cluster = SimulatedCluster(paper_topology(), scheduler=scheduler)
        assert cluster.jobtracker.scheduler is scheduler

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ClusterConfigError):
            SimulatedCluster(paper_topology(), scheduler="wat")

    def test_custom_cost_model_used(self):
        model = CostModel().scaled(2.0)
        cluster = SimulatedCluster(paper_topology(), cost_model=model)
        assert cluster.cost_model is model

    def test_paper_cluster_multiuser_slots(self):
        cluster = SimulatedCluster.paper_cluster(map_slots_per_node=16)
        assert cluster.topology.total_map_slots == 160


class TestExecution:
    def test_run_job_returns_result(self, loaded_cluster):
        cluster, pred = loaded_cluster
        result = cluster.run_job(sampling(pred))
        assert result.outputs_produced == 10_000
        assert cluster.results == [result]

    def test_sequential_run_job_calls_compose(self, loaded_cluster):
        cluster, pred = loaded_cluster
        first = cluster.run_job(sampling(pred, name="a"))
        second = cluster.run_job(sampling(pred, name="b"))
        assert second.submit_time >= first.finish_time
        assert len(cluster.results) == 2

    def test_submit_requires_existing_input(self, loaded_cluster):
        cluster, pred = loaded_cluster
        conf = make_sampling_conf(
            name="x", input_path="/missing", predicate=pred, sample_size=10,
            policy_name="LA",
        )
        from repro.errors import FileNotFoundInDfsError

        with pytest.raises(FileNotFoundInDfsError):
            cluster.submit(conf)

    def test_run_job_timeout_raises(self, loaded_cluster):
        cluster, pred = loaded_cluster
        with pytest.raises(JobError):
            cluster.run_job(sampling(pred), timeout=1.0)  # can't finish in 1s

    def test_run_until_advances_clock(self, loaded_cluster):
        cluster, _pred = loaded_cluster
        cluster.run(until=100.0)
        assert cluster.sim.now == 100.0

    def test_metrics_opt_in(self, loaded_cluster):
        cluster, pred = loaded_cluster
        cluster.start_metrics()
        cluster.submit(sampling(pred))
        cluster.run(until=120.0)
        assert cluster.metrics.num_samples >= 3

    def test_callback_receives_result(self, loaded_cluster):
        cluster, pred = loaded_cluster
        seen = []
        cluster.submit(sampling(pred), seen.append)
        cluster.run(until=1000.0)
        assert len(seen) == 1
        assert seen[0].outputs_produced == 10_000
