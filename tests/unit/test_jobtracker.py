"""Unit tests for JobTracker internals, driven directly (no JobClient)."""

import pytest

from repro.cluster import CostModel, paper_topology
from repro.core.sampling_job import make_sampling_conf, make_scan_conf
from repro.data import build_profiled_dataset, dataset_spec_for_scale, predicate_for_skew
from repro.dfs import DistributedFileSystem
from repro.engine.job import JobState
from repro.engine.jobtracker import JobTracker
from repro.engine.scheduler import FairScheduler
from repro.errors import JobError
from repro.sim import Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    topo = paper_topology()
    tracker = JobTracker(sim, topo, dispatch_delay=0.5)
    pred = predicate_for_skew(0)
    data = build_profiled_dataset(dataset_spec_for_scale(5), {pred: 0.0}, seed=0)
    dfs = DistributedFileSystem(topo.storage_locations())
    dfs.write_dataset("/d", data)
    return sim, topo, tracker, pred, dfs.open_splits("/d")


def scan_conf(pred, name="scan"):
    return make_scan_conf(
        name=name, input_path="/d", predicate=pred, fallback_selectivity=0.0005
    )


class TestSubmission:
    def test_static_job_lifecycle(self, world):
        sim, _topo, tracker, pred, splits = world
        finished = []
        job = tracker.submit_job(
            scan_conf(pred), splits, input_complete=True,
            total_splits_known=len(splits), listener=finished.append,
        )
        assert job.state is JobState.PREP
        sim.run()
        assert job.state is JobState.SUCCEEDED
        assert finished == [job]
        assert job.splits_completed == 40

    def test_setup_delay_precedes_tasks(self, world):
        sim, topo, tracker, pred, splits = world
        tracker.submit_job(
            scan_conf(pred), splits, input_complete=True,
            total_splits_known=len(splits),
        )
        # Before setup completes, nothing runs.
        sim.run(until=CostModel().job_setup_seconds - 0.1)
        assert topo.running_map_tasks == 0

    def test_dynamic_add_input_then_complete(self, world):
        sim, _topo, tracker, pred, splits = world
        conf = make_sampling_conf(
            name="dyn", input_path="/d", predicate=pred, sample_size=100,
            policy_name="LA",
        )
        job = tracker.submit_job(
            conf, splits[:4], input_complete=False, total_splits_known=len(splits)
        )
        sim.run(until=40.0)
        assert job.splits_completed == 4
        assert not job.finished  # reduce held back: input not complete
        tracker.add_input(job.job_id, splits[4:8])
        sim.run(until=80.0)
        assert job.splits_completed == 8
        tracker.complete_input(job.job_id)
        sim.run()
        assert job.state is JobState.SUCCEEDED

    def test_complete_input_is_idempotent(self, world):
        sim, _topo, tracker, pred, splits = world
        job = tracker.submit_job(
            scan_conf(pred), splits, input_complete=True,
            total_splits_known=len(splits),
        )
        tracker.complete_input(job.job_id)  # no-op, already complete
        sim.run()
        assert job.state is JobState.SUCCEEDED

    def test_add_input_after_complete_rejected(self, world):
        sim, _topo, tracker, pred, splits = world
        job = tracker.submit_job(
            scan_conf(pred), splits[:4], input_complete=True, total_splits_known=40
        )
        with pytest.raises(JobError):
            tracker.add_input(job.job_id, splits[4:6])

    def test_duplicate_split_rejected(self, world):
        _sim, _topo, tracker, pred, splits = world
        conf = make_sampling_conf(
            name="dyn", input_path="/d", predicate=pred, sample_size=10,
            policy_name="LA",
        )
        job = tracker.submit_job(
            conf, splits[:4], input_complete=False, total_splits_known=40
        )
        with pytest.raises(JobError):
            tracker.add_input(job.job_id, splits[:1])

    def test_unknown_job_rejected(self, world):
        _sim, _topo, tracker, _pred, splits = world
        with pytest.raises(JobError):
            tracker.add_input("job_999999", splits[:1])
        with pytest.raises(JobError):
            tracker.get_job("nope")


class TestClusterStatus:
    def test_idle_status(self, world):
        _sim, topo, tracker, _pred, _splits = world
        status = tracker.cluster_status()
        assert status.total_map_slots == 40
        assert status.available_map_slots == 40
        assert status.running_map_tasks == 0
        assert status.queued_map_tasks == 0

    def test_busy_status_counts_queue(self, world):
        sim, _topo, tracker, pred, splits = world
        tracker.submit_job(
            scan_conf(pred), splits, input_complete=True, total_splits_known=40
        )
        sim.run(until=8.0)  # setup done, first wave dispatched
        status = tracker.cluster_status()
        assert status.running_map_tasks == 40
        assert status.available_map_slots == 0


class TestSlotAccounting:
    def test_slots_never_oversubscribed(self, world):
        sim, topo, tracker, pred, splits = world
        for name in ("a", "b", "c"):
            tracker.submit_job(
                scan_conf(pred, name), splits, input_complete=True,
                total_splits_known=40,
            )
        while sim.peek_time() is not None:
            sim.step()
            for node in topo.nodes:
                assert 0 <= node.running_map_tasks <= node.spec.map_slots
                assert node.free_map_slots >= 0

    def test_all_jobs_complete_under_contention(self, world):
        sim, _topo, tracker, pred, splits = world
        jobs = [
            tracker.submit_job(
                scan_conf(pred, f"j{i}"), splits, input_complete=True,
                total_splits_known=40,
            )
            for i in range(3)
        ]
        sim.run()
        assert all(job.state is JobState.SUCCEEDED for job in jobs)

    def test_dispatch_delay_validated(self):
        with pytest.raises(JobError):
            JobTracker(Simulator(), paper_topology(), dispatch_delay=-1)


class CountingTracker(JobTracker):
    """JobTracker that records the simulated time of every dispatch pass."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dispatch_times = []

    def _dispatch(self):
        self.dispatch_times.append(self._sim.now)
        super()._dispatch()


class TestDispatchRetryTimer:
    """Delay-scheduling retry timer: liveness across repeated stalls, and
    no phantom dispatches once a stall resolves."""

    def _pinned_world(self, tracker_cls=JobTracker, locality_delay=8.0):
        """A job whose splits all live on one 4-slot node, so every
        dispatch pass declines the other nodes' slot offers until the
        locality wait expires."""
        sim = Simulator()
        topo = paper_topology()
        tracker = tracker_cls(
            sim, topo, scheduler=FairScheduler(locality_delay=locality_delay),
            dispatch_delay=0.5,
        )
        pred = predicate_for_skew(0)
        data = build_profiled_dataset(
            dataset_spec_for_scale(5, num_partitions=80), {pred: 0.0}, seed=0
        )
        dfs = DistributedFileSystem(topo.storage_locations())
        dfs.write_dataset("/d", data)
        splits = dfs.open_splits("/d")
        node_a = splits[0].location.node_id
        pinned = [s for s in splits if s.location.node_id == node_a]
        return sim, tracker, pred, pinned

    def test_liveness_across_multiple_stalled_waves(self):
        # Eight splits on a 4-slot node: the second wave stalls behind the
        # locality wait just like the first, so the job only completes if
        # a retry timer is armed for *every* decline, not just the first.
        sim, tracker, pred, pinned = self._pinned_world()
        assert len(pinned) == 8
        job = tracker.submit_job(
            scan_conf(pred), pinned, input_complete=True,
            total_splits_known=len(pinned),
        )
        sim.run()
        assert job.state is JobState.SUCCEEDED
        assert job.splits_completed == 8
        assert not tracker.retry_pending

    def test_retry_rearms_while_stall_persists(self):
        sim, tracker, pred, pinned = self._pinned_world(
            tracker_cls=CountingTracker
        )
        tracker.submit_job(
            scan_conf(pred), pinned, input_complete=True,
            total_splits_known=len(pinned),
        )
        # Setup (4.0) + dispatch delay (0.5): first pass fills node A and
        # declines everywhere else -> timer armed to fire at 6.5.
        sim.run(until=5.0)
        assert tracker.retry_pending
        dispatches = len(tracker.dispatch_times)
        # The timer fires at 6.5, the retried dispatch (7.0) declines
        # again — the locality wait has not expired and the first wave is
        # still running — so a fresh timer must be armed for the second
        # stall too.
        sim.run(until=7.8)
        assert len(tracker.dispatch_times) > dispatches
        assert tracker.retry_pending

    def test_resolved_stall_cancels_timer_without_phantom_dispatch(self):
        # Regression: the retry timer used to survive the dispatch that
        # resolved its stall, firing a phantom dispatch later whose
        # coalescing window could pull unrelated dispatches earlier.
        sim, tracker, _pred, _pinned = self._pinned_world(
            tracker_cls=CountingTracker
        )
        tracker._schedule_retry()
        assert tracker.retry_pending
        # A dispatch pass that declines nothing (no pending work at all)
        # resolves the stall and must disarm the timer...
        tracker._dispatch()
        assert not tracker.retry_pending
        # ...and the cancelled timer must not fire a phantom dispatch.
        dispatches_after_resolve = len(tracker.dispatch_times)
        sim.run()
        assert len(tracker.dispatch_times) == dispatches_after_resolve


class TestReducePhase:
    def test_reduce_waits_for_end_of_input(self, world):
        sim, _topo, tracker, pred, splits = world
        conf = make_sampling_conf(
            name="dyn", input_path="/d", predicate=pred, sample_size=100,
            policy_name="LA",
        )
        job = tracker.submit_job(
            conf, splits[:4], input_complete=False, total_splits_known=40
        )
        sim.run(until=200.0)
        # Maps long done, but EOI never sent: reduce must not have started.
        assert job.maps_done
        assert job.reduce_task is None
        tracker.complete_input(job.job_id)
        sim.run()
        assert job.reduce_task is not None
        assert job.state is JobState.SUCCEEDED

    def test_zero_reduce_job_completes_without_reduce(self, world):
        sim, _topo, tracker, pred, splits = world
        job = tracker.submit_job(
            scan_conf(pred), splits, input_complete=True, total_splits_known=40
        )
        sim.run()
        assert job.reduce_task is None
        assert job.state is JobState.SUCCEEDED
