"""Unit tests for WHERE-expression compilation."""

import pytest

from repro.data import LINEITEM_SCHEMA
from repro.data.predicates import ColumnCompare, FunctionPredicate
from repro.errors import HiveAnalysisError
from repro.hive.expressions import compile_predicate, like_to_regex, resolve_column
from repro.hive.parser import parse_statement


def where(text):
    return parse_statement(f"SELECT * FROM t WHERE {text}").where


ROW = {
    "l_quantity": 51,
    "l_tax": 0.09,
    "l_discount": 0.05,
    "l_shipmode": "AIR",
    "l_comment": "quick brown fox",
    "l_extendedprice": 100.0,
}


class TestResolveColumn:
    def test_exact_case_insensitive(self):
        assert resolve_column("L_QUANTITY", LINEITEM_SCHEMA) == "l_quantity"

    def test_tpch_bare_style(self):
        assert resolve_column("ORDERKEY", LINEITEM_SCHEMA) == "l_orderkey"
        assert resolve_column("quantity", LINEITEM_SCHEMA) == "l_quantity"

    def test_unknown_column_rejected(self):
        with pytest.raises(HiveAnalysisError):
            resolve_column("nope", LINEITEM_SCHEMA)

    def test_no_schema_passthrough(self):
        assert resolve_column("AnyThing", None) == "anything"


class TestSimpleEquality:
    def test_compiles_to_column_compare(self):
        pred = compile_predicate(where("L_QUANTITY = 51"), LINEITEM_SCHEMA)
        assert isinstance(pred, ColumnCompare)
        assert pred.name == "l_quantity=51"
        assert pred.matches(ROW)

    def test_name_matches_marker_predicate(self):
        """Critical for profile-mode simulation: Hive equality predicates
        must share names with the generator's controlled markers."""
        from repro.data import predicate_for_skew

        compiled = compile_predicate(where("L_QUANTITY = 51"), LINEITEM_SCHEMA)
        assert compiled.name == predicate_for_skew(2).name
        compiled = compile_predicate(where("L_TAX = 0.09"), LINEITEM_SCHEMA)
        assert compiled.name == predicate_for_skew(1).name

    def test_reversed_operands(self):
        pred = compile_predicate(where("51 = L_QUANTITY"), LINEITEM_SCHEMA)
        assert isinstance(pred, ColumnCompare)
        assert pred.matches(ROW)

    def test_reversed_inequality_flips_operator(self):
        pred = compile_predicate(where("10 < L_QUANTITY"), LINEITEM_SCHEMA)
        assert isinstance(pred, ColumnCompare)
        assert pred.op == ">"
        assert pred.matches(ROW)


class TestCompoundExpressions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("l_quantity = 51 AND l_tax = 0.09", True),
            ("l_quantity = 51 AND l_tax = 0.01", False),
            ("l_quantity = 1 OR l_shipmode = 'AIR'", True),
            ("NOT l_quantity = 1", True),
            ("l_discount BETWEEN 0.04 AND 0.06", True),
            ("l_discount NOT BETWEEN 0.04 AND 0.06", False),
            ("l_shipmode IN ('AIR', 'RAIL')", True),
            ("l_shipmode NOT IN ('AIR', 'RAIL')", False),
            ("l_comment LIKE '%brown%'", True),
            ("l_comment LIKE 'quick_brown%'", True),
            ("l_comment NOT LIKE '%purple%'", True),
            ("l_shipmode IS NULL", False),
            ("l_shipmode IS NOT NULL", True),
            ("l_extendedprice * (1 - l_discount) > 90", True),
            ("l_extendedprice * (1 - l_discount) > 96", False),
            ("l_quantity % 2 = 1", True),
        ],
    )
    def test_evaluation(self, text, expected):
        pred = compile_predicate(where(text), LINEITEM_SCHEMA)
        assert pred.matches(ROW) is expected

    def test_compound_is_function_predicate(self):
        pred = compile_predicate(where("l_quantity = 51 AND l_tax = 0.09"), LINEITEM_SCHEMA)
        assert isinstance(pred, FunctionPredicate)
        assert "AND" in pred.name

    def test_division_by_zero_raises(self):
        pred = compile_predicate(where("l_quantity / (l_tax - l_tax) > 1"), LINEITEM_SCHEMA)
        with pytest.raises(HiveAnalysisError):
            pred.matches(ROW)

    def test_bare_column_condition_rejected(self):
        with pytest.raises(HiveAnalysisError):
            compile_predicate(where("l_shipmode"), LINEITEM_SCHEMA)

    def test_non_boolean_literal_condition_rejected(self):
        with pytest.raises(HiveAnalysisError):
            compile_predicate(where("42"), LINEITEM_SCHEMA)

    def test_boolean_literal_condition(self):
        assert compile_predicate(where("TRUE"), LINEITEM_SCHEMA).matches(ROW)


class TestLikeToRegex:
    @pytest.mark.parametrize(
        "pattern,text,match",
        [
            ("%foo%", "xfooy", True),
            ("foo", "foo", True),
            ("foo", "foox", False),
            ("f_o", "fxo", True),
            ("f_o", "fxxo", False),
            ("100%", "100 percent", True),
            ("a.b", "a.b", True),
            ("a.b", "axb", False),  # regex dot must be escaped
        ],
    )
    def test_patterns(self, pattern, text, match):
        assert (like_to_regex(pattern).match(text) is not None) is match
